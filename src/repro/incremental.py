"""Incremental updates of a :class:`repro.api.Database`.

The facade caches expensive analysis state — the Prop. 3.3 active domain,
decision results, enumerated world lists, a live SAT session.  A naive
mutation API would have to throw all of it away on every change; this module
provides the machinery that lets :meth:`repro.api.Database.update` keep the
parts an update provably cannot affect:

* :class:`UpdateResult` — what one update did: the rows added/dropped, the
  relations whose content actually changed (``touched``), the Adom delta,
  how many cached decisions were invalidated, and a cheap definite
  consistency signal from the ground-fact checker session.
* :class:`DecisionCache` — memoised decision results keyed by (problem,
  arguments, engine) and validated against per-relation content
  fingerprints plus the active domain and the variable→finite-domain
  restriction map.  Each entry records the *dependency relations* of its
  problem; an update only evicts entries whose dependencies intersect the
  touched relations.
* :class:`UpdateBatch` — the transactional context manager behind
  :meth:`repro.api.Database.batch`: updates applied inside the block are
  rolled back wholesale if the block raises or if the net effect leaves
  ``Mod(T, D_m, V)`` empty (raising
  :class:`repro.exceptions.InconsistentUpdateError`).

Soundness of the dependency-scoped invalidation rests on the validation
context: a cache hit additionally requires the active domain *and* the
variable-domain restriction map to be unchanged.  Those two equalities imply
the variable set, the constant pool and every per-variable candidate pool
are the same — so a change confined to relations outside an entry's
dependency set cannot alter which Adom valuations exist, which ones the
constraints accept, or what the dependency relations contribute to them.
Entries with an *empty* dependency set (RCQP: the c-instance contents play
no role at all) skip the content validation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, Any, Hashable, Mapping, Sequence

from repro.ctables.adom import ActiveDomain
from repro.ctables.ctable import CTableRow
from repro.exceptions import InconsistentUpdateError, UpdateError
from repro.queries.terms import Term, Variable
from repro.relational.domains import Constant, Domain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.api import Database

#: A row specification accepted by ``update(add_rows=..., drop_rows=...)``:
#: either a full :class:`~repro.ctables.ctable.CTableRow` (terms plus local
#: condition) or a bare term sequence (condition ``TRUE`` on add; matches any
#: condition on drop).
RowSpec = CTableRow | Sequence[Term]

#: Sentinel returned by :meth:`DecisionCache.get` on a miss.  Distinct from
#: ``None`` so that cached values which *are* ``None`` round-trip.
MISS: Any = object()


# ---------------------------------------------------------------------------
# update results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateResult:
    """What one :meth:`repro.api.Database.update` call did.

    ``added`` / ``dropped`` list the rows the call put in / took out (in
    application order: drops first).  ``touched`` is the set of relations
    whose row *set* actually changed — a drop immediately re-added in the
    same call cancels out and touches nothing.
    """

    #: Rows appended, as ``(relation, row)`` pairs.
    added: tuple[tuple[str, CTableRow], ...]
    #: Rows removed, as ``(relation, row)`` pairs.
    dropped: tuple[tuple[str, CTableRow], ...]
    #: Relations whose content fingerprint changed.
    touched: frozenset[str]
    #: Constants that entered the active domain.
    adom_gained: frozenset[Constant]
    #: Constants that left the active domain.
    adom_lost: frozenset[Constant]
    #: Number of cached decisions evicted by this update.
    invalidated: int
    #: ``False`` when the definite ground facts already violate a constraint
    #: (then *every* world does — the database is certainly inconsistent);
    #: ``None`` when the cheap ground-fact check is inconclusive.  Never
    #: ``True``: a full consistency verdict needs
    #: :meth:`repro.api.Database.is_consistent`.
    consistent: bool | None

    @property
    def adom_changed(self) -> bool:
        """Whether the update changed the Prop. 3.3 active domain."""
        return bool(self.adom_gained or self.adom_lost)

    @property
    def is_noop(self) -> bool:
        """Whether the update left every relation's row set unchanged."""
        return not self.touched


# ---------------------------------------------------------------------------
# the fingerprint-validated decision cache
# ---------------------------------------------------------------------------
@dataclass
class _CacheEntry:
    value: Any
    #: Relations the cached result depends on; ``None`` means *all*.
    deps: frozenset[str] | None
    #: Fingerprint snapshot restricted to the dependency relations.
    fingerprints: Mapping[str, int]
    adom: ActiveDomain
    variable_domains: Mapping[Variable, Domain]

    def valid(
        self,
        fingerprints: Mapping[str, int],
        adom: ActiveDomain,
        variable_domains: Mapping[Variable, Domain],
    ) -> bool:
        if self.deps is not None and not self.deps:
            # Content-independent problems (RCQP) validate against nothing:
            # schema, master data and constraints are fixed per facade.
            return True
        if self.adom != adom or self.variable_domains != variable_domains:
            return False
        return all(
            fingerprints.get(name) == fingerprint
            for name, fingerprint in self.fingerprints.items()
        )


class DecisionCache:
    """Memoised per-facade decision results with dependency-scoped eviction.

    Keys are built by the facade from ``(problem, arguments, engine)``;
    unhashable arguments simply bypass the cache.  Entries self-validate on
    lookup (see :class:`_CacheEntry`), so even an eviction the facade forgot
    cannot surface a stale result — eager invalidation via
    :meth:`invalidate` exists to keep the cache small and to report the
    eviction count in :class:`UpdateResult`.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[Hashable, _CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        key: Hashable,
        fingerprints: Mapping[str, int],
        adom: ActiveDomain,
        variable_domains: Mapping[Variable, Domain],
    ) -> Any:
        """The cached value, or :data:`MISS`.  Stale entries are dropped."""
        entry = self._entries.get(key)
        if entry is None:
            return MISS
        if not entry.valid(fingerprints, adom, variable_domains):
            del self._entries[key]
            return MISS
        return entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        deps: frozenset[str] | None,
        fingerprints: Mapping[str, int],
        adom: ActiveDomain,
        variable_domains: Mapping[Variable, Domain],
    ) -> None:
        """Store ``value`` with its dependency set and validation context."""
        if deps is not None:
            fingerprints = {
                name: fingerprints[name] for name in sorted(deps) if name in fingerprints
            }
        else:
            fingerprints = dict(fingerprints)
        self._entries[key] = _CacheEntry(
            value=value,
            deps=deps,
            fingerprints=fingerprints,
            adom=adom,
            variable_domains=dict(variable_domains),
        )

    def invalidate(self, touched: frozenset[str]) -> int:
        """Evict entries whose dependencies intersect ``touched``.

        Entries with ``deps=None`` depend on everything and go whenever any
        relation changed; empty-dependency entries never go.
        """
        if not touched:
            return 0
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.deps is None or entry.deps & touched
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> int:
        """Evict everything; returns the number of entries dropped."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def snapshot(self) -> dict[Hashable, _CacheEntry]:
        """A restorable copy of the entry map (for transactional rollback)."""
        return dict(self._entries)

    def restore(self, state: dict[Hashable, _CacheEntry]) -> None:
        """Reset the entry map to a :meth:`snapshot`."""
        self._entries = dict(state)


# ---------------------------------------------------------------------------
# transactional update batches
# ---------------------------------------------------------------------------
class UpdateBatch:
    """A transactional group of updates with rollback on inconsistency.

    Created by :meth:`repro.api.Database.batch`::

        with db.batch() as batch:
            batch.update(drop_rows={"R": [("a", "b")]})
            batch.update(add_rows={"R": [("a", "c")]})
        # commit point: raises InconsistentUpdateError (and rolls every
        # update back) if the net effect left Mod(T, D_m, V) empty.

    Inside the block reads observe the updated state immediately (the
    updates really happen — :meth:`update` is plain
    :meth:`repro.api.Database.update`).  On exit, a block that changed
    anything is verified: if the ground facts already violate a constraint
    the batch is rejected without running an engine, otherwise a
    witness-free consistency check decides.  A block that raises is rolled
    back and the exception propagates unchanged.

    Rollback restores the c-instance, the Adom caches and the decision
    cache to their pre-batch state and discards the incrementally-maintained
    checker and SAT sessions (they were mutated in place; both are pure
    caches and rebuild lazily).
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._state: tuple[Any, ...] | None = None

    def update(
        self,
        add_rows: Mapping[str, Sequence[RowSpec]] | None = None,
        drop_rows: Mapping[str, Sequence[RowSpec]] | None = None,
    ) -> UpdateResult:
        """Apply one update within the batch (delegates to ``Database.update``)."""
        if self._state is None:
            raise UpdateError("UpdateBatch.update() outside the with block")
        return self._database.update(add_rows=add_rows, drop_rows=drop_rows)

    def __enter__(self) -> "UpdateBatch":
        if self._state is not None:
            raise UpdateError("UpdateBatch is not reentrant")
        self._state = self._database._update_snapshot()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        state, self._state = self._state, None
        assert state is not None
        database = self._database
        if exc_type is not None:
            database._update_restore(state)
            return  # propagate the original exception
        before = state[0].relation_fingerprints()
        if database.cinstance.relation_fingerprints() == before:
            # Nothing (net) changed: nothing to verify, and the decisions the
            # intermediate updates eagerly evicted are still valid (entries
            # self-validate against the very fingerprints that just matched),
            # so re-instate the pre-batch cache alongside anything computed
            # during the batch.
            merged = database._cache.snapshot()
            merged.update(state[3])
            database._cache.restore(merged)
            return
        if database._ground_facts_violated() or not database.is_consistent(
            witness=False
        ):
            database._update_restore(state)
            raise InconsistentUpdateError(
                "update batch rolled back: the batched updates left "
                "Mod(T, D_m, V) empty"
            )
