"""Tableau machinery for conjunctive queries.

A CQ ``Q`` can be viewed as a tableau query ``(T_Q, u_Q)``: the body atoms
form a tableau (rows that may contain variables) and the head is the output
summary (Section 4.1).  The strong-completeness characterisation of the paper
(Lemma 4.2) extends a database with *valuations of the query tableau*, and
the canonical-database / homomorphism toolkit below implements the classical
operations needed for that and for CQ containment:

* :func:`freeze` — instantiate a tableau with a valuation, producing the
  tuples to add to an instance;
* :func:`canonical_database` — the canonical instance of a CQ (variables
  frozen to fresh constants);
* :func:`find_homomorphism` / :func:`contained_in` — containment of
  inequality-free CQs via the Chandra–Merlin homomorphism theorem;
* :func:`equivalent` — mutual containment.

Containment in the presence of ``≠`` is Πᵖ₂-hard in general; the functions
here refuse queries with inequalities rather than give wrong answers.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.exceptions import QueryError
from repro.queries.atoms import RelationAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable, is_variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row
from repro.relational.schema import DatabaseSchema
from repro.utils.naming import FreshNameSupply


def freeze(
    atoms: tuple[RelationAtom, ...],
    valuation: Mapping[Variable, Constant],
) -> dict[str, set[Row]]:
    """Instantiate tableau atoms under a total valuation of their variables.

    Returns a mapping from relation names to the set of ground tuples the
    valuation produces — exactly the tuples ``ν(T_Q)`` added to an instance in
    the strong-completeness characterisation.
    """
    result: dict[str, set[Row]] = {}
    for atom in atoms:
        row: list[Constant] = []
        for term in atom.terms:
            if is_variable(term):
                if term not in valuation:
                    raise QueryError(
                        f"valuation does not cover variable {term!r} of {atom!r}"
                    )
                row.append(valuation[term])
            else:
                row.append(term)
        result.setdefault(atom.relation, set()).add(tuple(row))
    return result


def freezing_valuation(
    query: ConjunctiveQuery, supply: FreshNameSupply | None = None
) -> dict[Variable, Constant]:
    """A valuation freezing each variable of the query to a fresh constant."""
    supply = supply or FreshNameSupply()
    return {
        v: supply.next(v.name)
        for v in sorted(query.variables(), key=lambda x: x.name)
    }


def canonical_database(
    query: ConjunctiveQuery,
    schema: DatabaseSchema,
    valuation: Mapping[Variable, Constant] | None = None,
) -> tuple[GroundInstance, dict[Variable, Constant]]:
    """The canonical database of a CQ over the given schema.

    Variables are frozen to fresh constants unless an explicit valuation is
    supplied.  Returns the instance together with the valuation used, so the
    caller can recover the frozen head ``ν(u_Q)``.
    """
    frozen_valuation = dict(valuation) if valuation is not None else freezing_valuation(query)
    tuples = freeze(query.atoms, frozen_valuation)
    return GroundInstance(schema, tuples), frozen_valuation


def _homomorphisms(
    source_atoms: tuple[RelationAtom, ...],
    target_atoms: tuple[RelationAtom, ...],
    initial: Mapping[Variable, Term] | None = None,
) -> Iterator[dict[Variable, Term]]:
    """All homomorphisms from ``source_atoms`` to ``target_atoms``.

    A homomorphism maps variables of the source to terms of the target such
    that every source atom is mapped onto some target atom; constants must be
    preserved.
    """
    source_atoms = tuple(source_atoms)
    target_atoms = tuple(target_atoms)

    def extend(index: int, mapping: dict[Variable, Term]) -> Iterator[dict[Variable, Term]]:
        if index == len(source_atoms):
            yield dict(mapping)
            return
        atom = source_atoms[index]
        for candidate in target_atoms:
            if candidate.relation != atom.relation or candidate.arity != atom.arity:
                continue
            attempt = dict(mapping)
            ok = True
            for src, tgt in zip(atom.terms, candidate.terms):
                if is_variable(src):
                    bound = attempt.get(src)
                    if bound is None:
                        attempt[src] = tgt
                    elif bound != tgt:
                        ok = False
                        break
                elif src != tgt:
                    ok = False
                    break
            if ok:
                yield from extend(index + 1, attempt)

    yield from extend(0, dict(initial or {}))


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> dict[Variable, Term] | None:
    """A head-preserving homomorphism from ``source`` into ``target``.

    The homomorphism maps the head of ``source`` onto the head of ``target``
    and each body atom of ``source`` onto a body atom of ``target``.  Returns
    ``None`` when no such homomorphism exists.

    Raises
    ------
    QueryError
        If either query uses ``≠`` (containment with inequalities is not
        captured by homomorphisms) or if the heads have different arities.
    """
    if not source.is_inequality_free() or not target.is_inequality_free():
        raise QueryError("homomorphism-based containment requires inequality-free CQs")
    if source.equality_atoms() or target.equality_atoms():
        source = inline_equalities(source)
        target = inline_equalities(target)
    if source.arity != target.arity:
        raise QueryError("queries of different arities are never comparable")
    initial: dict[Variable, Term] = {}
    for src_term, tgt_term in zip(source.head, target.head):
        if is_variable(src_term):
            bound = initial.get(src_term)
            if bound is not None and bound != tgt_term:
                return None
            initial[src_term] = tgt_term
        elif src_term != tgt_term:
            return None
    for mapping in _homomorphisms(source.atoms, target.atoms, initial):
        return mapping
    return None


def contained_in(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Whether ``left ⊆ right`` for inequality-free CQs (Chandra–Merlin)."""
    return find_homomorphism(right, left) is not None


def equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Whether two inequality-free CQs are equivalent."""
    return contained_in(left, right) and contained_in(right, left)


def inline_equalities(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Eliminate equality atoms by substitution.

    Equalities between a variable and a constant substitute the constant;
    equalities between two variables substitute one for the other.  The
    resulting query has no equality atoms and is equivalent to the input.
    """
    substitution: dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        seen = set()
        while is_variable(term) and term in substitution and term not in seen:
            seen.add(term)
            term = substitution[term]
        return term

    contradictory = False
    for comp in query.equality_atoms():
        left = resolve(comp.left)
        right = resolve(comp.right)
        if left == right:
            continue
        if is_variable(left):
            substitution[left] = right
        elif is_variable(right):
            substitution[right] = left
        else:
            contradictory = True

    def apply(term: Term) -> Term:
        return resolve(term)

    if contradictory:
        # The query is unsatisfiable; represent it as a query over an atom
        # that can never match by constraining a constant to differ from itself.
        from repro.queries.atoms import neq

        return ConjunctiveQuery(
            head=tuple(apply(t) for t in query.head),
            atoms=query.atoms,
            comparisons=tuple(query.inequality_atoms()) + (neq(0, 0),),
            name=query.name,
        )

    new_atoms = tuple(
        RelationAtom(a.relation, tuple(apply(t) for t in a.terms)) for a in query.atoms
    )
    new_ineqs = tuple(
        c.__class__(apply(c.left), c.op, apply(c.right)) for c in query.inequality_atoms()
    )
    new_head = tuple(apply(t) for t in query.head)
    return ConjunctiveQuery(
        head=new_head, atoms=new_atoms, comparisons=new_ineqs, name=query.name
    )
