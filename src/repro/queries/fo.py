"""First-order queries (FO).

Full first-order queries built from relation atoms and comparisons using
``∧``, ``∨``, ``¬``, ``∃`` and ``∀`` (Section 2.3).  Evaluation uses
*active-domain semantics*: quantifiers (and assignments to the free/head
variables) range over the constants occurring in the instance plus the
constants occurring in the query.  This is the standard finite-model
semantics used implicitly by the paper's examples (e.g. the query of
Example 5.3 compares two relations for containment).

RCDP, RCQP and MINP are undecidable for FO (Theorems 4.1, 4.5, 5.1, 6.1); the
library therefore evaluates FO queries exactly but only offers *bounded*
completeness checks for them (see :mod:`repro.completeness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.queries.formulas import Formula
from repro.queries.terms import ConstantTerm, Term, Variable
from repro.relational.instance import GroundInstance, Row


@dataclass(frozen=True)
class FirstOrderQuery:
    """A first-order query: a head of terms plus an FO formula."""

    head: tuple[Term, ...]
    formula: Formula
    name: str

    def __init__(self, head: Sequence[Term], formula: Formula, name: str = "Q") -> None:
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "formula", formula)
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        """Arity of the query result."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """Whether the query is Boolean."""
        return len(self.head) == 0

    def head_variables(self) -> set[Variable]:
        """Variables occurring in the head."""
        return {t for t in self.head if isinstance(t, Variable)}

    def variables(self) -> set[Variable]:
        """Free variables of the formula plus head variables.

        Part of the query protocol's explicit ``variables()`` contract (see
        :class:`repro.queries.evaluation.QueryProtocol`): the variables for
        which the ``Adom`` construction of Proposition 3.3 provisions fresh
        values.  Quantifier-bound variables range over the active domain at
        evaluation time and need no provisioning, exactly as for ∃FO⁺.
        """
        return self.formula.free_variables() | self.head_variables()

    def constants(self) -> set[ConstantTerm]:
        """Constants of the head and the formula."""
        head_consts = {t for t in self.head if not isinstance(t, Variable)}
        return head_consts | self.formula.constants()

    def relation_names(self) -> set[str]:
        """Relation names referenced by the formula."""
        return self.formula.relation_names()

    def with_name(self, name: str) -> "FirstOrderQuery":
        """A copy of the query under a different name."""
        return FirstOrderQuery(self.head, self.formula, name)

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        return f"{self.name}({head}) := {self.formula!r}"


def fo(name: str, head: Sequence[Term], formula: Formula) -> FirstOrderQuery:
    """Shorthand constructor for :class:`FirstOrderQuery`."""
    return FirstOrderQuery(head=head, formula=formula, name=name)


@dataclass(frozen=True)
class NativeQuery:
    """A query given directly as a Python function over ground instances.

    Several constructions in the paper define queries by cases rather than by
    a formula (e.g. the query of the proof of Theorem 4.5(1), or the query of
    Example 5.3: ``Q(I1, I2) = {(a)} if I1 ⊆ I2 else {(b)}``).  Such queries
    are FO-definable, but spelling out the formula obscures the construction.
    ``NativeQuery`` lets tests and reductions define the query exactly as the
    paper does, by an arbitrary (pure) function from instances to relations of
    a fixed arity.

    The completeness deciders treat native queries like FO queries: only the
    bounded checks apply, and monotonicity must be declared explicitly by the
    caller when known.
    """

    name: str
    arity: int
    function: Callable[[GroundInstance], frozenset[Row]]
    monotone: bool = False

    def evaluate(self, instance: GroundInstance) -> frozenset[Row]:
        """Evaluate the query function on a ground instance."""
        result = frozenset(tuple(row) for row in self.function(instance))
        for row in result:
            if len(row) != self.arity:
                raise ValueError(
                    f"native query {self.name!r} produced a row of arity "
                    f"{len(row)}, expected {self.arity}"
                )
        return result

    @property
    def is_boolean(self) -> bool:
        """Whether the query is Boolean."""
        return self.arity == 0

    def variables(self) -> set[Variable]:
        """Native queries carry no syntax, hence no variables.

        Part of the query protocol's explicit ``variables()`` contract;
        callers that need fresh Adom values for a native query must extend
        the active domain themselves.
        """
        return set()

    def __repr__(self) -> str:
        return f"NativeQuery({self.name!r}, arity={self.arity})"


def native_query(
    name: str,
    arity: int,
    function: Callable[[GroundInstance], frozenset[Row]],
    monotone: bool = False,
) -> NativeQuery:
    """Shorthand constructor for :class:`NativeQuery`."""
    return NativeQuery(name=name, arity=arity, function=function, monotone=monotone)
