"""Exact query evaluation over ground instances.

This module evaluates all five query languages of the paper over
:class:`~repro.relational.instance.GroundInstance` objects:

* CQ and UCQ — by backtracking homomorphism enumeration over the body atoms,
* ∃FO⁺ and FO — by recursive formula satisfaction under active-domain
  semantics (quantifiers and free variables range over the constants of the
  instance plus the constants of the query),
* FP — by bottom-up inflational fixpoint iteration, and
* :class:`~repro.queries.fo.NativeQuery` — by calling the supplied function.

The evaluators favour clarity over speed: the decision procedures of the
paper only ever evaluate queries over the small ``Adom``-bounded instances
they enumerate, so a naive exact evaluator is the right tool.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.exceptions import ArityError, EvaluationError, QueryError
from repro.queries.atoms import Comparison, ComparisonOp, RelationAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.efo import ExistentialPositiveQuery
from repro.queries.fo import FirstOrderQuery, NativeQuery
from repro.queries.formulas import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
)
from repro.queries.fp import FixpointQuery
from repro.queries.terms import Term, Variable, is_variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row

#: Union type of every query representation understood by :func:`evaluate`.
Query = Union[
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    ExistentialPositiveQuery,
    FirstOrderQuery,
    FixpointQuery,
    NativeQuery,
]


@runtime_checkable
class QueryProtocol(Protocol):
    """The structural contract every query representation satisfies.

    All six built-in representations implement this protocol, and code that
    accepts a :data:`Query` relies on exactly these members — in particular
    ``variables()`` is an explicit part of the contract (the Adom
    constructions provision fresh values for it), not an optional attribute
    to be probed with ``hasattr``.  ``variables()`` returns the variables the
    query exposes to the active domain: for CQ/UCQ/FP all rule variables, for
    ∃FO⁺/FO the free variables of the formula plus the head variables
    (quantifier-bound variables range over the active domain at evaluation
    time), and for native queries the empty set (they carry no syntax).
    """

    @property
    def arity(self) -> int: ...

    def variables(self) -> "set[Variable] | frozenset[Variable]": ...

#: Internal fact-store representation: relation name → set of rows.
FactStore = Mapping[str, frozenset[Row]]


# ---------------------------------------------------------------------------
# helpers shared by the evaluators
# ---------------------------------------------------------------------------
def fact_store(instance: GroundInstance) -> dict[str, frozenset[Row]]:
    """Extract a relation-name → rows mapping from a ground instance."""
    return {name: rel.rows for name, rel in instance.relations().items()}


def query_constants(query: Query) -> frozenset[Constant]:
    """All constants syntactically occurring in a query.

    Native queries carry no syntax, so they contribute no constants; callers
    that need constants for a native query must supply them explicitly.
    """
    if isinstance(query, NativeQuery):
        return frozenset()
    return frozenset(query.constants())


def query_variables(query: Query) -> frozenset[Variable]:
    """The variables of a query, per the :class:`QueryProtocol` contract.

    These are the variables for which the ``Adom`` constructions of
    Proposition 3.3 / Theorem 4.1 provision fresh values.  Every query type
    implements ``variables()`` directly; this helper only normalises the
    result to a frozen set.
    """
    return frozenset(query.variables())


def query_arity(query: Query) -> int:
    """Arity of the query result."""
    return query.arity


def query_relation_names(query: Query) -> frozenset[str]:
    """Relation names referenced by the query (empty for native queries)."""
    if isinstance(query, NativeQuery):
        return frozenset()
    return frozenset(query.relation_names())


def is_monotone(query: Query) -> bool:
    """Whether the query is guaranteed monotone in the database.

    CQ, UCQ, ∃FO⁺ and FP are monotone; FO is not in general; native queries
    declare monotonicity explicitly.
    """
    if isinstance(
        query,
        (
            ConjunctiveQuery,
            UnionOfConjunctiveQueries,
            ExistentialPositiveQuery,
            FixpointQuery,
        ),
    ):
        return True
    if isinstance(query, NativeQuery):
        return query.monotone
    return False


def active_domain(
    instance: GroundInstance, query: Query | None = None
) -> frozenset[Constant]:
    """Constants of the instance plus (if given) the constants of the query."""
    constants = set(instance.constants())
    if query is not None:
        constants |= set(query_constants(query))
    return frozenset(constants)


# ---------------------------------------------------------------------------
# conjunctive-body matching (shared by CQ, UCQ and FP rule bodies)
# ---------------------------------------------------------------------------
def match_atom(
    atom: RelationAtom,
    row: Row,
    assignment: dict[Variable, Constant],
) -> dict[Variable, Constant] | None:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``row``.

    Public companion of :func:`match_conjunction`: callers that seed a
    conjunctive match from a known (atom, row) pair — e.g. the delta
    constraint checker of :mod:`repro.search.propagation` — share the one
    unification rule set instead of re-implementing it.
    """
    if len(row) != atom.arity:
        raise ArityError(
            f"atom {atom!r} has arity {atom.arity} but relation row {row!r} "
            f"has arity {len(row)}"
        )
    extended = dict(assignment)
    for term, value in zip(atom.terms, row):
        if is_variable(term):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


def _propagate_equalities(
    comparisons: Iterable[Comparison],
    assignment: dict[Variable, Constant],
) -> dict[Variable, Constant] | None:
    """Extend ``assignment`` using equality atoms; return ``None`` on conflict."""
    result = dict(assignment)
    changed = True
    while changed:
        changed = False
        for comp in comparisons:
            if comp.op is not ComparisonOp.EQ:
                continue
            left = result.get(comp.left, comp.left) if is_variable(comp.left) else comp.left
            right = (
                result.get(comp.right, comp.right) if is_variable(comp.right) else comp.right
            )
            left_is_var = is_variable(left)
            right_is_var = is_variable(right)
            if not left_is_var and not right_is_var:
                if left != right:
                    return None
            elif left_is_var and not right_is_var:
                result[left] = right
                changed = True
            elif right_is_var and not left_is_var:
                result[right] = left
                changed = True
    return result


def _comparisons_hold(
    comparisons: Iterable[Comparison], assignment: Mapping[Variable, Constant]
) -> bool:
    """Whether all comparisons hold under a (total enough) assignment."""
    for comp in comparisons:
        grounded = comp.substitute(assignment)
        if grounded.variables():
            raise EvaluationError(
                f"comparison {comp!r} has unbound variables at evaluation time"
            )
        if not grounded.evaluate_ground():
            return False
    return True


def finalize_assignment(
    comparisons: Iterable[Comparison],
    assignment: dict[Variable, Constant],
) -> dict[Variable, Constant] | None:
    """Complete a fully atom-matched assignment against the comparisons.

    Public companion of :func:`match_conjunction` for callers that enumerate
    atom matches themselves (e.g. the indexed join of
    :mod:`repro.search.joinplan`): propagates equality atoms into the
    assignment, then checks every comparison.  Returns the completed
    assignment, or ``None`` if an equality conflicts or a comparison fails —
    exactly the acceptance rule :func:`match_conjunction` applies at its
    leaves.
    """
    completed = _propagate_equalities(comparisons, assignment)
    if completed is None:
        return None
    if not _comparisons_hold(comparisons, completed):
        return None
    return completed


def match_conjunction(
    atoms: Iterable[RelationAtom],
    comparisons: Iterable[Comparison],
    facts: FactStore,
    initial: Mapping[Variable, Constant] | None = None,
) -> Iterator[dict[Variable, Constant]]:
    """Enumerate all assignments satisfying a conjunctive body over ``facts``.

    The generator yields assignments of *all* variables of the body (including
    variables bound only through equality atoms).  Missing relations are
    treated as empty.
    """
    atoms = list(atoms)
    comparisons = list(comparisons)

    def backtrack(
        index: int, assignment: dict[Variable, Constant]
    ) -> Iterator[dict[Variable, Constant]]:
        if index == len(atoms):
            completed = finalize_assignment(comparisons, assignment)
            if completed is not None:
                yield completed
            return
        atom = atoms[index]
        rows = facts.get(atom.relation, frozenset())
        for row in rows:
            extended = _match_atom(atom, row, assignment)
            if extended is not None:
                yield from backtrack(index + 1, extended)

    yield from backtrack(0, dict(initial or {}))


def instantiate_head(
    head: tuple[Term, ...], assignment: Mapping[Variable, Constant]
) -> Row:
    """Instantiate a query head under an assignment.

    Public companion of :func:`match_conjunction`: callers that enumerate
    body matches themselves (e.g. the CNF encoder of
    :mod:`repro.search.cnf_encoding`) use it to build the corresponding
    answer rows.
    """
    row: list[Constant] = []
    for term in head:
        if is_variable(term):
            if term not in assignment:
                raise EvaluationError(
                    f"head variable {term!r} is unbound; the query is unsafe"
                )
            row.append(assignment[term])
        else:
            row.append(term)
    return tuple(row)


#: Internal aliases kept for the evaluators below.
_head_row = instantiate_head
_match_atom = match_atom


# ---------------------------------------------------------------------------
# CQ / UCQ
# ---------------------------------------------------------------------------
def evaluate_cq(query: ConjunctiveQuery, instance: GroundInstance) -> frozenset[Row]:
    """Evaluate a conjunctive query over a ground instance."""
    return evaluate_cq_on_facts(query, fact_store(instance))


def evaluate_cq_on_facts(query: ConjunctiveQuery, facts: FactStore) -> frozenset[Row]:
    """Evaluate a conjunctive query over a raw fact store."""
    results: set[Row] = set()
    for assignment in match_conjunction(query.atoms, query.comparisons, facts):
        results.add(_head_row(query.head, assignment))
    return frozenset(results)


def evaluate_ucq(
    query: UnionOfConjunctiveQueries, instance: GroundInstance
) -> frozenset[Row]:
    """Evaluate a union of conjunctive queries over a ground instance."""
    facts = fact_store(instance)
    results: set[Row] = set()
    for disjunct in query.disjuncts:
        results |= evaluate_cq_on_facts(disjunct, facts)
    return frozenset(results)


# ---------------------------------------------------------------------------
# ∃FO⁺ / FO (active-domain semantics)
# ---------------------------------------------------------------------------
def _satisfies(
    formula: Formula,
    facts: FactStore,
    domain: frozenset[Constant],
    env: dict[Variable, Constant],
) -> bool:
    """Recursive formula satisfaction under active-domain semantics."""
    if isinstance(formula, Atom):
        atom = formula.atom
        row: list[Constant] = []
        for term in atom.terms:
            if is_variable(term):
                if term not in env:
                    raise EvaluationError(
                        f"free variable {term!r} of atom {atom!r} is unbound"
                    )
                row.append(env[term])
            else:
                row.append(term)
        return tuple(row) in facts.get(atom.relation, frozenset())
    if isinstance(formula, Compare):
        comp = formula.comparison
        grounded = comp.substitute(env)
        if grounded.variables():
            raise EvaluationError(
                f"free variable in comparison {comp!r} is unbound"
            )
        return grounded.evaluate_ground()
    if isinstance(formula, And):
        return all(_satisfies(c, facts, domain, env) for c in formula.children)
    if isinstance(formula, Or):
        return any(_satisfies(c, facts, domain, env) for c in formula.children)
    if isinstance(formula, Not):
        return not _satisfies(formula.child, facts, domain, env)
    if isinstance(formula, Exists):
        return _quantify(formula.variables, formula.child, facts, domain, env, any)
    if isinstance(formula, ForAll):
        return _quantify(formula.variables, formula.child, facts, domain, env, all)
    raise QueryError(f"unexpected formula node {type(formula).__name__}")


def _quantify(
    variables: tuple[Variable, ...],
    child: Formula,
    facts: FactStore,
    domain: frozenset[Constant],
    env: dict[Variable, Constant],
    combine: Callable[[Iterable[bool]], bool],
) -> bool:
    """Evaluate a block of quantified variables over the active domain."""
    ordered_domain = sorted(domain, key=repr)

    def gen() -> Iterator[bool]:
        for values in itertools.product(ordered_domain, repeat=len(variables)):
            extended = dict(env)
            extended.update(zip(variables, values))
            yield _satisfies(child, facts, domain, extended)

    return combine(gen())


def _evaluate_formula_query(
    head: tuple[Term, ...],
    formula: Formula,
    instance: GroundInstance,
    extra_constants: Iterable[Constant],
) -> frozenset[Row]:
    """Evaluate a head/formula query under active-domain semantics.

    Free variables of the formula that do not occur in the head are treated
    as implicitly existentially quantified, matching the rule-style notation
    used for CQs.
    """
    facts = fact_store(instance)
    domain = frozenset(instance.constants()) | frozenset(extra_constants)
    head_vars = sorted({t for t in head if is_variable(t)}, key=lambda v: v.name)
    implicit = sorted(
        formula.free_variables() - set(head_vars), key=lambda v: v.name
    )
    if implicit:
        formula = Exists(tuple(implicit), formula)
    results: set[Row] = set()
    ordered_domain = sorted(domain, key=repr)
    if head_vars:
        candidate_envs = (
            dict(zip(head_vars, values))
            for values in itertools.product(ordered_domain, repeat=len(head_vars))
        )
    else:
        candidate_envs = iter([{}])
    for env in candidate_envs:
        if _satisfies(formula, facts, domain, env):
            results.add(_head_row(head, env))
    return frozenset(results)


def evaluate_efo(
    query: ExistentialPositiveQuery, instance: GroundInstance
) -> frozenset[Row]:
    """Evaluate an ∃FO⁺ query over a ground instance."""
    return _evaluate_formula_query(
        query.head, query.formula, instance, query.constants()
    )


def evaluate_fo(query: FirstOrderQuery, instance: GroundInstance) -> frozenset[Row]:
    """Evaluate a first-order query over a ground instance (active domain)."""
    return _evaluate_formula_query(
        query.head, query.formula, instance, query.constants()
    )


# ---------------------------------------------------------------------------
# FP (inflational fixpoint)
# ---------------------------------------------------------------------------
def evaluate_fp(
    query: FixpointQuery,
    instance: GroundInstance,
    max_rounds: int | None = None,
) -> frozenset[Row]:
    """Evaluate an FP query bottom-up until the inflational fixpoint.

    Parameters
    ----------
    max_rounds:
        Optional safety bound on the number of iterations; the fixpoint over a
        finite instance always terminates, so this is only a guard against
        programming errors in callers that build programs dynamically.
    """
    facts: dict[str, frozenset[Row]] = dict(fact_store(instance))
    for predicate in query.idb_predicates():
        facts.setdefault(predicate, frozenset())

    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"FP evaluation exceeded {max_rounds} rounds without converging"
            )
        for r in query.rules:
            derived: set[Row] = set()
            for assignment in match_conjunction(
                r.body_atoms(), r.body_comparisons(), facts
            ):
                derived.add(_head_row(r.head.terms, assignment))
            if not derived <= facts[r.head.relation]:
                facts[r.head.relation] = facts[r.head.relation] | frozenset(derived)
                changed = True
    return facts[query.output]


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------
def evaluate(query: Query, instance: GroundInstance) -> frozenset[Row]:
    """Evaluate any supported query over a ground instance."""
    if isinstance(query, ConjunctiveQuery):
        return evaluate_cq(query, instance)
    if isinstance(query, UnionOfConjunctiveQueries):
        return evaluate_ucq(query, instance)
    if isinstance(query, ExistentialPositiveQuery):
        return evaluate_efo(query, instance)
    if isinstance(query, FirstOrderQuery):
        return evaluate_fo(query, instance)
    if isinstance(query, FixpointQuery):
        return evaluate_fp(query, instance)
    if isinstance(query, NativeQuery):
        return query.evaluate(instance)
    raise QueryError(f"unsupported query type {type(query).__name__}")


def boolean_answer(query: Query, instance: GroundInstance) -> bool:
    """Evaluate a Boolean query and return its truth value."""
    result = evaluate(query, instance)
    if query_arity(query) != 0:
        raise QueryError(f"query {getattr(query, 'name', query)!r} is not Boolean")
    return bool(result)
