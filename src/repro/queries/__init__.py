"""Query languages of the paper: CQ, UCQ, ∃FO⁺, FO and FP.

All five languages support equality and inequality atoms, as in Section 2.3
of the paper.  Evaluation over ground instances lives in
:mod:`repro.queries.evaluation`; tableau-based tooling for conjunctive
queries (canonical databases, homomorphisms, containment) lives in
:mod:`repro.queries.tableau`.
"""

from repro.queries.atoms import (
    Comparison,
    ComparisonOp,
    RelationAtom,
    atom,
    eq,
    neq,
)
from repro.queries.cq import ConjunctiveQuery, boolean_cq, cq
from repro.queries.efo import (
    ExistentialPositiveQuery,
    cq_as_efo,
    efo,
    ucq_as_efo,
)
from repro.queries.evaluation import (
    Query,
    active_domain,
    boolean_answer,
    evaluate,
    evaluate_cq,
    evaluate_efo,
    evaluate_fo,
    evaluate_fp,
    evaluate_ucq,
    is_monotone,
    match_conjunction,
    query_arity,
    query_constants,
    query_relation_names,
)
from repro.queries.fo import FirstOrderQuery, NativeQuery, fo, native_query
from repro.queries.formulas import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    comp,
    conj,
    disj,
    exists,
    forall,
    negate,
    rel,
)
from repro.queries.fp import FixpointQuery, Rule, fixpoint_query, rule
from repro.queries.tableau import (
    canonical_database,
    contained_in,
    equivalent,
    find_homomorphism,
    freeze,
    freezing_valuation,
    inline_equalities,
)
from repro.queries.terms import Variable, var, variables
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq, ucq, ucq_from

__all__ = [
    "And",
    "Atom",
    "Compare",
    "Comparison",
    "ComparisonOp",
    "ConjunctiveQuery",
    "Exists",
    "ExistentialPositiveQuery",
    "FirstOrderQuery",
    "FixpointQuery",
    "ForAll",
    "Formula",
    "NativeQuery",
    "Not",
    "Or",
    "Query",
    "RelationAtom",
    "Rule",
    "UnionOfConjunctiveQueries",
    "Variable",
    "active_domain",
    "as_ucq",
    "atom",
    "boolean_answer",
    "boolean_cq",
    "canonical_database",
    "comp",
    "conj",
    "contained_in",
    "cq",
    "cq_as_efo",
    "disj",
    "efo",
    "eq",
    "equivalent",
    "evaluate",
    "evaluate_cq",
    "evaluate_efo",
    "evaluate_fo",
    "evaluate_fp",
    "evaluate_ucq",
    "exists",
    "find_homomorphism",
    "fixpoint_query",
    "fo",
    "forall",
    "freeze",
    "freezing_valuation",
    "inline_equalities",
    "is_monotone",
    "match_conjunction",
    "native_query",
    "negate",
    "neq",
    "query_arity",
    "query_constants",
    "query_relation_names",
    "rel",
    "rule",
    "ucq",
    "ucq_as_efo",
    "ucq_from",
    "var",
    "variables",
]
