"""Terms: variables and constants.

Queries, containment constraints and c-tables all use *terms*: either a
constant (an ordinary hashable Python value) or a :class:`Variable`.  A
variable is identified purely by its name; attribute typing (``var(A)`` in the
paper) is carried by the position in which a variable occurs, and is validated
where it matters (c-tables, finite-domain attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Union

from repro.exceptions import QueryError

#: Constants are plain hashable values.
ConstantTerm = Hashable


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __repr__(self) -> str:
        return f"?{self.name}"


#: A term is either a variable or a constant.
Term = Union[Variable, ConstantTerm]


def var(name: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name)


def variables(names: str | Iterable[str]) -> tuple[Variable, ...]:
    """Create several variables at once.

    Accepts either a whitespace/comma separated string (``"x y z"``) or an
    iterable of names.

    Examples
    --------
    >>> variables("x y z")
    (?x, ?y, ?z)
    """
    if isinstance(names, str):
        parts = [p for p in names.replace(",", " ").split() if p]
    else:
        parts = list(names)
    return tuple(Variable(p) for p in parts)


def is_variable(term: Term) -> bool:
    """Whether ``term`` is a variable."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Whether ``term`` is a constant."""
    return not isinstance(term, Variable)


def term_variables(terms: Iterable[Term]) -> set[Variable]:
    """The set of variables occurring in ``terms``."""
    return {t for t in terms if isinstance(t, Variable)}


def term_constants(terms: Iterable[Term]) -> set[ConstantTerm]:
    """The set of constants occurring in ``terms``."""
    return {t for t in terms if not isinstance(t, Variable)}


def substitute(term: Term, assignment: Mapping[Variable, ConstantTerm]) -> Term:
    """Apply a (possibly partial) assignment to a term."""
    if isinstance(term, Variable):
        return assignment.get(term, term)
    return term


def substitute_all(
    terms: Iterable[Term], assignment: Mapping[Variable, ConstantTerm]
) -> tuple[Term, ...]:
    """Apply an assignment to every term in a sequence."""
    return tuple(substitute(t, assignment) for t in terms)


def rename_variable(term: Term, renaming: Mapping[Variable, Variable]) -> Term:
    """Apply a variable renaming to a term."""
    if isinstance(term, Variable):
        return renaming.get(term, term)
    return term
