"""Atomic formulas: relation atoms and (in)equality comparisons.

The query languages of the paper (Section 2.3) are built from relation atoms
``R(t1, ..., tk)`` and comparison atoms ``t1 = t2`` / ``t1 ≠ t2``, where the
``ti`` are terms (variables or constants).  Both kinds of atoms are immutable
value objects shared by all five query languages and by containment
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping

from repro.exceptions import QueryError
from repro.queries.terms import (
    ConstantTerm,
    Term,
    Variable,
    is_variable,
    substitute_all,
    term_constants,
    term_variables,
)


@dataclass(frozen=True)
class RelationAtom:
    """A relation atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[Term]) -> None:
        if not relation:
            raise QueryError("relation atom needs a relation name")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        if len(self.terms) == 0:
            raise QueryError(f"relation atom {relation!r} must have at least one term")

    @property
    def arity(self) -> int:
        """Number of terms of the atom."""
        return len(self.terms)

    def variables(self) -> set[Variable]:
        """Variables occurring in the atom."""
        return term_variables(self.terms)

    def constants(self) -> set[ConstantTerm]:
        """Constants occurring in the atom."""
        return term_constants(self.terms)

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "RelationAtom":
        """The atom with ``assignment`` applied to its terms."""
        return RelationAtom(self.relation, substitute_all(self.terms, assignment))

    def rename(self, renaming: Mapping[Variable, Variable]) -> "RelationAtom":
        """The atom with variables renamed."""
        new_terms = tuple(
            renaming.get(t, t) if is_variable(t) else t for t in self.terms
        )
        return RelationAtom(self.relation, new_terms)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


class ComparisonOp(str, Enum):
    """Comparison operator: equality or inequality."""

    EQ = "="
    NEQ = "!="

    def negate(self) -> "ComparisonOp":
        """The complementary operator."""
        return ComparisonOp.NEQ if self is ComparisonOp.EQ else ComparisonOp.EQ

    def holds(self, left: ConstantTerm, right: ConstantTerm) -> bool:
        """Evaluate the operator on two constants."""
        return (left == right) if self is ComparisonOp.EQ else (left != right)


@dataclass(frozen=True)
class Comparison:
    """A comparison atom ``left = right`` or ``left ≠ right``."""

    left: Term
    op: ComparisonOp
    right: Term

    def variables(self) -> set[Variable]:
        """Variables occurring in the comparison."""
        return term_variables((self.left, self.right))

    def constants(self) -> set[ConstantTerm]:
        """Constants occurring in the comparison."""
        return term_constants((self.left, self.right))

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Comparison":
        """The comparison with ``assignment`` applied to both sides."""
        left, right = substitute_all((self.left, self.right), assignment)
        return Comparison(left, self.op, right)

    def rename(self, renaming: Mapping[Variable, Variable]) -> "Comparison":
        """The comparison with variables renamed."""
        left = renaming.get(self.left, self.left) if is_variable(self.left) else self.left
        right = (
            renaming.get(self.right, self.right) if is_variable(self.right) else self.right
        )
        return Comparison(left, self.op, right)

    def is_ground(self) -> bool:
        """Whether both sides are constants."""
        return not self.variables()

    def evaluate_ground(self) -> bool:
        """Evaluate a ground comparison.

        Raises
        ------
        QueryError
            If either side is still a variable.
        """
        if not self.is_ground():
            raise QueryError(f"comparison {self!r} is not ground")
        return self.op.holds(self.left, self.right)

    def evaluate(self, assignment: Mapping[Variable, ConstantTerm]) -> bool:
        """Evaluate the comparison under a total assignment of its variables."""
        return self.substitute(assignment).evaluate_ground()

    def negate(self) -> "Comparison":
        """The comparison with the opposite operator."""
        return Comparison(self.left, self.op.negate(), self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


def atom(relation: str, *terms: Term) -> RelationAtom:
    """Shorthand constructor for :class:`RelationAtom`."""
    return RelationAtom(relation, terms)


def eq(left: Term, right: Term) -> Comparison:
    """Shorthand constructor for an equality comparison."""
    return Comparison(left, ComparisonOp.EQ, right)


def neq(left: Term, right: Term) -> Comparison:
    """Shorthand constructor for an inequality comparison."""
    return Comparison(left, ComparisonOp.NEQ, right)
