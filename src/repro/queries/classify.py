"""Classification of queries into the paper's language hierarchy.

Table I of the paper is parameterised by the query language ``L_Q`` ∈
{CQ, UCQ, ∃FO⁺, FO, FP}.  The decision procedures dispatch on this
classification: the positive languages (CQ, UCQ, ∃FO⁺) admit exact
Adom-bounded deciders; FP admits them only in the weak model; FO admits none
(the problems are undecidable) and only bounded checks are offered.
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.efo import ExistentialPositiveQuery
from repro.queries.evaluation import Query
from repro.queries.fo import FirstOrderQuery, NativeQuery
from repro.queries.fp import FixpointQuery
from repro.queries.ucq import UnionOfConjunctiveQueries


class QueryLanguage(str, Enum):
    """The query languages studied by the paper (plus native escape hatch)."""

    CQ = "CQ"
    UCQ = "UCQ"
    EFO = "∃FO+"
    FO = "FO"
    FP = "FP"
    NATIVE = "native"


def classify(query: Query) -> QueryLanguage:
    """The language a query representation belongs to."""
    if isinstance(query, ConjunctiveQuery):
        return QueryLanguage.CQ
    if isinstance(query, UnionOfConjunctiveQueries):
        return QueryLanguage.UCQ
    if isinstance(query, ExistentialPositiveQuery):
        return QueryLanguage.EFO
    if isinstance(query, FirstOrderQuery):
        return QueryLanguage.FO
    if isinstance(query, FixpointQuery):
        return QueryLanguage.FP
    if isinstance(query, NativeQuery):
        return QueryLanguage.NATIVE
    raise QueryError(f"unsupported query type {type(query).__name__}")


#: Languages for which the strong- and viable-model problems are decidable
#: (Theorems 4.1, 4.8, 6.1; Corollaries 6.2, 6.3).
POSITIVE_LANGUAGES = frozenset(
    {QueryLanguage.CQ, QueryLanguage.UCQ, QueryLanguage.EFO}
)

#: Languages for which the weak-model problems are decidable
#: (Theorems 5.1, 5.4, 5.6): the positive languages plus FP.
WEAKLY_DECIDABLE_LANGUAGES = POSITIVE_LANGUAGES | {QueryLanguage.FP}


def is_positive_language(query: Query) -> bool:
    """Whether the query is CQ, UCQ or ∃FO⁺."""
    return classify(query) in POSITIVE_LANGUAGES


def supports_exact_strong_check(query: Query) -> bool:
    """Whether the exact strong/viable-model deciders apply (Theorem 4.1 / 6.1)."""
    return classify(query) in POSITIVE_LANGUAGES


def supports_exact_weak_check(query: Query) -> bool:
    """Whether the exact weak-model deciders apply (Theorems 5.1, 5.4, 5.6)."""
    return classify(query) in WEAKLY_DECIDABLE_LANGUAGES


def as_union_of_cqs(query: Query) -> UnionOfConjunctiveQueries:
    """View a positive query as a UCQ (unfolding ∃FO⁺ when necessary).

    Raises
    ------
    QueryError
        If the query is not in a positive language.
    """
    language = classify(query)
    if language is QueryLanguage.CQ:
        return UnionOfConjunctiveQueries((query,), name=query.name)
    if language is QueryLanguage.UCQ:
        return query
    if language is QueryLanguage.EFO:
        return query.to_ucq()
    raise QueryError(
        f"query {getattr(query, 'name', query)!r} is in {language.value}, "
        "which has no UCQ unfolding"
    )
