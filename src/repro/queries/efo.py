"""Positive existential first-order queries (∃FO⁺).

An ∃FO⁺ query is built from relation atoms and comparisons by closing under
``∧``, ``∨`` and ``∃`` (Section 2.3).  Semantically every ∃FO⁺ query is
equivalent to a UCQ, but the UCQ may be exponentially larger; the deciders of
the paper therefore work on the ∃FO⁺ representation directly (guessing one
disjunct at a time), and so does the evaluation engine here.

:func:`to_ucq` provides the explicit (possibly exponential) unfolding, which
is convenient for cross-checking the evaluators in tests and for reusing the
tableau-based machinery of the strong completeness characterisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import QueryError
from repro.queries.atoms import Comparison, RelationAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.formulas import (
    And,
    Atom,
    Compare,
    Exists,
    Formula,
    Or,
)
from repro.queries.terms import ConstantTerm, Term, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries


@dataclass(frozen=True)
class ExistentialPositiveQuery:
    """An ∃FO⁺ query: a head of terms plus a positive existential formula."""

    head: tuple[Term, ...]
    formula: Formula
    name: str

    def __init__(
        self, head: Sequence[Term], formula: Formula, name: str = "Q"
    ) -> None:
        if not formula.is_positive():
            raise QueryError(
                f"query {name!r} uses negation or universal quantification; "
                "it is not an ∃FO+ query"
            )
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "formula", formula)
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        """Arity of the query result."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """Whether the query is Boolean."""
        return len(self.head) == 0

    def head_variables(self) -> set[Variable]:
        """Variables occurring in the head."""
        return {t for t in self.head if isinstance(t, Variable)}

    def variables(self) -> set[Variable]:
        """Free variables of the formula plus head variables."""
        return self.formula.free_variables() | self.head_variables()

    def constants(self) -> set[ConstantTerm]:
        """Constants of the head and the formula."""
        head_consts = {t for t in self.head if not isinstance(t, Variable)}
        return head_consts | self.formula.constants()

    def relation_names(self) -> set[str]:
        """Relation names referenced by the formula."""
        return self.formula.relation_names()

    def with_name(self, name: str) -> "ExistentialPositiveQuery":
        """A copy of the query under a different name."""
        return ExistentialPositiveQuery(self.head, self.formula, name)

    # ------------------------------------------------------------------
    # UCQ unfolding
    # ------------------------------------------------------------------
    def to_ucq(self) -> UnionOfConjunctiveQueries:
        """Unfold the query into an equivalent (possibly larger) UCQ.

        Every disjunct of the result is a conjunctive query whose body is one
        way of choosing a disjunct in each ``Or`` node of the formula.
        """
        disjuncts = []
        for index, (atoms, comparisons) in enumerate(_conjunctive_branches(self.formula)):
            disjuncts.append(
                ConjunctiveQuery(
                    head=self.head,
                    atoms=atoms,
                    comparisons=comparisons,
                    name=f"{self.name}#{index}",
                )
            )
        return UnionOfConjunctiveQueries(tuple(disjuncts), name=self.name)

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        return f"{self.name}({head}) := {self.formula!r}"


def _conjunctive_branches(
    formula: Formula,
) -> list[tuple[tuple[RelationAtom, ...], tuple[Comparison, ...]]]:
    """All conjunctive branches (atom list, comparison list) of a positive formula."""
    if isinstance(formula, Atom):
        return [((formula.atom,), ())]
    if isinstance(formula, Compare):
        return [((), (formula.comparison,))]
    if isinstance(formula, Exists):
        # Existential quantifiers are implicit in the CQ representation.
        return _conjunctive_branches(formula.child)
    if isinstance(formula, Or):
        branches: list[tuple[tuple[RelationAtom, ...], tuple[Comparison, ...]]] = []
        for child in formula.children:
            branches.extend(_conjunctive_branches(child))
        return branches
    if isinstance(formula, And):
        child_branches = [_conjunctive_branches(c) for c in formula.children]
        combined: list[tuple[tuple[RelationAtom, ...], tuple[Comparison, ...]]] = []
        for combo in itertools.product(*child_branches):
            atoms: tuple[RelationAtom, ...] = ()
            comparisons: tuple[Comparison, ...] = ()
            for a, c in combo:
                atoms += a
                comparisons += c
            combined.append((atoms, comparisons))
        return combined
    raise QueryError(f"unexpected node {type(formula).__name__} in positive formula")


def efo(
    name: str, head: Sequence[Term], formula: Formula
) -> ExistentialPositiveQuery:
    """Shorthand constructor for :class:`ExistentialPositiveQuery`."""
    return ExistentialPositiveQuery(head=head, formula=formula, name=name)


def cq_as_efo(query: ConjunctiveQuery) -> ExistentialPositiveQuery:
    """View a conjunctive query as an ∃FO⁺ query."""
    parts: list[Formula] = [Atom(a) for a in query.atoms]
    parts.extend(Compare(c) for c in query.comparisons)
    if not parts:
        raise QueryError("cannot convert an empty-bodied CQ to ∃FO+")
    formula: Formula = parts[0] if len(parts) == 1 else And(tuple(parts))
    return ExistentialPositiveQuery(query.head, formula, name=query.name)


def ucq_as_efo(query: UnionOfConjunctiveQueries) -> ExistentialPositiveQuery:
    """View a UCQ as an ∃FO⁺ query.

    Because the disjuncts of a UCQ may use different variable names for the
    same head position, each disjunct is first rewritten so that its head is
    literally the head of the first disjunct, by adding equality atoms where
    needed.
    """
    reference_head = query.disjuncts[0].head
    reference_vars = {t for t in reference_head if isinstance(t, Variable)}
    formulas: list[Formula] = []
    for index, q in enumerate(query.disjuncts):
        if index > 0:
            # Avoid accidental variable capture: variables of later disjuncts
            # must not collide with the reference head variables unless they
            # are being aligned with them explicitly below.
            q = q.rename_apart(reference_vars)
        parts: list[Formula] = [Atom(a) for a in q.atoms]
        parts.extend(Compare(c) for c in q.comparisons)
        # Align the head of this disjunct with the reference head.
        from repro.queries.atoms import eq as _eq  # local import to avoid cycle

        for ref_term, own_term in zip(reference_head, q.head):
            if ref_term != own_term:
                parts.append(Compare(_eq(ref_term, own_term)))
        if not parts:
            raise QueryError("cannot convert an empty-bodied CQ to ∃FO+")
        formulas.append(parts[0] if len(parts) == 1 else And(tuple(parts)))
    formula: Formula = formulas[0] if len(formulas) == 1 else Or(tuple(formulas))
    return ExistentialPositiveQuery(reference_head, formula, name=query.name)
