"""First-order formula trees.

Shared abstract syntax for the ∃FO⁺ and FO query languages of the paper
(Section 2.3).  A formula is one of:

* :class:`Atom` — a relation atom,
* :class:`Compare` — an equality or inequality between two terms,
* :class:`And` / :class:`Or` — finite conjunction / disjunction,
* :class:`Not` — negation (FO only),
* :class:`Exists` / :class:`ForAll` — quantification (``ForAll`` is FO only).

Formulas are immutable.  Evaluation lives in
:mod:`repro.queries.evaluation`; this module only provides the structure,
free-variable computation, substitution and the positivity check used to
validate ∃FO⁺ queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.queries.atoms import Comparison, RelationAtom
from repro.queries.terms import ConstantTerm, Term, Variable


class Formula:
    """Base class of all formula nodes."""

    def free_variables(self) -> set[Variable]:
        """Free variables of the formula."""
        raise NotImplementedError

    def constants(self) -> set[ConstantTerm]:
        """Constants occurring in the formula."""
        raise NotImplementedError

    def relation_names(self) -> set[str]:
        """Relation names referenced by the formula."""
        raise NotImplementedError

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Formula":
        """The formula with constants substituted for free variables."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """Whether the formula uses neither negation nor universal quantifiers."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom used as a formula."""

    atom: RelationAtom

    def free_variables(self) -> set[Variable]:
        return self.atom.variables()

    def constants(self) -> set[ConstantTerm]:
        return self.atom.constants()

    def relation_names(self) -> set[str]:
        return {self.atom.relation}

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Atom":
        return Atom(self.atom.substitute(assignment))

    def is_positive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class Compare(Formula):
    """A comparison atom used as a formula."""

    comparison: Comparison

    def free_variables(self) -> set[Variable]:
        return self.comparison.variables()

    def constants(self) -> set[ConstantTerm]:
        return self.comparison.constants()

    def relation_names(self) -> set[str]:
        return set()

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Compare":
        return Compare(self.comparison.substitute(assignment))

    def is_positive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return repr(self.comparison)


@dataclass(frozen=True)
class And(Formula):
    """Finite conjunction."""

    children: tuple[Formula, ...]

    def __init__(self, children: Sequence[Formula]) -> None:
        children = tuple(children)
        if not children:
            raise QueryError("conjunction must have at least one conjunct")
        object.__setattr__(self, "children", children)

    def free_variables(self) -> set[Variable]:
        return set().union(*(c.free_variables() for c in self.children))

    def constants(self) -> set[ConstantTerm]:
        return set().union(*(c.constants() for c in self.children))

    def relation_names(self) -> set[str]:
        return set().union(*(c.relation_names() for c in self.children))

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "And":
        return And(tuple(c.substitute(assignment) for c in self.children))

    def is_positive(self) -> bool:
        return all(c.is_positive() for c in self.children)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Finite disjunction."""

    children: tuple[Formula, ...]

    def __init__(self, children: Sequence[Formula]) -> None:
        children = tuple(children)
        if not children:
            raise QueryError("disjunction must have at least one disjunct")
        object.__setattr__(self, "children", children)

    def free_variables(self) -> set[Variable]:
        return set().union(*(c.free_variables() for c in self.children))

    def constants(self) -> set[ConstantTerm]:
        return set().union(*(c.constants() for c in self.children))

    def relation_names(self) -> set[str]:
        return set().union(*(c.relation_names() for c in self.children))

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Or":
        return Or(tuple(c.substitute(assignment) for c in self.children))

    def is_positive(self) -> bool:
        return all(c.is_positive() for c in self.children)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation (only allowed in full FO)."""

    child: Formula

    def free_variables(self) -> set[Variable]:
        return self.child.free_variables()

    def constants(self) -> set[ConstantTerm]:
        return self.child.constants()

    def relation_names(self) -> set[str]:
        return self.child.relation_names()

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Not":
        return Not(self.child.substitute(assignment))

    def is_positive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"¬{self.child!r}"


class _Quantifier(Formula):
    """Common behaviour of :class:`Exists` and :class:`ForAll`."""

    variables: tuple[Variable, ...]
    child: Formula
    _symbol = "?"

    def free_variables(self) -> set[Variable]:
        return self.child.free_variables() - set(self.variables)

    def constants(self) -> set[ConstantTerm]:
        return self.child.constants()

    def relation_names(self) -> set[str]:
        return self.child.relation_names()

    def _restricted(
        self, assignment: Mapping[Variable, ConstantTerm]
    ) -> dict[Variable, ConstantTerm]:
        return {v: c for v, c in assignment.items() if v not in set(self.variables)}

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"{self._symbol}{names}.{self.child!r}"


@dataclass(frozen=True)
class Exists(_Quantifier):
    """Existential quantification over one or more variables."""

    variables: tuple[Variable, ...]
    child: Formula
    _symbol = "∃"

    def __init__(self, variables: Sequence[Variable], child: Formula) -> None:
        variables = tuple(variables)
        if not variables:
            raise QueryError("quantifier must bind at least one variable")
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "child", child)

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Exists":
        return Exists(self.variables, self.child.substitute(self._restricted(assignment)))

    def is_positive(self) -> bool:
        return self.child.is_positive()


@dataclass(frozen=True)
class ForAll(_Quantifier):
    """Universal quantification (only allowed in full FO)."""

    variables: tuple[Variable, ...]
    child: Formula
    _symbol = "∀"

    def __init__(self, variables: Sequence[Variable], child: Formula) -> None:
        variables = tuple(variables)
        if not variables:
            raise QueryError("quantifier must bind at least one variable")
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "child", child)

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "ForAll":
        return ForAll(self.variables, self.child.substitute(self._restricted(assignment)))

    def is_positive(self) -> bool:
        return False


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------
def rel(relation: str, *terms: Term) -> Atom:
    """A relation atom as a formula."""
    return Atom(RelationAtom(relation, terms))


def comp(comparison: Comparison) -> Compare:
    """A comparison as a formula."""
    return Compare(comparison)


def conj(*children: Formula) -> Formula:
    """Conjunction of the given formulas (single child returned as-is)."""
    if len(children) == 1:
        return children[0]
    return And(children)


def disj(*children: Formula) -> Formula:
    """Disjunction of the given formulas (single child returned as-is)."""
    if len(children) == 1:
        return children[0]
    return Or(children)


def exists(variables: Iterable[Variable], child: Formula) -> Exists:
    """Existential quantification helper."""
    return Exists(tuple(variables), child)


def forall(variables: Iterable[Variable], child: Formula) -> ForAll:
    """Universal quantification helper."""
    return ForAll(tuple(variables), child)


def negate(child: Formula) -> Not:
    """Negation helper."""
    return Not(child)
