"""FP: positive existential queries with an inflational fixpoint operator.

The paper's language FP (Section 2.3) extends ∃FO⁺ with an inflational
fixpoint; queries are written as a finite collection of datalog-style rules

    p(x̄) ← p1(x̄1), ..., pm(x̄m)

where every ``pi`` is either an atomic formula over the database schema
(extensional, EDB), an IDB predicate defined by the rules, or a comparison
atom (``=`` / ``≠``).  Evaluation is bottom-up and inflational: facts are only
ever added, and the program has reached its fixpoint when one full round of
rule applications adds nothing new.  One IDB predicate is designated as the
*output* predicate; the answer of the query is its content at the fixpoint.

FP queries are monotone in the database (adding EDB facts can only add output
facts); the weak-completeness machinery of Section 5 relies on exactly this
property (Lemma 5.2 and Theorem 5.4), and the property is exposed here via
:func:`FixpointQuery.is_monotone`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.queries.atoms import Comparison, RelationAtom
from repro.queries.terms import ConstantTerm, Variable


@dataclass(frozen=True)
class Rule:
    """A single FP rule ``head ← body``.

    The head must be an atom over an IDB predicate.  The body is a sequence of
    relation atoms (over EDB or IDB predicates) and comparison atoms.
    """

    head: RelationAtom
    body: tuple["RelationAtom | Comparison", ...]

    def __init__(
        self, head: RelationAtom, body: Sequence["RelationAtom | Comparison"]
    ) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        self._check_safety()

    def _check_safety(self) -> None:
        body_atom_vars: set[Variable] = set()
        for item in self.body:
            if isinstance(item, RelationAtom):
                body_atom_vars |= item.variables()
        # Equality atoms may bind further variables (x = c or x = y with y bound).
        bound = set(body_atom_vars)
        changed = True
        while changed:
            changed = False
            for item in self.body:
                if isinstance(item, Comparison) and item.op.value == "=":
                    left_var = isinstance(item.left, Variable)
                    right_var = isinstance(item.right, Variable)
                    left_ok = not left_var or item.left in bound
                    right_ok = not right_var or item.right in bound
                    if left_ok and right_var and item.right not in bound:
                        bound.add(item.right)
                        changed = True
                    if right_ok and left_var and item.left not in bound:
                        bound.add(item.left)
                        changed = True
        unsafe = self.head.variables() - bound
        if unsafe:
            names = sorted(v.name for v in unsafe)
            raise QueryError(
                f"rule for {self.head.relation!r} is unsafe; "
                f"head variables {names} are not bound in the body"
            )
        for item in self.body:
            if isinstance(item, Comparison):
                dangling = item.variables() - bound
                if dangling:
                    names = sorted(v.name for v in dangling)
                    raise QueryError(
                        f"rule for {self.head.relation!r} has a comparison over "
                        f"unbound variables {names}"
                    )

    def body_atoms(self) -> tuple[RelationAtom, ...]:
        """The relation atoms of the body."""
        return tuple(item for item in self.body if isinstance(item, RelationAtom))

    def body_comparisons(self) -> tuple[Comparison, ...]:
        """The comparison atoms of the body."""
        return tuple(item for item in self.body if isinstance(item, Comparison))

    def variables(self) -> set[Variable]:
        """All variables of the rule."""
        result = set(self.head.variables())
        for item in self.body:
            result |= item.variables()
        return result

    def constants(self) -> set[ConstantTerm]:
        """All constants of the rule."""
        result = set(self.head.constants())
        for item in self.body:
            result |= item.constants()
        return result

    def __repr__(self) -> str:
        body = ", ".join(repr(item) for item in self.body)
        return f"{self.head!r} ← {body}"


@dataclass(frozen=True)
class FixpointQuery:
    """An FP query: a set of rules plus a designated output predicate."""

    rules: tuple[Rule, ...]
    output: str
    name: str

    def __init__(self, rules: Sequence[Rule], output: str, name: str = "Q") -> None:
        rules = tuple(rules)
        if not rules:
            raise QueryError("an FP query needs at least one rule")
        idb = {rule.head.relation for rule in rules}
        if output not in idb:
            raise QueryError(
                f"output predicate {output!r} is not defined by any rule "
                f"(IDB predicates: {sorted(idb)})"
            )
        arities: dict[str, int] = {}
        for rule in rules:
            existing = arities.get(rule.head.relation)
            if existing is not None and existing != rule.head.arity:
                raise QueryError(
                    f"IDB predicate {rule.head.relation!r} used with arities "
                    f"{existing} and {rule.head.arity}"
                )
            arities[rule.head.relation] = rule.head.arity
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "output", output)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    def idb_predicates(self) -> set[str]:
        """Predicates defined by the rules (intensional)."""
        return {rule.head.relation for rule in self.rules}

    def idb_arity(self, predicate: str) -> int:
        """Arity of an IDB predicate."""
        for rule in self.rules:
            if rule.head.relation == predicate:
                return rule.head.arity
        raise QueryError(f"{predicate!r} is not an IDB predicate of {self.name!r}")

    def edb_predicates(self) -> set[str]:
        """Predicates used in rule bodies but not defined by any rule."""
        idb = self.idb_predicates()
        result: set[str] = set()
        for rule in self.rules:
            for atom in rule.body_atoms():
                if atom.relation not in idb:
                    result.add(atom.relation)
        return result

    @property
    def arity(self) -> int:
        """Arity of the query result (arity of the output predicate)."""
        return self.idb_arity(self.output)

    @property
    def is_boolean(self) -> bool:
        """Whether the query is Boolean."""
        return self.arity == 0

    def constants(self) -> set[ConstantTerm]:
        """All constants occurring in the rules."""
        result: set[ConstantTerm] = set()
        for rule in self.rules:
            result |= rule.constants()
        return result

    def variables(self) -> set[Variable]:
        """All variables occurring in the rules."""
        result: set[Variable] = set()
        for rule in self.rules:
            result |= rule.variables()
        return result

    def relation_names(self) -> set[str]:
        """EDB relation names referenced by the program."""
        return self.edb_predicates()

    @staticmethod
    def is_monotone() -> bool:
        """FP queries are monotone in the database (inflational semantics)."""
        return True

    def with_name(self, name: str) -> "FixpointQuery":
        """A copy of the query under a different name."""
        return FixpointQuery(self.rules, self.output, name)

    def __repr__(self) -> str:
        return f"FP({self.name}: {len(self.rules)} rules, output={self.output})"


def rule(head: RelationAtom, *body: "RelationAtom | Comparison") -> Rule:
    """Shorthand constructor for :class:`Rule`."""
    return Rule(head, body)


def fixpoint_query(name: str, output: str, rules: Iterable[Rule]) -> FixpointQuery:
    """Shorthand constructor for :class:`FixpointQuery`."""
    return FixpointQuery(tuple(rules), output=output, name=name)
