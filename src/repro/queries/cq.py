"""Conjunctive queries (CQ) with equality and inequality.

A conjunctive query is built from relation atoms, ``=`` and ``≠``, closed
under conjunction and existential quantification (Section 2.3).  We represent
a CQ in the standard rule form

    Q(u) :- R1(w1), ..., Rk(wk), c1, ..., cm

where ``u`` is the *head* (output summary, a tuple of terms), the ``Ri(wi)``
are relation atoms and the ``cj`` are comparison atoms.  Variables not
occurring in the head are implicitly existentially quantified.

Safety
------
Evaluation requires the query to be *range restricted*: every variable that
occurs in the head or in a comparison must be *bound*, i.e. either occur in a
relation atom or be forced equal to a constant / bound variable through a
chain of equality atoms.  (The paper's Example 5.5 uses a head variable bound
only by ``x = a``; the definition above admits it.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import UnsafeQueryError
from repro.queries.atoms import Comparison, ComparisonOp, RelationAtom
from repro.queries.terms import (
    ConstantTerm,
    Term,
    Variable,
    is_variable,
    substitute_all,
    term_constants,
    term_variables,
)

_FRESH_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with equality and inequality atoms."""

    head: tuple[Term, ...]
    atoms: tuple[RelationAtom, ...]
    comparisons: tuple[Comparison, ...]
    name: str

    def __init__(
        self,
        head: Sequence[Term],
        atoms: Sequence[RelationAtom] = (),
        comparisons: Sequence[Comparison] = (),
        name: str = "Q",
    ) -> None:
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "comparisons", tuple(comparisons))
        object.__setattr__(self, "name", name)
        self._check_safety()

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Arity of the query result."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """Whether the query has an empty head (Boolean query)."""
        return len(self.head) == 0

    def head_variables(self) -> set[Variable]:
        """Variables occurring in the head."""
        return term_variables(self.head)

    def body_variables(self) -> set[Variable]:
        """Variables occurring in the body (atoms and comparisons)."""
        result: set[Variable] = set()
        for a in self.atoms:
            result |= a.variables()
        for c in self.comparisons:
            result |= c.variables()
        return result

    def variables(self) -> set[Variable]:
        """All variables of the query."""
        return self.head_variables() | self.body_variables()

    def existential_variables(self) -> set[Variable]:
        """Body variables that do not occur in the head."""
        return self.body_variables() - self.head_variables()

    def constants(self) -> set[ConstantTerm]:
        """All constants occurring anywhere in the query."""
        result: set[ConstantTerm] = set(term_constants(self.head))
        for a in self.atoms:
            result |= a.constants()
        for c in self.comparisons:
            result |= c.constants()
        return result

    def relation_names(self) -> set[str]:
        """Names of relations referenced by the query."""
        return {a.relation for a in self.atoms}

    def equality_atoms(self) -> tuple[Comparison, ...]:
        """The equality comparisons of the query."""
        return tuple(c for c in self.comparisons if c.op is ComparisonOp.EQ)

    def inequality_atoms(self) -> tuple[Comparison, ...]:
        """The inequality comparisons of the query."""
        return tuple(c for c in self.comparisons if c.op is ComparisonOp.NEQ)

    def is_inequality_free(self) -> bool:
        """Whether the query contains no ``≠`` atoms."""
        return not self.inequality_atoms()

    # ------------------------------------------------------------------
    # safety / range restriction
    # ------------------------------------------------------------------
    def bound_variables(self) -> set[Variable]:
        """Variables bound by atoms or by equality chains to bound terms."""
        bound = set()
        for a in self.atoms:
            bound |= a.variables()
        changed = True
        while changed:
            changed = False
            for comp in self.comparisons:
                if comp.op is not ComparisonOp.EQ:
                    continue
                left_ok = not is_variable(comp.left) or comp.left in bound
                right_ok = not is_variable(comp.right) or comp.right in bound
                if left_ok and is_variable(comp.right) and comp.right not in bound:
                    bound.add(comp.right)
                    changed = True
                if right_ok and is_variable(comp.left) and comp.left not in bound:
                    bound.add(comp.left)
                    changed = True
        return bound

    def _check_safety(self) -> None:
        bound = self.bound_variables()
        dangling = (self.head_variables() | self.body_variables()) - bound
        if dangling:
            names = sorted(v.name for v in dangling)
            raise UnsafeQueryError(
                f"query {self.name!r} is not range restricted; "
                f"unbound variables: {names}"
            )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def substitute(
        self, assignment: Mapping[Variable, ConstantTerm]
    ) -> "ConjunctiveQuery":
        """The query with constants substituted for some of its variables."""
        return ConjunctiveQuery(
            head=substitute_all(self.head, assignment),
            atoms=tuple(a.substitute(assignment) for a in self.atoms),
            comparisons=tuple(c.substitute(assignment) for c in self.comparisons),
            name=self.name,
        )

    def rename_variables(
        self, renaming: Mapping[Variable, Variable]
    ) -> "ConjunctiveQuery":
        """The query with variables consistently renamed."""
        new_head = tuple(
            renaming.get(t, t) if is_variable(t) else t for t in self.head
        )
        return ConjunctiveQuery(
            head=new_head,
            atoms=tuple(a.rename(renaming) for a in self.atoms),
            comparisons=tuple(c.rename(renaming) for c in self.comparisons),
            name=self.name,
        )

    def rename_apart(self, taken: Iterable[Variable]) -> "ConjunctiveQuery":
        """Rename this query's variables away from the given set.

        Used when a query tableau must be combined with another query or with
        a c-table whose variables it must not capture (Lemma 4.2).
        """
        taken_names = {v.name for v in taken}
        renaming: dict[Variable, Variable] = {}
        for v in sorted(self.variables(), key=lambda x: x.name):
            if v.name in taken_names:
                fresh = Variable(f"{v.name}#{next(_FRESH_COUNTER)}")
                while fresh.name in taken_names:
                    fresh = Variable(f"{v.name}#{next(_FRESH_COUNTER)}")
                renaming[v] = fresh
                taken_names.add(fresh.name)
        if not renaming:
            return self
        return self.rename_variables(renaming)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """A copy of the query under a different name."""
        return ConjunctiveQuery(self.head, self.atoms, self.comparisons, name)

    # ------------------------------------------------------------------
    # tableau view
    # ------------------------------------------------------------------
    def tableau(self) -> tuple[tuple[RelationAtom, ...], tuple[Term, ...]]:
        """The tableau representation ``(T_Q, u_Q)`` of the query.

        ``T_Q`` is the sequence of relation atoms (a tableau whose rows may
        contain variables) and ``u_Q`` is the output summary.  Comparison
        atoms are not part of the tableau; callers that need them use
        :attr:`comparisons` directly.
        """
        return self.atoms, self.head

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        body_parts = [repr(a) for a in self.atoms] + [repr(c) for c in self.comparisons]
        body = ", ".join(body_parts) if body_parts else "true"
        return f"{self.name}({head}) :- {body}"


def cq(
    name: str,
    head: Sequence[Term],
    atoms: Sequence[RelationAtom] = (),
    comparisons: Sequence[Comparison] = (),
) -> ConjunctiveQuery:
    """Shorthand constructor for :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(head=head, atoms=atoms, comparisons=comparisons, name=name)


def boolean_cq(
    name: str,
    atoms: Sequence[RelationAtom] = (),
    comparisons: Sequence[Comparison] = (),
) -> ConjunctiveQuery:
    """A Boolean conjunctive query (empty head)."""
    return ConjunctiveQuery(head=(), atoms=atoms, comparisons=comparisons, name=name)
