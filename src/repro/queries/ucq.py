"""Unions of conjunctive queries (UCQ).

A UCQ is a query ``Q1 ∪ ... ∪ Qk`` where each ``Qi`` is a conjunctive query of
the same arity (Section 2.3).  The answer on an instance is the union of the
answers of the disjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import ConstantTerm, Variable


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union ``Q1 ∪ ... ∪ Qk`` of conjunctive queries."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str

    def __init__(
        self, disjuncts: Sequence[ConjunctiveQuery], name: str = "Q"
    ) -> None:
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise QueryError("a UCQ must have at least one disjunct")
        arity = disjuncts[0].arity
        for q in disjuncts:
            if q.arity != arity:
                raise QueryError(
                    f"UCQ disjuncts must share an arity; got {arity} and {q.arity}"
                )
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        """Arity of the query result."""
        return self.disjuncts[0].arity

    @property
    def is_boolean(self) -> bool:
        """Whether the query is Boolean (arity 0)."""
        return self.arity == 0

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def variables(self) -> set[Variable]:
        """All variables occurring in any disjunct."""
        result: set[Variable] = set()
        for q in self.disjuncts:
            result |= q.variables()
        return result

    def constants(self) -> set[ConstantTerm]:
        """All constants occurring in any disjunct."""
        result: set[ConstantTerm] = set()
        for q in self.disjuncts:
            result |= q.constants()
        return result

    def relation_names(self) -> set[str]:
        """Names of relations referenced by any disjunct."""
        result: set[str] = set()
        for q in self.disjuncts:
            result |= q.relation_names()
        return result

    def is_inequality_free(self) -> bool:
        """Whether no disjunct uses ``≠``."""
        return all(q.is_inequality_free() for q in self.disjuncts)

    def with_name(self, name: str) -> "UnionOfConjunctiveQueries":
        """A copy of the query under a different name."""
        return UnionOfConjunctiveQueries(self.disjuncts, name)

    def union(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """The union of two UCQs (arities must match)."""
        return UnionOfConjunctiveQueries(
            self.disjuncts + other.disjuncts, name=f"{self.name}∪{other.name}"
        )

    def __repr__(self) -> str:
        return " ∪ ".join(repr(q) for q in self.disjuncts)


def ucq(name: str, *disjuncts: ConjunctiveQuery) -> UnionOfConjunctiveQueries:
    """Shorthand constructor for :class:`UnionOfConjunctiveQueries`."""
    return UnionOfConjunctiveQueries(disjuncts, name=name)


def as_ucq(
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
) -> UnionOfConjunctiveQueries:
    """View a CQ as a single-disjunct UCQ (identity on UCQs)."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    return UnionOfConjunctiveQueries((query,), name=query.name)


def ucq_from(
    disjuncts: Iterable[ConjunctiveQuery], name: str = "Q"
) -> UnionOfConjunctiveQueries:
    """Build a UCQ from an iterable of disjuncts."""
    return UnionOfConjunctiveQueries(tuple(disjuncts), name=name)
