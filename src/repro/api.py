"""``repro.api`` — the unified :class:`Database` facade.

The paper's decision problems all share one context: a c-instance ``T``
bounded by master data ``D_m`` and containment constraints ``V``, analysed
over the Prop. 3.3 active domain ``Adom``.  The functional API threads that
context (plus engine selection) through every call; the facade holds it
once::

    from repro import Database, EngineConfig, STRONG

    db = Database(cinstance, master, constraints)
    db.is_consistent()                          # Decision with witness world
    db.count(engine="sat")                      # native SAT model counting
    db.complete(query, model=STRONG)            # RCDP, rich Decision
    db.minp(query)                              # MINP
    db.rcqp(query, engine=EngineConfig(name="parallel", workers=4))

What the facade adds over the functional layer:

* **cached ``Adom``** — the Proposition 3.3 active domain is computed once
  per (database, query) pair and reused across calls;
* **a prebuilt ``ConstraintChecker``** — the constraint right-hand sides are
  evaluated against the master data once per facade, then shared with every
  checker-accepting engine (via the registry's ambient-checker channel, so
  the sharing reaches engines created deep inside the deciders);
* **uniform engine selection** — every method accepts ``engine=`` as a name
  string or an :class:`~repro.search.registry.EngineConfig` (name + workers
  + per-engine options), resolved through the engine registry, with a
  facade-level default set at construction;
* **rich results** — decision-problem methods return
  :class:`~repro.decision.Decision` objects carrying the witness, the
  engine used and the run stats.

Capability-driven fast paths: :meth:`Database.count` routes to
engine-native counting when the engine's registry capabilities declare
``counts_natively``; :meth:`Database.is_consistent` asks for fresh-value
symmetry breaking from engines that support it when no witness is
requested.

Since PR 8 the facade is also *updatable*: :meth:`Database.update` applies
row-level adds/drops in place, recomputes only the state the change can
affect (Adom delta, per-relation fingerprints, dependency-scoped decision
cache eviction — see :mod:`repro.incremental`), incrementally maintains a
ground-fact :class:`~repro.search.propagation.CheckerSession`, and — when
the effective engine declares ``supports_incremental`` — keeps a live
:class:`~repro.search.sat_engine.IncrementalSATSession` whose DPLL solver
survives the whole update stream.  :meth:`Database.batch` groups updates
transactionally with rollback on inconsistency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Hashable, Iterator, Mapping, Sequence

from repro.completeness.certain import (
    certain_answer_over_extensions,
    certain_answer_over_models,
)
from repro.completeness.consistency import is_consistent as _is_consistent
from repro.completeness.minp import is_minimal_complete as _is_minimal_complete
from repro.completeness.models import CompletenessModel
from repro.completeness.rcdp import as_cinstance, is_relatively_complete
from repro.completeness.rcqp import rcqp as _rcqp
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTableRow
from repro.ctables.possible_worlds import (
    default_active_domain,
    model_count,
    models,
    models_with_valuations,
)
from repro.ctables.valuation import Valuation
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import CTableError, UpdateError
from repro.incremental import MISS, DecisionCache, RowSpec, UpdateBatch, UpdateResult
from repro.queries.evaluation import Query, query_relation_names
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.propagation import CheckerSession, ConstraintChecker
from repro.search.registry import EngineConfig, record_search, use_checker
from repro.search.sat_engine import IncrementalSATSession

__all__ = ["Database", "Decision", "EngineConfig", "UpdateBatch", "UpdateResult"]


def _variable_rows(cinstance: CInstance) -> tuple[tuple[str, CTableRow], ...]:
    """The non-ground rows of a c-instance, in a canonical order.

    The live SAT session can only absorb updates that leave these rows (and
    hence every selector pool and variable-row grounding clause) untouched;
    the facade compares this signature across an update to decide between
    :meth:`~repro.search.sat_engine.IncrementalSATSession.apply` and a
    session rebuild.
    """
    rows = [
        (name, row)
        for name, _index, row in cinstance.rows()
        if row.variables() or not row.condition.is_true
    ]
    rows.sort(key=repr)
    return tuple(rows)


def _match_drop(
    relation: str,
    rows: Sequence[CTableRow],
    candidates: set[int],
    spec: RowSpec,
) -> int:
    """The index of the first not-yet-dropped row matching a drop spec.

    A bare term sequence matches on terms alone (any condition); a
    :class:`CTableRow` spec must also match the local condition exactly.
    """
    if isinstance(spec, CTableRow):
        terms: tuple[Any, ...] = spec.terms
        condition = spec.condition
    else:
        terms = tuple(spec)
        condition = None
    for index in sorted(candidates):
        row = rows[index]
        if row.terms != terms:
            continue
        if condition is not None and row.condition != condition:
            continue
        return index
    detail = "" if condition is None else " with the given condition"
    raise UpdateError(
        f"drop_rows: no row {terms!r} in relation {relation!r}{detail}"
    )


class Database:
    """A partially closed database: ``(T, D_m, V)`` with cached analysis state.

    Parameters
    ----------
    database:
        A :class:`~repro.ctables.cinstance.CInstance` or a
        :class:`~repro.relational.instance.GroundInstance` (coerced to the
        variable-free c-instance it trivially is).
    master:
        The closed-world master data ``D_m``.
    constraints:
        The containment constraints ``V`` tying the database to the master
        data.
    engine:
        The facade-level default engine selection — a registered engine name,
        an :class:`~repro.search.registry.EngineConfig`, or ``None`` for the
        registry default.  Every method takes an ``engine=`` override.
    checker_mode:
        Evaluation mode of the shared
        :class:`~repro.search.propagation.ConstraintChecker`: ``"delta"``
        (the default) for semi-naive incremental constraint checking inside
        the tree-search engines, ``"full"`` for the recompute-from-scratch
        oracle path (debugging / differential runs).
    checker_indexed:
        Whether the shared checker's delta joins run over the hash indexes
        of :class:`~repro.relational.indexing.IndexedFactStore` (the
        default) or over linear scans (``False``; the measurable baseline
        the benchmark gates against).  All configurations agree on every
        verdict.
    """

    def __init__(
        self,
        database: CInstance | GroundInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint] = (),
        *,
        engine: EngineConfig | str | None = None,
        checker_mode: str = "delta",
        checker_indexed: bool = True,
    ) -> None:
        self._cinstance = as_cinstance(database)
        self._master = master
        self._constraints: tuple[ContainmentConstraint, ...] = tuple(constraints)
        self._default_engine = EngineConfig.coerce(engine)
        self._checker = ConstraintChecker(
            master, self._constraints, mode=checker_mode, indexed=checker_indexed
        )
        self._base_adom: ActiveDomain | None = None
        self._query_adoms: dict[Any, ActiveDomain] = {}
        # Incremental-update state (see repro.incremental): the decision
        # cache, the ground-fact checker session maintained across updates,
        # and the live SAT session (built lazily, kept while compatible).
        self._cache = DecisionCache()
        self._baseline: CheckerSession | None = None
        self._sat_session: IncrementalSATSession | None = None

    # ------------------------------------------------------------------
    # context accessors
    # ------------------------------------------------------------------
    @property
    def cinstance(self) -> CInstance:
        """The underlying c-instance ``T``."""
        return self._cinstance

    @property
    def master(self) -> MasterData:
        """The master data ``D_m``."""
        return self._master

    @property
    def constraints(self) -> tuple[ContainmentConstraint, ...]:
        """The containment constraints ``V``."""
        return self._constraints

    @property
    def checker(self) -> ConstraintChecker:
        """The prebuilt constraint checker shared with the engines."""
        return self._checker

    @property
    def default_engine(self) -> EngineConfig:
        """The facade-level default engine selection."""
        return self._default_engine

    def adom(self, query: Query | None = None) -> ActiveDomain:
        """The Prop. 3.3 ``Adom``, cached per (database, query) pair.

        Unhashable queries are accommodated by recomputing (the cache is an
        optimisation, never a requirement).
        """
        if query is None:
            if self._base_adom is None:
                self._base_adom = default_active_domain(
                    self._cinstance, self._master, self._constraints
                )
            return self._base_adom
        try:
            cached = self._query_adoms.get(query)
        except TypeError:  # unhashable query
            return default_active_domain(
                self._cinstance, self._master, self._constraints, query
            )
        if cached is None:
            cached = default_active_domain(
                self._cinstance, self._master, self._constraints, query
            )
            self._query_adoms[query] = cached
        return cached

    def _engine(self, engine: EngineConfig | str | None) -> EngineConfig:
        """The effective engine selection for one call."""
        if engine is None:
            return self._default_engine
        return EngineConfig.coerce(engine)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def update(
        self,
        add_rows: Mapping[str, Sequence[RowSpec]] | None = None,
        drop_rows: Mapping[str, Sequence[RowSpec]] | None = None,
    ) -> UpdateResult:
        """Apply row-level adds/drops in place, keeping cached state alive.

        ``add_rows`` / ``drop_rows`` map relation names to row
        specifications — bare term sequences or full
        :class:`~repro.ctables.ctable.CTableRow` objects (terms plus local
        condition).  Drops are applied first and match the *first* row with
        the given terms (and condition, when a ``CTableRow`` is passed); a
        drop that matches nothing, an unknown relation, or a malformed row
        raises :class:`~repro.exceptions.UpdateError` and leaves the
        database untouched.

        On commit the facade recomputes only what the change can affect:
        the ``Adom`` delta, the per-relation content fingerprints, the
        dependency-scoped decision-cache eviction, the ground-fact checker
        session (tuple-level push/retract, no rebuild) and — when alive and
        compatible — the incremental SAT session.  See the returned
        :class:`~repro.incremental.UpdateResult` for what happened.
        """
        additions = dict(add_rows or {})
        removals = dict(drop_rows or {})
        tables = dict(self._cinstance.tables())
        for name in (*removals, *additions):
            if name not in tables:
                raise UpdateError(f"update mentions unknown relation {name!r}")
        added: list[tuple[str, CTableRow]] = []
        dropped: list[tuple[str, CTableRow]] = []
        try:
            for name, specs in removals.items():
                table = tables[name]
                keep = set(range(len(table.rows)))
                for spec in specs:
                    index = _match_drop(name, table.rows, keep, spec)
                    keep.discard(index)
                    dropped.append((name, table.rows[index]))
                tables[name] = table.restrict(keep)
            for name, specs in additions.items():
                table = tables[name]
                for spec in specs:
                    row = spec if isinstance(spec, CTableRow) else CTableRow(spec)
                    table = table.add_row(row.terms, row.condition)
                    added.append((name, row))
                tables[name] = table
            updated = CInstance(self._cinstance.schema, tables)
        except CTableError as err:
            raise UpdateError(str(err)) from err
        return self._commit(updated, tuple(added), tuple(dropped))

    def batch(self) -> UpdateBatch:
        """A transactional update batch with rollback on inconsistency.

        Use as a context manager; see
        :class:`~repro.incremental.UpdateBatch`.
        """
        return UpdateBatch(self)

    def _commit(
        self,
        updated: CInstance,
        added: tuple[tuple[str, CTableRow], ...],
        dropped: tuple[tuple[str, CTableRow], ...],
    ) -> UpdateResult:
        """Swap in the updated c-instance and refresh the dependent caches."""
        previous = self._cinstance
        old_fingerprints = previous.relation_fingerprints()
        new_fingerprints = updated.relation_fingerprints()
        touched = frozenset(
            name
            for name, fingerprint in new_fingerprints.items()
            if old_fingerprints[name] != fingerprint
        )
        if not touched:
            # Net no-op (e.g. a drop re-added in the same call): every cache
            # is still exact, including the sessions.
            return UpdateResult(
                added=added,
                dropped=dropped,
                touched=touched,
                adom_gained=frozenset(),
                adom_lost=frozenset(),
                invalidated=0,
                consistent=self._ground_fact_verdict(),
            )

        old_adom = self.adom()
        old_ground = previous.ground_tuples()
        old_variable_rows = _variable_rows(previous)

        self._cinstance = updated
        self._base_adom = None
        self._query_adoms.clear()
        new_adom = self.adom()
        gained, lost = new_adom.diff(old_adom)
        invalidated = self._cache.invalidate(touched)

        new_ground = updated.ground_tuples()
        added_ground = [
            (name, row)
            for name in sorted(touched)
            for row in sorted(new_ground[name] - old_ground[name])
        ]
        dropped_ground = [
            (name, row)
            for name in sorted(touched)
            for row in sorted(old_ground[name] - new_ground[name])
        ]

        # Ground-fact checker session: tuple-level maintenance, no rebuild.
        if self._baseline is None:
            self._baseline = self._build_baseline()
        else:
            for name, row in dropped_ground:
                self._baseline.retract(name, row)
            for name, row in added_ground:
                self._baseline.push(name, row)

        # Live SAT session: absorb ground-only diffs, rebuild lazily on any
        # change to the encoding's fixed parts (Adom, variables, pools,
        # non-ground rows).
        if self._sat_session is not None:
            if self._sat_session.compatible(
                updated, new_adom
            ) and _variable_rows(updated) == old_variable_rows:
                self._sat_session.apply(updated, added_ground, dropped_ground)
            else:
                self._sat_session = None

        return UpdateResult(
            added=added,
            dropped=dropped,
            touched=touched,
            adom_gained=gained,
            adom_lost=lost,
            invalidated=invalidated,
            consistent=self._ground_fact_verdict(),
        )

    def _build_baseline(self) -> CheckerSession:
        """A checker session holding the definite ground tuples."""
        session = self._checker.session(self._cinstance.schema.relation_names)
        for name in sorted(self._cinstance.ground_tuples()):
            for row in sorted(self._cinstance.ground_tuples()[name]):
                # reprolint: disable=R002 -- the session mirrors the facade's
                # ground facts for the facade's whole lifetime; update()
                # unwinds via retract(), never pop().
                session.push(name, row)
        return session

    def _ground_fact_verdict(self) -> bool | None:
        """``False`` when the ground facts alone violate a constraint.

        The definite tuples are a subset of every possible world and the
        constraint queries are monotone, so a violation here is a violation
        in *every* world: the database is certainly inconsistent.  ``None``
        (not ``True``!) otherwise — satisfaction on the ground facts says
        nothing about the variable rows.
        """
        if self._baseline is None:
            return None
        return False if not self._baseline.is_satisfied else None

    def _ground_facts_violated(self) -> bool:
        """Batch-commit fast path: certain inconsistency from ground facts."""
        return self._ground_fact_verdict() is False

    def _update_snapshot(self) -> tuple[Any, ...]:
        """The restorable facade state :class:`UpdateBatch` snapshots."""
        return (
            self._cinstance,
            self._base_adom,
            dict(self._query_adoms),
            self._cache.snapshot(),
        )

    def _update_restore(self, state: tuple[Any, ...]) -> None:
        """Roll the facade back to a :meth:`_update_snapshot`.

        The checker and SAT sessions were mutated in place by the rolled-back
        updates, so they are discarded (both are pure caches: the baseline
        session rebuilds on the next update, the SAT session on the next
        routed call).
        """
        cinstance, base_adom, query_adoms, cache = state
        self._cinstance = cinstance
        self._base_adom = base_adom
        self._query_adoms = dict(query_adoms)
        self._cache.restore(cache)
        self._baseline = None
        self._sat_session = None

    # ------------------------------------------------------------------
    # decision cache and incremental SAT routing
    # ------------------------------------------------------------------
    def _cache_key(
        self, problem: str, args_key: Any, config: EngineConfig
    ) -> Hashable | None:
        """The cache key for one call, or ``None`` when uncacheable."""
        try:
            key: Hashable = (
                problem,
                args_key,
                config.spec().name,
                config.workers,
                tuple(sorted(config.options.items())),
            )
            hash(key)
        except TypeError:
            return None
        return key

    def _cache_context(
        self,
    ) -> tuple[dict[str, int], ActiveDomain, dict[Any, Any]]:
        """The validation context cache entries are checked against."""
        return (
            self._cinstance.relation_fingerprints(),
            self.adom(),
            dict(self._cinstance.variable_domains()),
        )

    def cache_probe(
        self,
        problem: str,
        args_key: Any,
        *,
        engine: EngineConfig | str | None = None,
    ) -> Any:
        """Look up a decision-cache entry without computing anything.

        Returns the cached value — validated against the current per-relation
        fingerprints, Adom and variable domains — or the
        :data:`repro.incremental.MISS` sentinel.  Cached
        :class:`~repro.decision.Decision` objects come back with
        ``stats.cache_hit=True``.  This is the probe half of the facade's
        memoisation, exposed so embedding layers (the :mod:`repro.service`
        pool, which computes on replicas in worker processes) can share one
        cache with the facade's own methods: the ``(problem, args_key,
        engine)`` identity is exactly what :meth:`is_consistent`,
        :meth:`complete` &c. use internally.
        """
        config = self._engine(engine)
        key = self._cache_key(problem, args_key, config)
        if key is None:
            return MISS
        hit = self._cache.get(key, *self._cache_context())
        if hit is MISS:
            return MISS
        if isinstance(hit, Decision):
            return hit.with_(stats=replace(hit.stats, cache_hit=True))
        return hit

    def cache_store(
        self,
        problem: str,
        args_key: Any,
        value: Any,
        *,
        deps: frozenset[str] | None = None,
        engine: EngineConfig | str | None = None,
    ) -> None:
        """Store a computed value under the facade's decision-cache rules.

        ``deps`` is the dependency relation set governing invalidation
        (``None`` = depends on every relation; ``frozenset()`` = survives all
        updates, the RCQP discipline).  Unhashable identities are silently
        not cached — the cache is an optimisation, never a requirement.
        """
        config = self._engine(engine)
        key = self._cache_key(problem, args_key, config)
        if key is None:
            return
        self._cache.put(key, value, deps, *self._cache_context())

    def _cached(
        self,
        problem: str,
        args_key: Any,
        deps: frozenset[str] | None,
        config: EngineConfig,
        compute: Any,
    ) -> Any:
        """Serve from the decision cache or compute-and-store.

        Thin composition of :meth:`cache_probe` and :meth:`cache_store` —
        kept internal because it takes a resolved :class:`EngineConfig` and a
        thunk, which only the facade's own methods have at hand.
        """
        hit = self.cache_probe(problem, args_key, engine=config)
        if hit is not MISS:
            return hit
        value = compute()
        self.cache_store(problem, args_key, value, deps=deps, engine=config)
        return value

    def constraint_relations(self) -> frozenset[str]:
        """Database relations mentioned by any constraint left-hand side.

        This is the dependency set of witness-free consistency verdicts and
        one half of the certain-answer dependency set; public so embedding
        layers can compute the same dependency-scoped invalidation rules the
        facade applies internally.
        """
        return frozenset(
            name
            for constraint in self._constraints
            for name in constraint.relation_names()
        )

    def _uses_incremental_session(self, config: EngineConfig) -> bool:
        """Whether a call routes through the live incremental SAT session."""
        return (
            config.spec().capabilities.supports_incremental
            and config.workers is None
            and not config.options
        )

    def _sat_session_for(self) -> IncrementalSATSession:
        if self._sat_session is None:
            self._sat_session = IncrementalSATSession(
                self._cinstance,
                self._master,
                self._constraints,
                self.adom(),
                checker=self._checker,
            )
        return self._sat_session

    # ------------------------------------------------------------------
    # world-level surfaces
    # ------------------------------------------------------------------
    def worlds(
        self,
        *,
        deduplicate: bool = True,
        engine: EngineConfig | str | None = None,
    ) -> Iterator[GroundInstance]:
        """Enumerate ``Mod_Adom(T, D_m, V)`` (the possible worlds).

        The prebuilt checker is passed explicitly (not via the ambient
        channel): this generator may stay suspended arbitrarily long, and
        ambient state held across a suspension would leak into unrelated
        callers.

        Fully drained enumerations are memoised: a repeat call with the same
        flags and engine replays the cached world list until an update
        touches the database.  Partially consumed (or mid-update) runs are
        never committed to the cache.
        """
        config = self._engine(engine)
        key = self._cache_key("worlds", bool(deduplicate), config)
        if key is not None:
            hit = self._cache.get(key, *self._cache_context())
            if hit is not MISS:
                return iter(hit)

        def enumerate_and_memoise() -> Iterator[GroundInstance]:
            context = self._cache_context() if key is not None else None
            results: list[GroundInstance] = []
            for world in models(
                self._cinstance,
                self._master,
                self._constraints,
                self.adom(),
                deduplicate=deduplicate,
                engine=config,
                checker=self._checker,
            ):
                results.append(world)
                yield world
            if key is not None and context == self._cache_context():
                self._cache.put(key, tuple(results), None, *context)

        return enumerate_and_memoise()

    def valuations(
        self, *, engine: EngineConfig | str | None = None
    ) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs over the Adom valuations.

        As with :meth:`worlds`, the shared checker travels as an explicit
        argument because the generator may suspend, and fully drained
        enumerations are memoised until an update invalidates them.
        """
        config = self._engine(engine)
        key = self._cache_key("valuations", (), config)
        if key is not None:
            hit = self._cache.get(key, *self._cache_context())
            if hit is not MISS:
                return iter(hit)

        def enumerate_and_memoise() -> Iterator[tuple[Valuation, GroundInstance]]:
            context = self._cache_context() if key is not None else None
            results: list[tuple[Valuation, GroundInstance]] = []
            for pair in models_with_valuations(
                self._cinstance,
                self._master,
                self._constraints,
                self.adom(),
                engine=config,
                checker=self._checker,
            ):
                results.append(pair)
                yield pair
            if key is not None and context == self._cache_context():
                self._cache.put(key, tuple(results), None, *context)

        return enumerate_and_memoise()

    def is_consistent(
        self,
        *,
        engine: EngineConfig | str | None = None,
        witness: bool = True,
    ) -> Decision:
        """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency problem).

        By default the positive decision carries a concrete witness world;
        pass ``witness=False`` for the cheaper existence-only probe (engines
        may then use symmetry breaking and early cancellation).

        Witness-free probes on an incremental-capable engine route through
        the facade's live SAT session: after an update only the guard
        assumptions change, so the solver — with all its learned clauses —
        answers without a re-encode (``stats.reused_solver``).  Verdicts
        are cached; witness-free consistency depends only on the
        constraint-constrained relations, so updates elsewhere keep the
        cached answer valid.
        """
        config = self._engine(engine)
        deps = None if witness else self.constraint_relations()

        def compute() -> Decision:
            if not witness and self._uses_incremental_session(config):
                session = self._sat_session_for()
                rec = DecisionRecorder("consistency", config)
                with rec:
                    record_search(session)
                    holds = session.has_world()
                return rec.decision(holds)
            with use_checker(self._checker):
                return _is_consistent(
                    self._cinstance,
                    self._master,
                    self._constraints,
                    adom=self.adom(),
                    engine=config,
                    witness=witness,
                )

        result: Decision = self._cached(
            "consistency", ("witness", witness), deps, config, compute
        )
        return result

    def count(self, *, engine: EngineConfig | str | None = None) -> Decision:
        """The number of distinct possible worlds, as a Decision.

        ``.value`` is the count and the decision is truthy iff at least one
        world exists.  Engines whose registry capabilities declare
        ``counts_natively`` count without materialising worlds (SAT
        blocking-clause enumeration, parallel shard-count merging).  On an
        incremental-capable engine the count reuses the live session's
        encoding (no re-encode after updates); verdicts are cached until an
        update touches any relation.
        """
        config = self._engine(engine)

        def compute() -> Decision:
            rec = DecisionRecorder("model-count", config)
            with rec:
                if self._uses_incremental_session(config):
                    session = self._sat_session_for()
                    record_search(session)
                    count = session.count_worlds()
                else:
                    count = model_count(
                        self._cinstance,
                        self._master,
                        self._constraints,
                        self.adom(),
                        engine=config,
                        checker=self._checker,
                    )
            return rec.decision(count > 0, value=count)

        result: Decision = self._cached("model-count", (), None, config, compute)
        return result

    # ------------------------------------------------------------------
    # decision problems
    # ------------------------------------------------------------------
    def complete(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        allow_bounded: bool = False,
        max_new_tuples: int = 1,
        limit: int | None = None,
        require_consistent: bool = True,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """RCDP: is the database complete for ``query`` under ``model``?

        The strong model attaches a
        :class:`~repro.completeness.strong.StrongIncompletenessWitness`
        counterexample to negative decisions, the viable model attaches the
        relatively complete witness world to positive ones, and the weak
        model attaches its
        :class:`~repro.completeness.weak.WeakCompletenessReport` as
        ``.details``.
        """
        config = self._engine(engine)

        def compute() -> Decision:
            with use_checker(self._checker):
                return is_relatively_complete(
                    self._cinstance,
                    query,
                    self._master,
                    self._constraints,
                    model,
                    allow_bounded=allow_bounded,
                    max_new_tuples=max_new_tuples,
                    adom=self.adom(query),
                    limit=limit,
                    require_consistent=require_consistent,
                    engine=config,
                )

        args_key = (
            query,
            model,
            allow_bounded,
            max_new_tuples,
            limit,
            require_consistent,
        )
        result: Decision = self._cached("rcdp", args_key, None, config, compute)
        return result

    def rcdp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        **kwargs: Any,
    ) -> Decision:
        """Alias of :meth:`complete` using the paper's problem name."""
        return self.complete(query, model, **kwargs)

    def minp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        limit: int | None = None,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """MINP: is the database a *minimal* complete database for ``query``?"""
        config = self._engine(engine)

        def compute() -> Decision:
            with use_checker(self._checker):
                return _is_minimal_complete(
                    self._cinstance,
                    query,
                    self._master,
                    self._constraints,
                    model,
                    adom=self.adom(query),
                    limit=limit,
                    engine=config,
                )

        result: Decision = self._cached(
            "minp", (query, model, limit), None, config, compute
        )
        return result

    def rcqp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        max_size: int = 2,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """RCQP: does *any* database complete for ``query`` exist?

        Uses this database's schema, master data and constraints; the
        c-instance contents play no role in RCQP (the problem quantifies
        over all databases) — cached verdicts accordingly have an *empty*
        dependency set and survive every :meth:`update`.
        """
        config = self._engine(engine)

        def compute() -> Decision:
            with use_checker(self._checker):
                return _rcqp(
                    query,
                    self._cinstance.schema,
                    self._master,
                    self._constraints,
                    model=model.value
                    if isinstance(model, CompletenessModel)
                    else model,
                    max_size=max_size,
                    engine=config,
                )

        result: Decision = self._cached(
            "rcqp", (query, model, max_size), frozenset(), config, compute
        )
        return result

    # ------------------------------------------------------------------
    # certain answers
    # ------------------------------------------------------------------
    def certain_answers(
        self, query: Query, *, engine: EngineConfig | str | None = None
    ) -> frozenset[Row]:
        """``⋂_{I ∈ Mod_Adom(T, D_m, V)} Q(I)`` — certain over the worlds.

        Cached answers depend only on the relations the constraints and the
        query's atoms mention (which valuations the constraints accept, and
        what ``Q`` reads from each world); updates to other relations keep
        them valid.
        """
        config = self._engine(engine)

        def compute() -> frozenset[Row]:
            with use_checker(self._checker):
                return certain_answer_over_models(
                    self._cinstance,
                    query,
                    self._master,
                    self._constraints,
                    adom=self.adom(query),
                    engine=config,
                )

        deps = self.constraint_relations() | query_relation_names(query)
        result: frozenset[Row] = self._cached(
            "certain-answers", (query,), deps, config, compute
        )
        return result

    def certain_answers_over_extensions(
        self,
        query: Query,
        *,
        limit: int | None = None,
        engine: EngineConfig | str | None = None,
    ) -> frozenset[Row]:
        """Certain answer over all partially closed extensions of all worlds."""
        config = self._engine(engine)

        def compute() -> frozenset[Row]:
            with use_checker(self._checker):
                return certain_answer_over_extensions(
                    self._cinstance,
                    query,
                    self._master,
                    self._constraints,
                    adom=self.adom(query),
                    limit=limit,
                    engine=config,
                ).answers

        result: frozenset[Row] = self._cached(
            "certain-answers-extensions", (query, limit), None, config, compute
        )
        return result

    def __repr__(self) -> str:
        return (
            f"Database({self._cinstance.size} c-rows, "
            f"{len(self._constraints)} constraints, "
            f"engine={self._default_engine.name or 'default'})"
        )
