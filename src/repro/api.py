"""``repro.api`` — the unified :class:`Database` facade.

The paper's decision problems all share one context: a c-instance ``T``
bounded by master data ``D_m`` and containment constraints ``V``, analysed
over the Prop. 3.3 active domain ``Adom``.  The functional API threads that
context (plus engine selection) through every call; the facade holds it
once::

    from repro import Database, EngineConfig, STRONG

    db = Database(cinstance, master, constraints)
    db.is_consistent()                          # Decision with witness world
    db.count(engine="sat")                      # native SAT model counting
    db.complete(query, model=STRONG)            # RCDP, rich Decision
    db.minp(query)                              # MINP
    db.rcqp(query, engine=EngineConfig(name="parallel", workers=4))

What the facade adds over the functional layer:

* **cached ``Adom``** — the Proposition 3.3 active domain is computed once
  per (database, query) pair and reused across calls;
* **a prebuilt ``ConstraintChecker``** — the constraint right-hand sides are
  evaluated against the master data once per facade, then shared with every
  checker-accepting engine (via the registry's ambient-checker channel, so
  the sharing reaches engines created deep inside the deciders);
* **uniform engine selection** — every method accepts ``engine=`` as a name
  string or an :class:`~repro.search.registry.EngineConfig` (name + workers
  + per-engine options), resolved through the engine registry, with a
  facade-level default set at construction;
* **rich results** — decision-problem methods return
  :class:`~repro.decision.Decision` objects carrying the witness, the
  engine used and the run stats.

Capability-driven fast paths: :meth:`Database.count` routes to
engine-native counting when the engine's registry capabilities declare
``counts_natively``; :meth:`Database.is_consistent` asks for fresh-value
symmetry breaking from engines that support it when no witness is
requested.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.completeness.certain import (
    certain_answer_over_extensions,
    certain_answer_over_models,
)
from repro.completeness.consistency import is_consistent as _is_consistent
from repro.completeness.minp import is_minimal_complete as _is_minimal_complete
from repro.completeness.models import CompletenessModel
from repro.completeness.rcdp import as_cinstance, is_relatively_complete
from repro.completeness.rcqp import rcqp as _rcqp
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import (
    default_active_domain,
    model_count,
    models,
    models_with_valuations,
)
from repro.ctables.valuation import Valuation
from repro.decision import Decision, DecisionRecorder
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.propagation import ConstraintChecker
from repro.search.registry import EngineConfig, use_checker

__all__ = ["Database", "Decision", "EngineConfig"]


class Database:
    """A partially closed database: ``(T, D_m, V)`` with cached analysis state.

    Parameters
    ----------
    database:
        A :class:`~repro.ctables.cinstance.CInstance` or a
        :class:`~repro.relational.instance.GroundInstance` (coerced to the
        variable-free c-instance it trivially is).
    master:
        The closed-world master data ``D_m``.
    constraints:
        The containment constraints ``V`` tying the database to the master
        data.
    engine:
        The facade-level default engine selection — a registered engine name,
        an :class:`~repro.search.registry.EngineConfig`, or ``None`` for the
        registry default.  Every method takes an ``engine=`` override.
    checker_mode:
        Evaluation mode of the shared
        :class:`~repro.search.propagation.ConstraintChecker`: ``"delta"``
        (the default) for semi-naive incremental constraint checking inside
        the tree-search engines, ``"full"`` for the recompute-from-scratch
        oracle path (debugging / differential runs).
    checker_indexed:
        Whether the shared checker's delta joins run over the hash indexes
        of :class:`~repro.relational.indexing.IndexedFactStore` (the
        default) or over linear scans (``False``; the measurable baseline
        the benchmark gates against).  All configurations agree on every
        verdict.
    """

    def __init__(
        self,
        database: CInstance | GroundInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint] = (),
        *,
        engine: EngineConfig | str | None = None,
        checker_mode: str = "delta",
        checker_indexed: bool = True,
    ) -> None:
        self._cinstance = as_cinstance(database)
        self._master = master
        self._constraints: tuple[ContainmentConstraint, ...] = tuple(constraints)
        self._default_engine = EngineConfig.coerce(engine)
        self._checker = ConstraintChecker(
            master, self._constraints, mode=checker_mode, indexed=checker_indexed
        )
        self._base_adom: ActiveDomain | None = None
        self._query_adoms: dict[Any, ActiveDomain] = {}

    # ------------------------------------------------------------------
    # context accessors
    # ------------------------------------------------------------------
    @property
    def cinstance(self) -> CInstance:
        """The underlying c-instance ``T``."""
        return self._cinstance

    @property
    def master(self) -> MasterData:
        """The master data ``D_m``."""
        return self._master

    @property
    def constraints(self) -> tuple[ContainmentConstraint, ...]:
        """The containment constraints ``V``."""
        return self._constraints

    @property
    def checker(self) -> ConstraintChecker:
        """The prebuilt constraint checker shared with the engines."""
        return self._checker

    @property
    def default_engine(self) -> EngineConfig:
        """The facade-level default engine selection."""
        return self._default_engine

    def adom(self, query: Query | None = None) -> ActiveDomain:
        """The Prop. 3.3 ``Adom``, cached per (database, query) pair.

        Unhashable queries are accommodated by recomputing (the cache is an
        optimisation, never a requirement).
        """
        if query is None:
            if self._base_adom is None:
                self._base_adom = default_active_domain(
                    self._cinstance, self._master, self._constraints
                )
            return self._base_adom
        try:
            cached = self._query_adoms.get(query)
        except TypeError:  # unhashable query
            return default_active_domain(
                self._cinstance, self._master, self._constraints, query
            )
        if cached is None:
            cached = default_active_domain(
                self._cinstance, self._master, self._constraints, query
            )
            self._query_adoms[query] = cached
        return cached

    def _engine(self, engine: EngineConfig | str | None) -> EngineConfig:
        """The effective engine selection for one call."""
        if engine is None:
            return self._default_engine
        return EngineConfig.coerce(engine)

    # ------------------------------------------------------------------
    # world-level surfaces
    # ------------------------------------------------------------------
    def worlds(
        self,
        *,
        deduplicate: bool = True,
        engine: EngineConfig | str | None = None,
    ) -> Iterator[GroundInstance]:
        """Enumerate ``Mod_Adom(T, D_m, V)`` (the possible worlds).

        The prebuilt checker is passed explicitly (not via the ambient
        channel): this generator may stay suspended arbitrarily long, and
        ambient state held across a suspension would leak into unrelated
        callers.
        """
        return models(
            self._cinstance,
            self._master,
            self._constraints,
            self.adom(),
            deduplicate=deduplicate,
            engine=self._engine(engine),
            checker=self._checker,
        )

    def valuations(
        self, *, engine: EngineConfig | str | None = None
    ) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs over the Adom valuations.

        As with :meth:`worlds`, the shared checker travels as an explicit
        argument because the generator may suspend.
        """
        return models_with_valuations(
            self._cinstance,
            self._master,
            self._constraints,
            self.adom(),
            engine=self._engine(engine),
            checker=self._checker,
        )

    def is_consistent(
        self,
        *,
        engine: EngineConfig | str | None = None,
        witness: bool = True,
    ) -> Decision:
        """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency problem).

        By default the positive decision carries a concrete witness world;
        pass ``witness=False`` for the cheaper existence-only probe (engines
        may then use symmetry breaking and early cancellation).
        """
        with use_checker(self._checker):
            return _is_consistent(
                self._cinstance,
                self._master,
                self._constraints,
                adom=self.adom(),
                engine=self._engine(engine),
                witness=witness,
            )

    def count(self, *, engine: EngineConfig | str | None = None) -> Decision:
        """The number of distinct possible worlds, as a Decision.

        ``.value`` is the count and the decision is truthy iff at least one
        world exists.  Engines whose registry capabilities declare
        ``counts_natively`` count without materialising worlds (SAT
        blocking-clause enumeration, parallel shard-count merging).
        """
        config = self._engine(engine)
        rec = DecisionRecorder("model-count", config)
        with rec:
            count = model_count(
                self._cinstance,
                self._master,
                self._constraints,
                self.adom(),
                engine=config,
                checker=self._checker,
            )
        return rec.decision(count > 0, value=count)

    # ------------------------------------------------------------------
    # decision problems
    # ------------------------------------------------------------------
    def complete(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        allow_bounded: bool = False,
        max_new_tuples: int = 1,
        limit: int | None = None,
        require_consistent: bool = True,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """RCDP: is the database complete for ``query`` under ``model``?

        The strong model attaches a
        :class:`~repro.completeness.strong.StrongIncompletenessWitness`
        counterexample to negative decisions, the viable model attaches the
        relatively complete witness world to positive ones, and the weak
        model attaches its
        :class:`~repro.completeness.weak.WeakCompletenessReport` as
        ``.details``.
        """
        with use_checker(self._checker):
            return is_relatively_complete(
                self._cinstance,
                query,
                self._master,
                self._constraints,
                model,
                allow_bounded=allow_bounded,
                max_new_tuples=max_new_tuples,
                adom=self.adom(query),
                limit=limit,
                require_consistent=require_consistent,
                engine=self._engine(engine),
            )

    def rcdp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        **kwargs: Any,
    ) -> Decision:
        """Alias of :meth:`complete` using the paper's problem name."""
        return self.complete(query, model, **kwargs)

    def minp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        limit: int | None = None,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """MINP: is the database a *minimal* complete database for ``query``?"""
        with use_checker(self._checker):
            return _is_minimal_complete(
                self._cinstance,
                query,
                self._master,
                self._constraints,
                model,
                adom=self.adom(query),
                limit=limit,
                engine=self._engine(engine),
            )

    def rcqp(
        self,
        query: Query,
        model: CompletenessModel = CompletenessModel.STRONG,
        *,
        max_size: int = 2,
        engine: EngineConfig | str | None = None,
    ) -> Decision:
        """RCQP: does *any* database complete for ``query`` exist?

        Uses this database's schema, master data and constraints; the
        c-instance contents play no role in RCQP (the problem quantifies
        over all databases).
        """
        with use_checker(self._checker):
            return _rcqp(
                query,
                self._cinstance.schema,
                self._master,
                self._constraints,
                model=model.value if isinstance(model, CompletenessModel) else model,
                max_size=max_size,
                engine=self._engine(engine),
            )

    # ------------------------------------------------------------------
    # certain answers
    # ------------------------------------------------------------------
    def certain_answers(
        self, query: Query, *, engine: EngineConfig | str | None = None
    ) -> frozenset[Row]:
        """``⋂_{I ∈ Mod_Adom(T, D_m, V)} Q(I)`` — certain over the worlds."""
        with use_checker(self._checker):
            return certain_answer_over_models(
                self._cinstance,
                query,
                self._master,
                self._constraints,
                adom=self.adom(query),
                engine=self._engine(engine),
            )

    def certain_answers_over_extensions(
        self,
        query: Query,
        *,
        limit: int | None = None,
        engine: EngineConfig | str | None = None,
    ) -> frozenset[Row]:
        """Certain answer over all partially closed extensions of all worlds."""
        with use_checker(self._checker):
            return certain_answer_over_extensions(
                self._cinstance,
                query,
                self._master,
                self._constraints,
                adom=self.adom(query),
                limit=limit,
                engine=self._engine(engine),
            ).answers

    def __repr__(self) -> str:
        return (
            f"Database({self._cinstance.size} c-rows, "
            f"{len(self._constraints)} constraints, "
            f"engine={self._default_engine.name or 'default'})"
        )
