"""MINP — the minimality problem.

``MINP(L_Q)``: given ``Q``, ``D_m``, ``V`` and a partially closed
c-instance ``T``, is ``T`` a *minimal* database complete for ``Q`` relative
to ``(D_m, V)``?  (Section 2.3.)

The notion of minimality depends on the model (Section 2.2):

* **ground instances** — ``I`` is minimal iff it is complete and no proper
  subinstance is complete; by Lemma 4.7 it suffices to drop one tuple at a
  time.
* **strong model** — ``T`` is a minimal strongly complete c-instance iff
  *every* world of ``Mod(T)`` is a minimal complete ground instance.
* **viable model** — iff *some* world of ``Mod(T)`` is a minimal complete
  ground instance.
* **weak model** — iff ``T`` is weakly complete and no strict sub-c-instance
  ``T' ⊊ T`` is weakly complete.  Lemma 4.7 fails here (Example 5.5):
  single-row removals are not enough, so all subsets of rows are examined.
  For CQ the drastic simplification of Lemma 5.7 applies and is exposed as
  :func:`is_minimal_weakly_complete_cq`.
"""

from __future__ import annotations

from typing import Sequence

from repro.completeness.ground import is_ground_complete
from repro.completeness.models import CompletenessModel
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, has_model, models
from repro.exceptions import InconsistentCInstanceError, QueryError
from repro.queries.classify import QueryLanguage, classify, supports_exact_strong_check
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData


# ---------------------------------------------------------------------------
# ground instances (strong/viable notion, Lemma 4.7)
# ---------------------------------------------------------------------------
def is_minimal_ground_complete(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
) -> bool:
    """Whether ``I`` is a minimal ground instance complete for ``Q``.

    By Lemma 4.7, ``I`` is minimal iff it is complete and for every tuple
    ``t ∈ I`` the instance ``I \\ {t}`` is not complete.  (Every subinstance
    of a partially closed instance is partially closed, Lemma 4.7(a).)
    """
    if not is_ground_complete(instance, query, master, constraints, adom=adom, limit=limit):
        return False
    for smaller in instance.proper_subinstances():
        if is_ground_complete(smaller, query, master, constraints, adom=adom, limit=limit):
            return False
    return True


# ---------------------------------------------------------------------------
# strong and viable models for c-instances
# ---------------------------------------------------------------------------
def is_minimal_strongly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """MINPˢ: every world of ``Mod_Adom(T)`` is a minimal complete instance.

    Exact for CQ, UCQ and ∃FO⁺ (Πᵖ₃-complete for c-instances, Theorem 4.8).
    """
    if not supports_exact_strong_check(query):
        raise QueryError(
            f"MINP^s is undecidable for {classify(query).value} (Theorem 4.8)"
        )
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    saw_world = False
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        saw_world = True
        if not is_minimal_ground_complete(
            world, query, master, constraints, adom=adom, limit=limit
        ):
            return False
    if not saw_world:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; minimality is only defined for partially "
            "closed (consistent) c-instances"
        )
    return True


def is_minimal_viably_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """MINPᵛ: some world of ``Mod_Adom(T)`` is a minimal complete instance.

    Exact for CQ, UCQ and ∃FO⁺ (Σᵖ₃-complete for c-instances, Corollary 6.3).
    """
    if not supports_exact_strong_check(query):
        raise QueryError(
            f"MINP^v is undecidable for {classify(query).value} (Corollary 6.3)"
        )
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    saw_world = False
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        saw_world = True
        if is_minimal_ground_complete(
            world, query, master, constraints, adom=adom, limit=limit
        ):
            return True
    if not saw_world:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; minimality is only defined for partially "
            "closed (consistent) c-instances"
        )
    return False


# ---------------------------------------------------------------------------
# weak model
# ---------------------------------------------------------------------------
def is_minimal_weakly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """MINPʷ: ``T`` is weakly complete and no strict sub-c-instance is.

    Exact for the monotone languages (CQ, UCQ, ∃FO⁺, FP); the enumeration of
    sub-c-instances is exponential in ``|T|``, matching the Πᵖ₄ / coNEXPTIME
    upper bounds of Theorem 5.6.  Note that Lemma 4.7 does *not* apply in the
    weak model (Example 5.5), hence all subsets of rows are inspected.
    """
    if not is_weakly_complete(
        cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
    ):
        return False
    for smaller in cinstance.strict_subinstances():
        if is_weakly_complete(
            smaller, query, master, constraints, limit=limit, engine=engine, workers=workers
        ):
            return False
    return True


def is_minimal_weakly_complete_cq(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    limit: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """MINPʷ for CQ via the characterisation of Lemma 5.7 (coDP upper bound).

    ``T`` is a minimal weakly complete instance iff either the empty
    c-instance is weakly complete and ``T`` is empty, or the empty c-instance
    is not weakly complete, ``|T| = 1`` and ``Mod(T, D_m, V) ≠ ∅``.
    """
    if classify(query) is not QueryLanguage.CQ:
        raise QueryError("the Lemma 5.7 characterisation applies to CQ only")
    empty = CInstance(cinstance.schema)
    empty_is_weakly_complete = is_weakly_complete(
        empty, query, master, constraints, limit=limit, engine=engine, workers=workers
    )
    if empty_is_weakly_complete:
        return cinstance.is_empty()
    if cinstance.size != 1:
        return False
    return has_model(cinstance, master, constraints, engine=engine, workers=workers)


# ---------------------------------------------------------------------------
# unified front-end
# ---------------------------------------------------------------------------
def is_minimal_complete(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """Decide MINP for the given completeness model (exact cells only)."""
    if isinstance(database, GroundInstance):
        cinstance = CInstance.from_ground_instance(database)
    else:
        cinstance = database
    if model is CompletenessModel.STRONG:
        return is_minimal_strongly_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    if model is CompletenessModel.WEAK:
        return is_minimal_weakly_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    if model is CompletenessModel.VIABLE:
        return is_minimal_viably_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    raise QueryError(f"unknown completeness model {model!r}")


def minp(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    **kwargs,
) -> bool:
    """Alias of :func:`is_minimal_complete` using the paper's problem name."""
    return is_minimal_complete(database, query, master, constraints, model, **kwargs)
