"""MINP — the minimality problem.

``MINP(L_Q)``: given ``Q``, ``D_m``, ``V`` and a partially closed
c-instance ``T``, is ``T`` a *minimal* database complete for ``Q`` relative
to ``(D_m, V)``?  (Section 2.3.)

The notion of minimality depends on the model (Section 2.2):

* **ground instances** — ``I`` is minimal iff it is complete and no proper
  subinstance is complete; by Lemma 4.7 it suffices to drop one tuple at a
  time.
* **strong model** — ``T`` is a minimal strongly complete c-instance iff
  *every* world of ``Mod(T)`` is a minimal complete ground instance.
* **viable model** — iff *some* world of ``Mod(T)`` is a minimal complete
  ground instance.
* **weak model** — iff ``T`` is weakly complete and no strict sub-c-instance
  ``T' ⊊ T`` is weakly complete.  Lemma 4.7 fails here (Example 5.5):
  single-row removals are not enough, so all subsets of rows are examined.
  For CQ the drastic simplification of Lemma 5.7 applies and is exposed as
  :func:`is_minimal_weakly_complete_cq`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.completeness.ground import is_ground_complete
from repro.completeness.models import CompletenessModel
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, has_model, models
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import InconsistentCInstanceError, QueryError
from repro.queries.classify import QueryLanguage, classify, supports_exact_strong_check
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


# ---------------------------------------------------------------------------
# ground instances (strong/viable notion, Lemma 4.7)
# ---------------------------------------------------------------------------
def is_minimal_ground_complete(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether ``I`` is a minimal ground instance complete for ``Q``.

    By Lemma 4.7, ``I`` is minimal iff it is complete and for every tuple
    ``t ∈ I`` the instance ``I \\ {t}`` is not complete.  (Every subinstance
    of a partially closed instance is partially closed, Lemma 4.7(a).)

    A negative :class:`~repro.decision.Decision` carries the refuting
    evidence in ``.witness``: the incompleteness witness of ``I`` itself, or
    the smaller complete subinstance.
    """
    rec = DecisionRecorder("minp", engine)
    with rec:
        complete = is_ground_complete(
            instance, query, master, constraints, adom=adom, limit=limit,
            engine=engine, workers=workers,
        )
        if not complete:
            return_witness: object = complete.witness
            holds = False
        else:
            holds = True
            return_witness = None
            for smaller in instance.proper_subinstances():
                if is_ground_complete(
                    smaller, query, master, constraints, adom=adom, limit=limit,
                    engine=engine, workers=workers,
                ):
                    holds = False
                    return_witness = smaller
                    break
    return rec.decision(holds, witness=return_witness)


# ---------------------------------------------------------------------------
# strong and viable models for c-instances
# ---------------------------------------------------------------------------
def is_minimal_strongly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """MINPˢ: every world of ``Mod_Adom(T)`` is a minimal complete instance.

    Exact for CQ, UCQ and ∃FO⁺ (Πᵖ₃-complete for c-instances, Theorem 4.8).
    A negative :class:`~repro.decision.Decision` carries the offending world
    in ``.witness``.
    """
    rec = DecisionRecorder("minp", engine, model=CompletenessModel.STRONG)
    with rec:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"MINP^s is undecidable for {classify(query).value} (Theorem 4.8)"
            )
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        saw_world = False
        witness: GroundInstance | None = None
        for world in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        ):
            saw_world = True
            if not is_minimal_ground_complete(
                world, query, master, constraints, adom=adom, limit=limit,
                engine=engine, workers=workers,
            ):
                witness = world
                break
        if not saw_world:
            raise InconsistentCInstanceError(
                "Mod(T, Dm, V) is empty; minimality is only defined for partially "
                "closed (consistent) c-instances"
            )
    return rec.decision(witness is None, witness=witness)


def is_minimal_viably_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """MINPᵛ: some world of ``Mod_Adom(T)`` is a minimal complete instance.

    Exact for CQ, UCQ and ∃FO⁺ (Σᵖ₃-complete for c-instances, Corollary 6.3).
    A positive :class:`~repro.decision.Decision` carries the minimal complete
    world in ``.witness``.
    """
    rec = DecisionRecorder("minp", engine, model=CompletenessModel.VIABLE)
    with rec:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"MINP^v is undecidable for {classify(query).value} (Corollary 6.3)"
            )
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        saw_world = False
        witness: GroundInstance | None = None
        for world in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        ):
            saw_world = True
            if is_minimal_ground_complete(
                world, query, master, constraints, adom=adom, limit=limit,
                engine=engine, workers=workers,
            ):
                witness = world
                break
        if not saw_world:
            raise InconsistentCInstanceError(
                "Mod(T, Dm, V) is empty; minimality is only defined for partially "
                "closed (consistent) c-instances"
            )
    return rec.decision(witness is not None, witness=witness)


# ---------------------------------------------------------------------------
# weak model
# ---------------------------------------------------------------------------
def is_minimal_weakly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """MINPʷ: ``T`` is weakly complete and no strict sub-c-instance is.

    Exact for the monotone languages (CQ, UCQ, ∃FO⁺, FP); the enumeration of
    sub-c-instances is exponential in ``|T|``, matching the Πᵖ₄ / coNEXPTIME
    upper bounds of Theorem 5.6.  Note that Lemma 4.7 does *not* apply in the
    weak model (Example 5.5), hence all subsets of rows are inspected.  A
    negative :class:`~repro.decision.Decision` carries the refuting evidence
    in ``.witness``: ``None`` when ``T`` itself is not weakly complete, else
    the smaller weakly complete sub-c-instance.
    """
    rec = DecisionRecorder("minp", engine, model=CompletenessModel.WEAK)
    with rec:
        if not is_weakly_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit,
            engine=engine, workers=workers,
        ):
            holds = False
            witness: CInstance | None = None
        else:
            holds = True
            witness = None
            for smaller in cinstance.strict_subinstances():
                if is_weakly_complete(
                    smaller, query, master, constraints, limit=limit,
                    engine=engine, workers=workers,
                ):
                    holds = False
                    witness = smaller
                    break
    return rec.decision(holds, witness=witness)


def is_minimal_weakly_complete_cq(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """MINPʷ for CQ via the characterisation of Lemma 5.7 (coDP upper bound).

    ``T`` is a minimal weakly complete instance iff either the empty
    c-instance is weakly complete and ``T`` is empty, or the empty c-instance
    is not weakly complete, ``|T| = 1`` and ``Mod(T, D_m, V) ≠ ∅``.
    """
    rec = DecisionRecorder("minp", engine, model=CompletenessModel.WEAK)
    with rec:
        if classify(query) is not QueryLanguage.CQ:
            raise QueryError("the Lemma 5.7 characterisation applies to CQ only")
        empty = CInstance(cinstance.schema)
        empty_is_weakly_complete = is_weakly_complete(
            empty, query, master, constraints, limit=limit,
            engine=engine, workers=workers,
        )
        if empty_is_weakly_complete:
            holds = cinstance.is_empty()
        elif cinstance.size != 1:
            holds = False
        else:
            holds = has_model(
                cinstance, master, constraints, engine=engine, workers=workers
            )
    return rec.decision(holds)


# ---------------------------------------------------------------------------
# unified front-end
# ---------------------------------------------------------------------------
def is_minimal_complete(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Decide MINP for the given completeness model (exact cells only)."""
    if isinstance(database, GroundInstance):
        cinstance = CInstance.from_ground_instance(database)
    else:
        cinstance = database
    if model is CompletenessModel.STRONG:
        return is_minimal_strongly_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    if model is CompletenessModel.WEAK:
        return is_minimal_weakly_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    if model is CompletenessModel.VIABLE:
        return is_minimal_viably_complete(
            cinstance, query, master, constraints, adom=adom, limit=limit, engine=engine, workers=workers
        )
    raise QueryError(f"unknown completeness model {model!r}")


def minp(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    **kwargs: Any,
) -> Decision:
    """Alias of :func:`is_minimal_complete` using the paper's problem name."""
    return is_minimal_complete(database, query, master, constraints, model, **kwargs)
