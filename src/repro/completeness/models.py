"""The three relative-completeness models of the paper.

Section 2.2 defines, relative to master data ``D_m`` and a set ``V`` of CCs,
when a partially closed c-instance ``T`` is complete for a query ``Q``:

* **strongly complete** — every possible world ``I ∈ Mod(T)`` is a relatively
  complete ground instance (``Q(I) = Q(I')`` for every partially closed
  extension ``I'`` of ``I``);
* **weakly complete** — the certain answer to ``Q`` over all partially closed
  extensions of all possible worlds can already be found over ``Mod(T)``; and
* **viably complete** — *some* possible world is a relatively complete ground
  instance.

:class:`CompletenessModel` names the three models; the deciders in
:mod:`repro.completeness.rcdp` (and friends) take it as a parameter, exactly
like the paper's problem statements RCDPˢ / RCDPʷ / RCDPᵛ.
"""

from __future__ import annotations

from enum import Enum


class CompletenessModel(str, Enum):
    """Which of the paper's three completeness models is being decided."""

    STRONG = "strong"
    WEAK = "weak"
    VIABLE = "viable"

    @property
    def symbol(self) -> str:
        """The superscript the paper uses for the model (s / w / v)."""
        return {"strong": "s", "weak": "w", "viable": "v"}[self.value]


#: Convenience aliases mirroring the paper's notation.
STRONG = CompletenessModel.STRONG
WEAK = CompletenessModel.WEAK
VIABLE = CompletenessModel.VIABLE
