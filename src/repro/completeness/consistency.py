"""The consistency and extensibility problems (Proposition 3.3).

Two basic analyses underpin the relative-completeness machinery:

* the **consistency problem**: given ``(T, D_m, V)``, is ``Mod(T, D_m, V)``
  non-empty? (Is there any partially closed database represented by ``T``?)
* the **extensibility problem**: given a ground instance ``I`` and
  ``(D_m, V)``, is ``Ext(I, D_m, V)`` non-empty? (Can ``I`` be extended at
  all without violating ``V``?)

Both are Σᵖ₂-complete (Proposition 3.3).  The procedures below are the
paper's upper-bound algorithms: guess an Adom valuation (respectively a
single Adom tuple) and check the CCs.
"""

from __future__ import annotations

from typing import Sequence

from repro.completeness.extensions import (
    has_partially_closed_extension,
    single_tuple_extensions,
)
from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
    satisfies_all,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, has_model, models
from repro.decision import Decision, DecisionRecorder
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


def is_consistent(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    *,
    witness: bool = False,
) -> Decision:
    """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency problem).

    Following Proposition 3.3, only valuations over ``Adom`` are considered;
    this is without loss of generality.

    Returns a :class:`~repro.decision.Decision` (truthy iff consistent).
    With ``witness=True`` a positive decision carries a concrete world of
    ``Mod_Adom(T, D_m, V)`` in ``.witness``; the default existence-only
    check is cheaper because engines may apply fresh-value symmetry breaking
    and early cancellation, neither of which preserves the first world.
    """
    rec = DecisionRecorder("consistency", engine)
    with rec:
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints)
        world: GroundInstance | None = None
        if witness:
            world = next(
                iter(
                    models(
                        cinstance, master, constraints, adom,
                        engine=engine, workers=workers,
                    )
                ),
                None,
            )
            holds = world is not None
        else:
            holds = has_model(
                cinstance, master, constraints, adom, engine=engine, workers=workers
            )
    return rec.decision(holds, witness=world)


def consistent_world(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> GroundInstance | None:
    """A witness world in ``Mod_Adom(T, D_m, V)``, or ``None`` if inconsistent."""
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        return world
    return None


def extensibility_active_domain(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> ActiveDomain:
    """The ``Adom`` used by the extensibility check of Proposition 3.3."""
    return build_active_domain(
        cinstance=None,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        extra_constants=instance.constants(),
        extra_variables=constraint_set_variables(constraints),
        schema=instance.schema,
    )


def is_extensible(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    *,
    witness: bool = False,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether ``Ext(I, D_m, V)`` is non-empty (the extensibility problem).

    Because the CCs are defined by monotone CQ queries, an extension exists
    iff a *single* tuple with values from ``Adom`` can be added without
    violating ``V`` (the argument in the proof of Proposition 3.3).  The
    single-tuple search is engine-routed
    (:func:`~repro.completeness.extensions.single_tuple_extensions`), so
    ``engine``/``workers`` select the world-search engine exactly as for the
    consistency problem.

    Returns a :class:`~repro.decision.Decision`; with ``witness=True`` a
    positive decision carries a single-tuple partially closed extension of
    ``I`` in ``.witness``.
    """
    rec = DecisionRecorder("extensibility", engine)
    with rec:
        if adom is None:
            adom = extensibility_active_domain(instance, master, constraints)
        extended: GroundInstance | None = None
        if witness:
            extended = extension_witness(
                instance, master, constraints, adom, limit=limit,
                engine=engine, workers=workers,
            )
            holds = extended is not None
        else:
            holds = has_partially_closed_extension(
                instance, master, constraints, adom, limit=limit,
                engine=engine, workers=workers,
            )
    return rec.decision(holds, witness=extended)


def extension_witness(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> GroundInstance | None:
    """A single-tuple partially closed extension of ``I``, or ``None``."""
    if adom is None:
        adom = extensibility_active_domain(instance, master, constraints)
    for extended in single_tuple_extensions(
        instance, master, constraints, adom, limit=limit,
        engine=engine, workers=workers,
    ):
        return extended
    return None


# reprolint: disable=R004 -- world-level predicate over one ground instance,
# not a decider entry point; callers wrap it in Decision where needed.
def is_partially_closed_world(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> bool:
    """Whether a ground instance is partially closed relative to ``(D_m, V)``."""
    return satisfies_all(instance, master, constraints)
