"""Tractable special cases (Section 7, data complexity).

The general RCDP / RCQP / MINP problems have high combined complexity
(Table I).  Section 7 identifies regimes in which the *data complexity* — the
complexity when the query ``Q`` and the CCs ``V`` are fixed and only the
database and master data vary — drops to PTIME or even O(1):

* **Corollary 7.1** — RCDPˢ and RCDPᵛ are in PTIME for CQ/UCQ/∃FO⁺, and
  RCDPʷ is in PTIME for CQ/UCQ/∃FO⁺/FP, when the c-instance has a *constant
  number of variables* (few missing values) and ``Q``/``V`` are fixed.
* **Corollary 7.2** — RCQPˢ and RCQPᵛ are in PTIME for CQ/UCQ/∃FO⁺ when the
  CCs are INDs, and RCQPʷ is O(1) for CQ/UCQ/∃FO⁺/FP.
* **Corollary 7.3** — MINPˢ and MINPᵛ are in PTIME for CQ/UCQ/∃FO⁺, and
  MINPʷ is in PTIME for CQ, again for constantly many variables and fixed
  ``Q``/``V``.

The functions here are thin, *guarded* wrappers over the general deciders:
they enforce the side conditions (so a caller cannot accidentally fall off
the tractable cliff) and serve as the entry points of the Section 7
benchmarks.  The underlying algorithms are the same — the point of the
corollaries is that with the parameters fixed those algorithms run in
polynomial time, which is what the benchmark sweeps demonstrate.
"""

from __future__ import annotations

from typing import Sequence

from repro.completeness.minp import (
    is_minimal_strongly_complete,
    is_minimal_viably_complete,
    is_minimal_weakly_complete_cq,
)
from repro.completeness.models import CompletenessModel
from repro.completeness.rcqp import (
    strong_rcqp_with_ind_ccs,
    weak_rcqp,
)
from repro.completeness.strong import is_strongly_complete
from repro.completeness.viable import is_viably_complete
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.cinstance import CInstance
from repro.decision import Decision
from repro.exceptions import CompletenessError, QueryError
from repro.queries.classify import (
    QueryLanguage,
    classify,
    supports_exact_strong_check,
    supports_exact_weak_check,
)
from repro.queries.evaluation import Query
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema

#: Default bound on the number of variables for the "constantly many missing
#: values" regime of Corollaries 7.1 and 7.3.
DEFAULT_VARIABLE_BOUND = 3


def _require_few_variables(cinstance: CInstance, bound: int) -> None:
    count = len(cinstance.variables())
    if count > bound:
        raise CompletenessError(
            f"the tractable case requires at most {bound} variables "
            f"(constantly many missing values); the c-instance has {count}"
        )


def rcdp_data_complexity(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    variable_bound: int = DEFAULT_VARIABLE_BOUND,
) -> Decision:
    """RCDP in the PTIME data-complexity regime of Corollary 7.1.

    Enforces the corollary's side conditions: the c-instance carries at most
    ``variable_bound`` variables, and the language is CQ/UCQ/∃FO⁺ (strong and
    viable models) or additionally FP (weak model).
    """
    _require_few_variables(cinstance, variable_bound)
    if model is CompletenessModel.STRONG:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"Corollary 7.1 covers CQ/UCQ/∃FO+ for RCDP^s; got {classify(query).value}"
            )
        return is_strongly_complete(cinstance, query, master, constraints)
    if model is CompletenessModel.VIABLE:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"Corollary 7.1 covers CQ/UCQ/∃FO+ for RCDP^v; got {classify(query).value}"
            )
        return is_viably_complete(cinstance, query, master, constraints)
    if model is CompletenessModel.WEAK:
        if not supports_exact_weak_check(query):
            raise QueryError(
                f"Corollary 7.1 covers CQ/UCQ/∃FO+/FP for RCDP^w; got {classify(query).value}"
            )
        return is_weakly_complete(cinstance, query, master, constraints)
    raise QueryError(f"unknown completeness model {model!r}")


def rcqp_data_complexity(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
) -> Decision:
    """RCQP in the tractable regimes of Corollary 7.2.

    * weak model — O(1) for CQ/UCQ/∃FO⁺/FP;
    * strong / viable models — PTIME when every CC is IND-shaped.
    """
    if model is CompletenessModel.WEAK:
        return weak_rcqp(query)
    if not all(c.is_inclusion_dependency() for c in constraints):
        raise QueryError(
            "Corollary 7.2 requires IND-shaped CCs for the strong/viable models"
        )
    return strong_rcqp_with_ind_ccs(query, schema, master, constraints)


def minp_data_complexity(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    variable_bound: int = DEFAULT_VARIABLE_BOUND,
) -> Decision:
    """MINP in the PTIME data-complexity regime of Corollary 7.3."""
    _require_few_variables(cinstance, variable_bound)
    if model is CompletenessModel.STRONG:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"Corollary 7.3 covers CQ/UCQ/∃FO+ for MINP^s; got {classify(query).value}"
            )
        return is_minimal_strongly_complete(cinstance, query, master, constraints)
    if model is CompletenessModel.VIABLE:
        if not supports_exact_strong_check(query):
            raise QueryError(
                f"Corollary 7.3 covers CQ/UCQ/∃FO+ for MINP^v; got {classify(query).value}"
            )
        return is_minimal_viably_complete(cinstance, query, master, constraints)
    if model is CompletenessModel.WEAK:
        if classify(query) is not QueryLanguage.CQ:
            raise QueryError(
                f"Corollary 7.3 covers CQ for MINP^w; got {classify(query).value}"
            )
        return is_minimal_weakly_complete_cq(cinstance, query, master, constraints)
    raise QueryError(f"unknown completeness model {model!r}")
