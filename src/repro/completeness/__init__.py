"""Relative information completeness: the paper's core contribution.

This package implements the three completeness models (strong, weak,
viable), the decision problems RCDP, RCQP and MINP, the consistency and
extensibility analyses of partially closed c-instances, and the tractable
data-complexity cases of Section 7.
"""

from repro.completeness.certain import (
    ExtensionCertainAnswer,
    certain_answer_over_extensions,
    certain_answer_over_models,
)
from repro.completeness.consistency import (
    consistent_world,
    extensibility_active_domain,
    extension_witness,
    is_consistent,
    is_extensible,
    is_partially_closed_world,
)
from repro.completeness.extensions import (
    bounded_extensions,
    candidate_pools,
    candidate_rows,
    has_partially_closed_extension,
    is_partially_closed,
    single_tuple_extensions,
    tableau_extensions,
    tableau_valuations,
)
from repro.completeness.ground import (
    IncompletenessWitness,
    find_ground_incompleteness_witness,
    ground_active_domain,
    is_ground_complete,
    is_ground_complete_bounded,
)
from repro.completeness.minp import (
    is_minimal_complete,
    is_minimal_ground_complete,
    is_minimal_strongly_complete,
    is_minimal_viably_complete,
    is_minimal_weakly_complete,
    is_minimal_weakly_complete_cq,
    minp,
)
from repro.completeness.models import STRONG, VIABLE, WEAK, CompletenessModel
from repro.completeness.rcdp import as_cinstance, is_relatively_complete, rcdp
from repro.completeness.rcqp import (
    RCQPWitness,
    construct_weakly_complete_witness,
    is_query_bounded,
    rcqp,
    rcqp_bounded_search,
    strong_rcqp_with_ind_ccs,
    weak_rcqp,
)
from repro.completeness.strong import (
    StrongIncompletenessWitness,
    find_strong_incompleteness_witness,
    is_strongly_complete,
    is_strongly_complete_bounded,
)
from repro.completeness.tractable import (
    DEFAULT_VARIABLE_BOUND,
    minp_data_complexity,
    rcdp_data_complexity,
    rcqp_data_complexity,
)
from repro.completeness.viable import (
    find_viable_witness,
    is_viably_complete,
    is_viably_complete_bounded,
)
from repro.completeness.weak import (
    WeakCompletenessReport,
    is_weakly_complete,
    is_weakly_complete_bounded,
    weak_completeness_report,
)

__all__ = [
    "CompletenessModel",
    "DEFAULT_VARIABLE_BOUND",
    "ExtensionCertainAnswer",
    "IncompletenessWitness",
    "RCQPWitness",
    "STRONG",
    "StrongIncompletenessWitness",
    "VIABLE",
    "WEAK",
    "WeakCompletenessReport",
    "as_cinstance",
    "bounded_extensions",
    "candidate_pools",
    "candidate_rows",
    "certain_answer_over_extensions",
    "certain_answer_over_models",
    "consistent_world",
    "construct_weakly_complete_witness",
    "extensibility_active_domain",
    "extension_witness",
    "find_ground_incompleteness_witness",
    "find_strong_incompleteness_witness",
    "find_viable_witness",
    "ground_active_domain",
    "has_partially_closed_extension",
    "is_consistent",
    "is_extensible",
    "is_ground_complete",
    "is_ground_complete_bounded",
    "is_minimal_complete",
    "is_minimal_ground_complete",
    "is_minimal_strongly_complete",
    "is_minimal_viably_complete",
    "is_minimal_weakly_complete",
    "is_minimal_weakly_complete_cq",
    "is_partially_closed",
    "is_partially_closed_world",
    "is_query_bounded",
    "is_relatively_complete",
    "is_strongly_complete",
    "is_strongly_complete_bounded",
    "is_viably_complete",
    "is_viably_complete_bounded",
    "is_weakly_complete",
    "is_weakly_complete_bounded",
    "minp",
    "minp_data_complexity",
    "rcdp",
    "rcdp_data_complexity",
    "rcqp",
    "rcqp_bounded_search",
    "rcqp_data_complexity",
    "single_tuple_extensions",
    "strong_rcqp_with_ind_ccs",
    "tableau_extensions",
    "tableau_valuations",
    "weak_completeness_report",
    "weak_rcqp",
]
