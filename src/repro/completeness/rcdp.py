"""RCDP — the relatively complete database problem (unified front-end).

``RCDP(L_Q)``: given a query ``Q`` in ``L_Q``, master data ``D_m``, a set
``V`` of CCs and a partially closed c-instance ``T``, is ``T`` complete for
``Q`` relative to ``(D_m, V)``?  (Section 2.3.)

The problem is parameterised by the completeness model (strong / weak /
viable); this module dispatches to the per-model deciders and deals with the
ground-instance special case (a ground instance is a c-instance without
variables, for which the strong and viable models coincide with the ground
notion of Section 2.1).

Decidability matrix implemented here (Table I):

====================  =========  ========  ==========
language              strong     weak      viable
====================  =========  ========  ==========
CQ / UCQ / ∃FO⁺       exact      exact     exact
FP                    bounded    exact     bounded
FO / native           bounded    bounded   bounded
====================  =========  ========  ==========

"exact" deciders refuse to run on languages outside their scope unless
``allow_bounded=True`` is passed, in which case the bounded variant is used
and the caller accepts heuristic answers for the undecidable cells.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.completeness.models import CompletenessModel
from repro.completeness.strong import is_strongly_complete, is_strongly_complete_bounded
from repro.completeness.viable import is_viably_complete, is_viably_complete_bounded
from repro.completeness.weak import is_weakly_complete, is_weakly_complete_bounded
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.decision import Decision
from repro.exceptions import QueryError
from repro.queries.classify import (
    classify,
    supports_exact_strong_check,
    supports_exact_weak_check,
)
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


def as_cinstance(database: CInstance | GroundInstance) -> CInstance:
    """Coerce a ground instance into the c-instance it trivially is."""
    if isinstance(database, GroundInstance):
        return CInstance.from_ground_instance(database)
    return database


def is_relatively_complete(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    allow_bounded: bool = False,
    max_new_tuples: int = 1,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Decide RCDP for the given completeness model.

    Returns the per-model decider's :class:`~repro.decision.Decision`
    (truthy iff complete): the strong model attaches a
    :class:`~repro.completeness.strong.StrongIncompletenessWitness`
    counterexample to negative verdicts, the viable model attaches the
    relatively complete witness world to positive ones, and the weak model
    attaches its :class:`~repro.completeness.weak.WeakCompletenessReport`
    as ``.details``.

    Parameters
    ----------
    database:
        A c-instance or a ground instance (coerced to a variable-free
        c-instance).
    model:
        The completeness model — strong, weak or viable.
    allow_bounded:
        The exact deciders only cover the decidable cells of Table I.  With
        ``allow_bounded=True`` the undecidable cells (FO everywhere, FP in
        the strong/viable models) fall back to the bounded checks, whose
        positive answers are heuristic.
    max_new_tuples:
        Extension budget for the bounded checks.
    require_consistent:
        With the default ``True``, an empty ``Mod(T, D_m, V)`` raises
        :class:`~repro.exceptions.InconsistentCInstanceError`; with ``False``
        the vacuous verdict of the selected model is returned instead.
    engine:
        World-search engine selection (see
        :mod:`repro.ctables.possible_worlds`).
    workers:
        Process-pool size for ``engine="parallel"`` (default: one worker per
        available CPU); ignored by the other engines.
    """
    cinstance = as_cinstance(database)
    if model is CompletenessModel.STRONG:
        if supports_exact_strong_check(query):
            return is_strongly_complete(
                cinstance,
                query,
                master,
                constraints,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        if allow_bounded:
            return is_strongly_complete_bounded(
                cinstance,
                query,
                master,
                constraints,
                max_new_tuples=max_new_tuples,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        raise QueryError(
            f"RCDP^s is undecidable for {classify(query).value} (Theorem 4.1); "
            "pass allow_bounded=True for the heuristic check"
        )
    if model is CompletenessModel.WEAK:
        if supports_exact_weak_check(query):
            return is_weakly_complete(
                cinstance,
                query,
                master,
                constraints,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        if allow_bounded:
            return is_weakly_complete_bounded(
                cinstance,
                query,
                master,
                constraints,
                max_new_tuples=max_new_tuples,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        raise QueryError(
            f"RCDP^w is undecidable for {classify(query).value} (Theorem 5.1); "
            "pass allow_bounded=True for the heuristic check"
        )
    if model is CompletenessModel.VIABLE:
        if supports_exact_strong_check(query):
            return is_viably_complete(
                cinstance,
                query,
                master,
                constraints,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        if allow_bounded:
            return is_viably_complete_bounded(
                cinstance,
                query,
                master,
                constraints,
                max_new_tuples=max_new_tuples,
                adom=adom,
                limit=limit,
                require_consistent=require_consistent,
                engine=engine,
                workers=workers,
            )
        raise QueryError(
            f"RCDP^v is undecidable for {classify(query).value} (Theorem 6.1); "
            "pass allow_bounded=True for the heuristic check"
        )
    raise QueryError(f"unknown completeness model {model!r}")


def rcdp(
    database: CInstance | GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: CompletenessModel = CompletenessModel.STRONG,
    **kwargs: Any,
) -> Decision:
    """Alias of :func:`is_relatively_complete` using the paper's problem name."""
    return is_relatively_complete(database, query, master, constraints, model, **kwargs)
