"""Viable relative completeness (Section 6).

A partially closed c-instance ``T`` is *viably complete* for ``Q`` relative
to ``(D_m, V)`` iff there exists a possible world ``I ∈ Mod(T)`` that is a
relatively complete ground instance — the missing values *can* be filled in
so that the database has complete information for ``Q``.

Deciders:

* :func:`is_viably_complete` — exact for CQ, UCQ and ∃FO⁺ (Σᵖ₃-complete,
  Theorem 6.1): search ``Mod_Adom(T)`` for a world passing the ground
  completeness test.
* :func:`is_viably_complete_bounded` — bounded variant for FO and FP (the
  exact problems are undecidable).  Note the asymmetry with the other
  models: because viability is an *existential* statement, the bounded check
  can only confirm that a world has no counterexample *within the bound*; a
  ``True`` answer is therefore heuristic while a ``False`` answer ("no world
  survives even the bounded test") is also not conclusive.  The result is
  best interpreted as "a candidate world was / was not found".
"""

from __future__ import annotations

from typing import Sequence

from repro.completeness.ground import is_ground_complete, is_ground_complete_bounded
from repro.completeness.models import CompletenessModel
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, models
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import InconsistentCInstanceError
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


def find_viable_witness(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> GroundInstance | None:
    """A possible world of ``T`` that is relatively complete for ``Q``, if any.

    Exact for the positive languages (CQ, UCQ, ∃FO⁺).  An empty
    ``Mod(T, D_m, V)`` raises unless ``require_consistent=False`` is passed
    (no world exists, so no witness exists either).
    """
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    saw_world = False
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        saw_world = True
        if is_ground_complete(
            world, query, master, constraints, adom=adom, limit=limit,
            engine=engine, workers=workers,
        ):
            return world
    if not saw_world and require_consistent:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; viable completeness is only defined for "
            "partially closed (consistent) c-instances"
        )
    return None


def is_viably_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether ``T`` is viably complete for ``Q`` relative to ``(D_m, V)``.

    Exact for CQ, UCQ and ∃FO⁺ (RCDPᵛ, Theorem 6.1).  A positive
    :class:`~repro.decision.Decision` carries the relatively complete world
    in ``.witness``.
    """
    rec = DecisionRecorder("rcdp", engine, model=CompletenessModel.VIABLE)
    with rec:
        witness = find_viable_witness(
            cinstance,
            query,
            master,
            constraints,
            adom=adom,
            limit=limit,
            require_consistent=require_consistent,
            engine=engine, workers=workers,
        )
    return rec.decision(witness is not None, witness=witness)


def is_viably_complete_bounded(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_new_tuples: int = 1,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Bounded viable-completeness check for arbitrary query languages.

    Searches ``Mod_Adom(T)`` for a world with no answer-changing extension of
    at most ``max_new_tuples`` Adom tuples.  See the module docstring for how
    to interpret the verdict (the decision is marked ``exact=False``); a
    positive decision carries the candidate world in ``.witness``.  An empty
    ``Mod(T, D_m, V)`` raises unless ``require_consistent=False`` is passed
    (no world exists, hence no candidate world either).
    """
    rec = DecisionRecorder(
        "rcdp", engine, model=CompletenessModel.VIABLE, exact=False
    )
    with rec:
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        saw_world = False
        witness: GroundInstance | None = None
        for world in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        ):
            saw_world = True
            if is_ground_complete_bounded(
                world,
                query,
                master,
                constraints,
                max_new_tuples=max_new_tuples,
                adom=adom,
                limit=limit,
                engine=engine,
                workers=workers,
            ):
                witness = world
                break
        if not saw_world and require_consistent:
            raise InconsistentCInstanceError(
                "Mod(T, Dm, V) is empty; viable completeness is only defined for "
                "partially closed (consistent) c-instances"
            )
    return rec.decision(witness is not None, witness=witness)
