"""RCQP — the relatively complete query problem.

``RCQP(L_Q)``: given a query ``Q``, master data ``D_m`` and a set ``V`` of
CCs, does there exist *any* database complete for ``Q`` relative to
``(D_m, V)``?  (Section 2.3.)

The landscape (Table I):

* **weak model** — trivially decidable in O(1) for CQ, UCQ, ∃FO⁺ and FP
  (Theorem 5.4): a weakly complete database always exists.  The constructive
  proof in the appendix builds a witness ``I₀`` — a maximal Adom-bounded
  instance satisfying ``V`` — which :func:`construct_weakly_complete_witness`
  reproduces.
* **strong / viable models** — by Lemma 4.4 (and its viable-model analogue),
  a complete c-instance exists iff a complete *ground* instance exists, so
  the problem reduces to the ground RCQP of Fan & Geerts.  It is
  NEXPTIME-complete in general; :func:`rcqp_bounded_search` performs the
  witness search up to a configurable size.  When every CC is IND-shaped the
  PTIME boundedness test of Corollary 7.2 applies
  (:func:`is_query_bounded` / :func:`strong_rcqp_with_ind_ccs`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.completeness.extensions import candidate_rows, tableau_valuations
from repro.completeness.ground import ground_active_domain, is_ground_complete
from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
    satisfies_all,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import QueryError
from repro.search.engine import WorldKey, world_key
from repro.search.propagation import ConstraintChecker
from repro.search.registry import (
    EngineConfig,
    EngineSpec,
    ambient_checker,
    use_checker,
)
from repro.queries.classify import (
    QueryLanguage,
    as_union_of_cqs,
    classify,
    supports_exact_weak_check,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import Query, evaluate_cq, query_constants
from repro.queries.tableau import freeze
from repro.queries.terms import Variable, is_variable
from repro.relational.instance import GroundInstance, empty_instance
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema


# ---------------------------------------------------------------------------
# weak model: O(1) plus constructive witness (Theorem 5.4)
# ---------------------------------------------------------------------------
def weak_rcqp(query: Query) -> Decision:
    """RCQPʷ: does a weakly complete database exist?

    Constant-time ``True`` for CQ, UCQ, ∃FO⁺ and FP (Theorem 5.4).  For FO
    the problem is undecidable for ground instances and open for c-instances
    (Example 5.3), so the function refuses to answer.
    """
    from repro.completeness.models import CompletenessModel

    if supports_exact_weak_check(query):
        rec = DecisionRecorder("rcqp", model=CompletenessModel.WEAK)
        with rec:
            pass
        return rec.decision(True)
    raise QueryError(
        f"RCQP^w for {classify(query).value} is undecidable/open (Theorem 5.4); "
        "no exact answer is available"
    )


def construct_weakly_complete_witness(
    schema: DatabaseSchema,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_tuples_per_relation: int | None = None,
) -> GroundInstance:
    """Build the witness instance ``I₀`` of the Theorem 5.4 appendix proof.

    ``I₀`` is a maximal subset of the set ``L`` of Adom tuples such that
    ``(I₀, D_m) |= V``: tuples are added greedily in a deterministic order and
    kept whenever the CCs still hold; by monotonicity of the CC queries a
    skipped tuple can never become addable later, so the greedy result is
    maximal.  The resulting instance is weakly complete for every monotone
    query.

    ``max_tuples_per_relation`` caps the number of candidate tuples inspected
    per relation (the full ``L`` is exponential in the arity).
    """
    adom = build_active_domain(
        cinstance=None,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        query_constants=query_constants(query),
        extra_variables=constraint_set_variables(constraints),
        schema=schema,
    )
    witness = empty_instance(schema)
    for relation in schema:
        added = 0
        for row in candidate_rows(relation, adom):
            if max_tuples_per_relation is not None and added >= max_tuples_per_relation:
                break
            added += 1
            candidate = witness.with_tuple(relation.name, row)
            if satisfies_all(candidate, master, constraints):
                witness = candidate
    return witness


# ---------------------------------------------------------------------------
# strong / viable models: boundedness test (IND-shaped CCs, Corollary 7.2)
# ---------------------------------------------------------------------------
def _ind_bounded_positions(
    constraints: Sequence[ContainmentConstraint],
) -> set[tuple[str, int]]:
    """Positions ``(relation, index)`` bounded by an IND-shaped CC.

    An IND-shaped CC ``π_{A,...}(R) ⊆ p(R_m)`` bounds the projected positions
    of ``R``: any value occurring there in a partially closed database must
    occur in the (fixed, finite) master projection.
    """
    positions: set[tuple[str, int]] = set()
    for constraint in constraints:
        if not constraint.is_inclusion_dependency():
            continue
        atom = constraint.query.atoms[0]
        for head_term in constraint.query.head:
            for index, term in enumerate(atom.terms):
                if term == head_term:
                    positions.add((atom.relation, index))
    return positions


# reprolint: disable=R004 -- static query-shape classification (Lemma 4.4
# boundedness), no search involved; not a decision procedure.
def is_query_bounded(
    query: ConjunctiveQuery,
    schema: DatabaseSchema,
    constraints: Sequence[ContainmentConstraint],
) -> bool:
    """Whether a CQ is *bounded* by ``(D_m, V)`` in the sense of Fan & Geerts.

    Every head variable must either range over a finite attribute domain or
    occur, in the query tableau, in a position bounded by an IND-shaped CC.
    Bounded queries can only ever return values from a fixed finite set, which
    is what makes a relatively complete database constructible (Corollary 7.2).
    """
    bounded_positions = _ind_bounded_positions(constraints)
    for head_term in query.head:
        if not is_variable(head_term):
            continue
        variable_is_bounded = False
        for atom in query.atoms:
            if atom.relation not in schema:
                continue
            rel_schema = schema[atom.relation]
            for index, term in enumerate(atom.terms):
                if term != head_term:
                    continue
                if rel_schema.attributes[index].domain.is_finite:
                    variable_is_bounded = True
                if (atom.relation, index) in bounded_positions:
                    variable_is_bounded = True
        if not variable_is_bounded:
            return False
    return True


def _query_satisfiable_under_constraints(
    query: ConjunctiveQuery,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
) -> bool:
    """Whether some Adom valuation of the query tableau is partially closed.

    This is the "valid valuation" test of the Fan & Geerts characterisation:
    if no valuation ``ν`` of ``T_Q`` satisfies the comparisons and keeps
    ``(ν(T_Q), D_m) |= V``, then the query can never acquire an answer in any
    partially closed database and the empty instance is complete for it.
    """
    for valuation in tableau_valuations(query, adom):
        world = GroundInstance(schema, freeze(query.atoms, valuation))
        if satisfies_all(world, master, constraints):
            if evaluate_cq(query, world):
                return True
    return False


def strong_rcqp_with_ind_ccs(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> Decision:
    """RCQPˢ (= RCQPᵛ) for CQ/UCQ/∃FO⁺ when every CC is IND-shaped.

    Implements the PTIME characterisation behind Corollary 7.2: a relatively
    complete database exists iff every disjunct of the query is bounded by
    ``(D_m, V)``, or no disjunct has a valid partially closed valuation.

    Raises
    ------
    QueryError
        If some CC is not IND-shaped (the characterisation does not apply) or
        the query is not positive.
    """
    from repro.completeness.models import CompletenessModel

    rec = DecisionRecorder("rcqp", model=CompletenessModel.STRONG)
    with rec:
        if not all(c.is_inclusion_dependency() for c in constraints):
            raise QueryError(
                "strong_rcqp_with_ind_ccs requires every CC to be IND-shaped; "
                "use rcqp_bounded_search for general CCs"
            )
        unfolded = as_union_of_cqs(query)
        if all(is_query_bounded(d, schema, constraints) for d in unfolded.disjuncts):
            holds = True
        else:
            adom = build_active_domain(
                cinstance=None,
                master=master,
                constraint_constants=constraint_set_constants(constraints),
                query_constants=query_constants(query),
                extra_variables=(
                    set(unfolded.variables()) | constraint_set_variables(constraints)
                ),
                schema=schema,
            )
            holds = not any(
                _query_satisfiable_under_constraints(
                    d, schema, master, constraints, adom
                )
                for d in unfolded.disjuncts
            )
    return rec.decision(holds)


# ---------------------------------------------------------------------------
# strong / viable models: bounded witness search (general CCs)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RCQPWitness:
    """Outcome of a bounded RCQP witness search.

    Legacy payload carried in ``Decision.details`` by
    :func:`rcqp_bounded_search`; the pre-2.0 attribute access paths
    (``decision.found``, ``decision.instances_examined``) still work through
    deprecation shims on :class:`~repro.decision.Decision`.
    """

    found: bool
    witness: GroundInstance | None
    instances_examined: int


def _size_compositions(total: int, names: Sequence[str]) -> Iterator[dict[str, int]]:
    """All distributions of ``total`` tuples over the named relations."""
    if not names:
        if total == 0:
            yield {}
        return
    first, rest = names[0], names[1:]
    for count in range(total + 1):
        for tail in _size_compositions(total - count, rest):
            yield {first: count, **tail}


def _all_variable_cinstance(
    schema: DatabaseSchema, counts: "dict[str, int]"
) -> CInstance:
    """A c-instance with ``counts[R]`` rows of pairwise-distinct variables per relation.

    Its possible worlds are exactly the partially closed Adom instances with
    at most ``counts[R]`` tuples in each relation (rows may collapse), which
    is the candidate space of the Lemma 4.4 witness search.
    """
    tables: dict[str, CTable] = {}
    for relation in schema:
        rows = []
        for index in range(counts.get(relation.name, 0)):
            terms = tuple(
                Variable(f"rcqp_{relation.name}_{index}_{position}")
                for position in range(relation.arity)
            )
            rows.append(CTableRow(terms))
        tables[relation.name] = CTable(relation, rows)
    return CInstance(schema, tables)


def _rcqp_engine_search(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_size: int,
    max_instances: int | None,
    spec: EngineSpec,
    workers: int | None = None,
    options: Mapping[str, Any] | None = None,
) -> RCQPWitness:
    """Witness search routed through a registered world-search engine.

    For every total size ``s ≤ max_size`` and every distribution of ``s``
    rows over the relations, the worlds of the corresponding all-variable
    c-instance are enumerated by the engine the registry resolved.  The
    propagating engine prunes tuple combinations that already violate a
    constraint before they are materialised (unlike the naive combination
    scan, which inspects and rejects them one by one); the SAT engine
    compiles each composition to CNF so the DPLL solver enumerates only the
    partially closed candidates; the parallel engine shards each
    composition's enumeration over a process pool (small compositions take
    its serial fallback automatically).  Any engine registered through
    :func:`repro.search.registry.register_engine` slots in the same way.
    """
    base = empty_instance(schema)
    adom = ground_active_domain(base, query, master, constraints)
    names = list(schema.relation_names)
    # Reuse a caller-installed checker (e.g. the Database facade's prebuilt
    # one — it is keyed on exactly this (master, constraints) pair) instead
    # of re-evaluating the constraint right-hand sides per call.
    checker = ambient_checker() or ConstraintChecker(master, constraints)
    examined = 0
    seen: set[WorldKey] = set()
    with use_checker(checker):
        for size in range(0, max_size + 1):
            for counts in _size_compositions(size, names):
                shape = _all_variable_cinstance(schema, counts)
                search = spec.create(
                    shape, master, constraints, adom,
                    workers=workers, options=options,
                )
                # The global `seen` set already deduplicates by world_key
                # across compositions, so the per-search dedup pass is
                # skipped.
                for _valuation, candidate in search.search():
                    key = world_key(candidate)
                    if key in seen:
                        continue
                    seen.add(key)
                    examined += 1
                    if max_instances is not None and examined > max_instances:
                        return RCQPWitness(
                            found=False, witness=None,
                            instances_examined=examined - 1,
                        )
                    # NOTE: the completeness check builds its own active
                    # domain — the search Adom must not be reused, because a
                    # candidate built from fresh values needs further fresh
                    # values of its own to act as the "anything else"
                    # witnesses of Lemma 4.2.
                    if is_ground_complete(
                        candidate, query, master, constraints,
                        engine=spec.name, workers=workers,
                    ):
                        return RCQPWitness(
                            found=True, witness=candidate,
                            instances_examined=examined,
                        )
    return RCQPWitness(found=False, witness=None, instances_examined=examined)


def rcqp_bounded_search(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_size: int = 2,
    max_instances: int | None = 200_000,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Search for a ground instance complete for ``Q`` with at most ``max_size`` tuples.

    By Lemma 4.4 a complete c-instance of size ≤ K exists iff a complete
    ground instance of size ≤ K does, so the search ranges over ground
    instances built from Adom tuples.  The general problem is
    NEXPTIME-complete, so the search is exponential; callers bound it with
    ``max_size`` and ``max_instances``.  A negative decision only means "no
    witness within the budget" (it is marked ``exact=False``); a positive
    decision carries the complete ground instance in ``.witness``.

    All engines explore the same candidate space.
    ``.stats.candidates_examined`` counts candidate instances inspected by
    the naive scan but partially closed candidates actually tested for
    completeness by the other engines (violating combinations are pruned
    before being counted).
    """
    rec = DecisionRecorder("rcqp", engine, exact=False)
    with rec:
        config = EngineConfig.coerce(engine)
        spec = config.spec()
        resolved_workers = workers if workers is not None else config.workers
        if spec.name != "naive":
            outcome = _rcqp_engine_search(
                query, schema, master, constraints, max_size, max_instances,
                spec=spec, workers=resolved_workers, options=config.options,
            )
        else:
            outcome = _rcqp_naive_search(
                query, schema, master, constraints, max_size, max_instances
            )
    # A found witness is definitive (the instance *is* complete); only the
    # negative "no witness within the budget" verdict is heuristic.
    rec.exact = outcome.found
    return rec.decision(
        outcome.found,
        witness=outcome.witness,
        details=outcome,
        candidates_examined=outcome.instances_examined,
    )


def _rcqp_naive_search(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_size: int,
    max_instances: int | None,
) -> RCQPWitness:
    """The original combination scan over all Adom tuples (reference path)."""
    base = empty_instance(schema)
    adom = ground_active_domain(base, query, master, constraints)
    per_relation_rows = {
        relation.name: list(candidate_rows(relation, adom)) for relation in schema
    }
    all_rows = [
        (name, row) for name, rows in per_relation_rows.items() for row in rows
    ]
    examined = 0
    for size in range(0, max_size + 1):
        for combo in itertools.combinations(all_rows, size):
            examined += 1
            if max_instances is not None and examined > max_instances:
                return RCQPWitness(found=False, witness=None, instances_examined=examined - 1)
            grouped: dict[str, list[Row]] = {}
            for name, row in combo:
                grouped.setdefault(name, []).append(row)
            candidate = GroundInstance(schema, grouped)
            if not satisfies_all(candidate, master, constraints):
                continue
            # NOTE: the completeness check builds its own active domain — the
            # search Adom must not be reused, because a candidate built from
            # fresh values needs further fresh values of its own to act as the
            # "anything else" witnesses of Lemma 4.2.
            if is_ground_complete(
                candidate, query, master, constraints, engine="naive"
            ):
                return RCQPWitness(found=True, witness=candidate, instances_examined=examined)
    return RCQPWitness(found=False, witness=None, instances_examined=examined)


def rcqp(
    query: Query,
    schema: DatabaseSchema,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    model: "str | None" = None,
    max_size: int = 2,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Convenience front-end for RCQP.

    * weak model — the O(1) answer of Theorem 5.4;
    * strong / viable models — the IND-shaped PTIME characterisation when it
      applies, otherwise the bounded witness search (a positive decision is
      definitive and carries the witness instance, a negative one means "no
      witness within the budget" and is marked ``exact=False``).
    """
    from repro.completeness.models import CompletenessModel

    resolved = CompletenessModel(model) if model is not None else CompletenessModel.STRONG
    if resolved is CompletenessModel.WEAK:
        return weak_rcqp(query)
    if classify(query) in (QueryLanguage.FO, QueryLanguage.FP, QueryLanguage.NATIVE):
        raise QueryError(
            f"RCQP^{resolved.symbol} is undecidable for {classify(query).value} "
            "(Theorem 4.5); no exact answer is available"
        )
    if constraints and all(c.is_inclusion_dependency() for c in constraints):
        return strong_rcqp_with_ind_ccs(
            query, schema, master, constraints
        ).with_(model=resolved)
    return rcqp_bounded_search(
        query, schema, master, constraints, max_size=max_size, engine=engine,
        workers=workers,
    ).with_(model=resolved)
