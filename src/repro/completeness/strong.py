"""Strong relative completeness (Section 4).

A partially closed c-instance ``T`` is *strongly complete* for ``Q`` relative
to ``(D_m, V)`` iff every possible world ``I ∈ Mod(T)`` is a relatively
complete ground instance — no matter how the missing values are filled in,
adding tuples cannot change the query answer.

Deciders:

* :func:`is_strongly_complete` — exact for CQ, UCQ and ∃FO⁺ (Πᵖ₂-complete,
  Theorem 4.1), via the characterisation of Lemma 4.2/4.3: check every world
  in ``Mod_Adom(T)`` with the ground-instance completeness test.
* :func:`is_strongly_complete_bounded` — sound-but-incomplete variant for FO
  and FP, for which the problem is undecidable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.completeness.ground import (
    IncompletenessWitness,
    find_ground_incompleteness_witness,
    is_ground_complete_bounded,
)
from repro.completeness.models import CompletenessModel
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, models
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import InconsistentCInstanceError
from repro.queries.evaluation import Query
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


@dataclass(frozen=True)
class StrongIncompletenessWitness:
    """A counterexample to strong completeness.

    ``world`` is a possible world of the c-instance that is not relatively
    complete; ``ground_witness`` records the extension changing the answer.
    """

    world: GroundInstance
    ground_witness: IncompletenessWitness


def find_strong_incompleteness_witness(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> StrongIncompletenessWitness | None:
    """Search for a world of ``T`` that is not relatively complete for ``Q``.

    Returns ``None`` when ``T`` is strongly complete.  Exact for the positive
    languages (CQ, UCQ, ∃FO⁺).

    Raises
    ------
    InconsistentCInstanceError
        If ``Mod(T, D_m, V)`` is empty and ``require_consistent`` is set (the
        paper restricts attention to consistent c-instances; with
        ``require_consistent=False`` an inconsistent c-instance is vacuously
        strongly complete).
    """
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    saw_world = False
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        saw_world = True
        witness = find_ground_incompleteness_witness(
            world, query, master, constraints, adom=adom, limit=limit,
            engine=engine, workers=workers,
        )
        if witness is not None:
            return StrongIncompletenessWitness(world=world, ground_witness=witness)
    if not saw_world and require_consistent:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; strong completeness is only defined for "
            "partially closed (consistent) c-instances"
        )
    return None


def is_strongly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether ``T`` is strongly complete for ``Q`` relative to ``(D_m, V)``.

    Exact for CQ, UCQ and ∃FO⁺ (RCDPˢ, Theorem 4.1).  Returns a
    :class:`~repro.decision.Decision` whose ``.witness`` carries the
    :class:`StrongIncompletenessWitness` counterexample (an incomplete world
    plus the answer-changing extension) when the verdict is negative.
    """
    rec = DecisionRecorder("rcdp", engine, model=CompletenessModel.STRONG)
    with rec:
        witness = find_strong_incompleteness_witness(
            cinstance,
            query,
            master,
            constraints,
            adom=adom,
            limit=limit,
            require_consistent=require_consistent,
            engine=engine, workers=workers,
        )
    return rec.decision(witness is None, witness=witness)


def is_strongly_complete_bounded(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_new_tuples: int = 1,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Bounded strong-completeness check for arbitrary query languages.

    RCDPˢ is undecidable for FO and FP (Theorem 4.1); this check explores,
    for every world in ``Mod_Adom(T)``, extensions by at most
    ``max_new_tuples`` Adom tuples.  Negative decisions are definitive (the
    witness is the counterexample); positive decisions are only "no
    counterexample within the bound" and are marked ``exact=False``.

    As with the exact decider, an empty ``Mod(T, D_m, V)`` raises unless
    ``require_consistent=False`` is passed, in which case the inconsistent
    c-instance is vacuously strongly complete.
    """
    rec = DecisionRecorder(
        "rcdp", engine, model=CompletenessModel.STRONG, exact=False
    )
    with rec:
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        saw_world = False
        witness: StrongIncompletenessWitness | None = None
        for world in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        ):
            saw_world = True
            ground = is_ground_complete_bounded(
                world,
                query,
                master,
                constraints,
                max_new_tuples=max_new_tuples,
                adom=adom,
                limit=limit,
                engine=engine,
                workers=workers,
            )
            if not ground:
                witness = StrongIncompletenessWitness(
                    world=world, ground_witness=ground.witness
                )
                break
        if not saw_world and require_consistent:
            raise InconsistentCInstanceError(
                "Mod(T, Dm, V) is empty; strong completeness is only defined for "
                "partially closed (consistent) c-instances"
            )
    # A found counterexample is definitive; only the positive "no
    # counterexample within the bound" verdict is heuristic.
    rec.exact = witness is not None
    return rec.decision(witness is None, witness=witness)
