"""Relative completeness of ground instances.

This module implements the notion the paper inherits from Fan & Geerts
[2009, 2010b] (Section 2.1): a partially closed ground instance ``I`` is
*complete for a query Q relative to (D_m, V)* iff ``Q(I) = Q(I')`` for every
partially closed extension ``I'`` of ``I``.

For the positive languages (CQ, UCQ, ∃FO⁺) the problem is decidable (Πᵖ₂ by
Theorem 4.1); the decision procedure is the characterisation of Lemma 4.2 /
4.3: ``I`` is complete iff adding any Adom-valuation of any disjunct's query
tableau either violates ``V`` or leaves the query answer unchanged.

For FO and FP the problem is undecidable; :func:`is_ground_complete_bounded`
offers the sound-but-incomplete check that explores extensions by at most
``max_new_tuples`` Adom tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.completeness.extensions import bounded_extensions, tableau_extensions
from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
    satisfies_all,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import CompletenessError, QueryError
from repro.queries.classify import as_union_of_cqs, classify, supports_exact_strong_check
from repro.queries.evaluation import (
    Query,
    evaluate,
    query_constants,
    query_variables,
)
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.reductions.implication, which consumes this module)
    from repro.search.registry import EngineConfig


@dataclass(frozen=True)
class IncompletenessWitness:
    """A counterexample to relative completeness of a ground instance.

    ``extension`` is a partially closed extension of the instance on which
    the query produces ``new_answers`` beyond the answers on the instance
    itself.
    """

    instance: GroundInstance
    extension: GroundInstance
    new_answers: frozenset[Row]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncompletenessWitness(+{self.extension.size - self.instance.size} tuples, "
            f"{len(self.new_answers)} new answers)"
        )


def ground_active_domain(
    instance: GroundInstance,
    query: Query | None,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> ActiveDomain:
    """The ``Adom`` for a ground-instance completeness check.

    Constants come from the instance, the master data, the CCs and the query;
    fresh values are added for the variables of the CCs and of the query
    (the instance itself has no variables).
    """
    query_consts = query_constants(query) if query is not None else frozenset()
    query_vars = set(query_variables(query)) if query is not None else set()
    return build_active_domain(
        cinstance=None,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        query_constants=query_consts,
        extra_constants=instance.constants(),
        extra_variables=constraint_set_variables(constraints) | query_vars,
        schema=instance.schema,
    )


def find_ground_incompleteness_witness(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> IncompletenessWitness | None:
    """Search for a partially closed extension changing the query answer.

    Implements the characterisation of Lemma 4.2/4.3: only extensions of the
    form ``I ∪ ν(T_Qi)`` for Adom-valuations ``ν`` of a disjunct's tableau
    need to be considered.  Returns ``None`` when the instance is complete.
    The tableau-extension search is engine-routed
    (:func:`~repro.completeness.extensions.tableau_extensions`);
    ``engine``/``workers`` select the world-search engine.

    Raises
    ------
    QueryError
        If the query is not in a positive language (CQ, UCQ, ∃FO⁺); use
        :func:`is_ground_complete_bounded` for FO/FP.
    CompletenessError
        If the instance is not partially closed to begin with.
    """
    if not supports_exact_strong_check(query):
        raise QueryError(
            "exact ground completeness requires CQ/UCQ/∃FO+; got "
            f"{classify(query).value} — use is_ground_complete_bounded instead"
        )
    if not satisfies_all(instance, master, constraints):
        raise CompletenessError(
            "the instance is not partially closed relative to (Dm, V)"
        )
    if adom is None:
        adom = ground_active_domain(instance, query, master, constraints)
    base_answer = evaluate(query, instance)
    unfolded = as_union_of_cqs(query)
    for disjunct in unfolded.disjuncts:
        for _valuation, extended in tableau_extensions(
            instance, disjunct, master, constraints, adom, limit=limit,
            engine=engine, workers=workers,
        ):
            extended_answer = evaluate(query, extended)
            if extended_answer != base_answer:
                return IncompletenessWitness(
                    instance=instance,
                    extension=extended,
                    new_answers=frozenset(extended_answer - base_answer),
                )
    return None


def is_ground_complete(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether a partially closed ground instance is complete for the query.

    Exact for CQ, UCQ and ∃FO⁺ (Theorem 4.1 machinery).  Returns a
    :class:`~repro.decision.Decision` whose ``.witness`` is the
    :class:`IncompletenessWitness` counterexample when the verdict is
    negative.
    """
    rec = DecisionRecorder("ground-completeness", engine)
    with rec:
        witness = find_ground_incompleteness_witness(
            instance, query, master, constraints, adom=adom, limit=limit,
            engine=engine, workers=workers,
        )
    return rec.decision(witness is None, witness=witness)


def is_ground_complete_bounded(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_new_tuples: int = 1,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Bounded completeness check usable for any query language.

    Explores partially closed extensions obtained by adding at most
    ``max_new_tuples`` Adom tuples and reports whether any of them changes the
    query answer.  A negative decision is always correct (a genuine
    counterexample was found, attached as the witness); a positive decision
    only means no counterexample exists *within the bound* — for FO and FP no
    terminating exact procedure exists (Theorem 4.1), so this is the best a
    sound checker can do.  The decision is marked ``exact=False``.
    """
    rec = DecisionRecorder("ground-completeness", engine, exact=False)
    with rec:
        if not satisfies_all(instance, master, constraints):
            raise CompletenessError(
                "the instance is not partially closed relative to (Dm, V)"
            )
        if adom is None:
            adom = ground_active_domain(instance, query, master, constraints)
        base_answer = evaluate(query, instance)
        witness: IncompletenessWitness | None = None
        for extended in bounded_extensions(
            instance, master, constraints, adom,
            max_new_tuples=max_new_tuples, limit=limit,
            engine=engine, workers=workers,
        ):
            extended_answer = evaluate(query, extended)
            if extended_answer != base_answer:
                witness = IncompletenessWitness(
                    instance=instance,
                    extension=extended,
                    new_answers=frozenset(extended_answer - base_answer),
                )
                break
    # A found counterexample is definitive; only the positive "no
    # counterexample within the bound" verdict is heuristic.
    rec.exact = witness is not None
    return rec.decision(witness is None, witness=witness)
