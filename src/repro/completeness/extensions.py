"""Partially closed extensions ``Ext(I, D_m, V)``.

``Ext(I, D_m, V)`` is the set of ground instances ``I'`` that strictly extend
``I`` and remain partially closed, i.e. ``(I', D_m) |= V`` (Section 2.1).
The set is infinite in general; the paper's algorithms only ever enumerate
two restricted families of extensions, both with values drawn from the active
domain ``Adom``:

* *single-tuple extensions* ``I ∪ {t}`` — sufficient for the extensibility
  problem (Proposition 3.3) and, for monotone queries, for the certain answer
  over all extensions (Lemma 5.2 / Theorem 5.4); and
* *query-tableau extensions* ``I ∪ ν(T_Q)`` — sufficient for the strong-model
  characterisation (Lemma 4.2 / 4.3).

Both enumerations are exponential in the worst case (that is the content of
the lower bounds); the generators below accept an optional budget so callers
can fail fast instead of looping silently.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.constraints.containment import ContainmentConstraint, satisfies_all
from repro.ctables.adom import ActiveDomain
from repro.exceptions import BoundExceededError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable, is_variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema


def is_partially_closed(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> bool:
    """Whether ``(I, D_m) |= V``."""
    return satisfies_all(instance, master, constraints)


def candidate_rows(
    relation: RelationSchema, adom: ActiveDomain, fresh_first: bool = False
) -> Iterator[Row]:
    """All tuples over ``Adom`` conforming to a relation schema.

    Attributes with finite domains range over their finite domain, other
    attributes over the whole active domain, exactly as in the paper's
    extensibility algorithm (Proposition 3.3).

    With ``fresh_first=True`` the enumeration visits the fresh (``New``)
    constants of ``Adom`` before the input constants.  This does not change
    the set of rows produced, only their order; callers that search for *one*
    satisfying tuple (extensibility, the "unhelpful extension" short-circuit
    of the weak model) typically find fresh-valued tuples acceptable first,
    because fresh values rarely trigger containment-constraint violations.
    """
    fresh = set(adom.fresh_values)

    def order(pool: list) -> list:
        if not fresh_first:
            return pool
        return sorted(pool, key=lambda value: (value not in fresh, repr(value)))

    pools = []
    for attribute in relation.attributes:
        pools.append(order(adom.pool_for(attribute.domain)))
    for combo in itertools.product(*pools):
        yield tuple(combo)


def single_tuple_extensions(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    relations: Sequence[str] | None = None,
    limit: int | None = None,
) -> Iterator[GroundInstance]:
    """Partially closed extensions of ``I`` obtained by adding one Adom tuple.

    Parameters
    ----------
    relations:
        Restrict the relation the new tuple is added to (all relations of the
        schema by default).
    limit:
        Optional cap on the number of *candidate* tuples inspected; exceeding
        it raises :class:`BoundExceededError`.
    """
    names = list(relations) if relations is not None else list(
        instance.schema.relation_names
    )
    inspected = 0
    for name in names:
        existing = instance.relation(name).rows
        for row in candidate_rows(instance.schema[name], adom):
            inspected += 1
            if limit is not None and inspected > limit:
                raise BoundExceededError(
                    f"single-tuple extension enumeration exceeded {limit} candidates"
                )
            if row in existing:
                continue
            extended = instance.with_tuple(name, row)
            if satisfies_all(extended, master, constraints):
                yield extended


def has_partially_closed_extension(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    limit: int | None = None,
) -> bool:
    """Whether ``Ext(I, D_m, V)`` is non-empty.

    For CCs defined by (monotone) CQs, an extension exists iff a *single
    tuple* can be added without violating ``V`` (Proposition 3.3), and the
    added tuple may be assumed to take values in ``Adom``.
    """
    for _ in single_tuple_extensions(instance, master, constraints, adom, limit=limit):
        return True
    return False


def tableau_valuations(
    query: ConjunctiveQuery,
    adom: ActiveDomain,
    instance: GroundInstance | None = None,
) -> Iterator[dict[Variable, Constant]]:
    """All valuations of a query tableau's variables over ``Adom``.

    The valuations produced satisfy the query's comparison atoms (a valuation
    violating them can never witness a new query answer).  Variables occurring
    in finite-domain attribute positions are restricted to those domains when
    the relation is part of the instance schema.
    """
    variables = sorted(query.variables(), key=lambda v: v.name)
    restrictions: dict[Variable, list[Constant]] = {}
    if instance is not None:
        schema = instance.schema
        for atom in query.atoms:
            if atom.relation not in schema:
                continue
            rel_schema = schema[atom.relation]
            for attribute, term in zip(rel_schema.attributes, atom.terms):
                if is_variable(term) and attribute.domain.is_finite:
                    pool = adom.pool_for(attribute.domain)
                    current = restrictions.get(term)
                    restrictions[term] = (
                        pool if current is None else [v for v in current if v in pool]
                    )
    pools = [restrictions.get(v, adom.ordered()) for v in variables]
    for combo in itertools.product(*pools):
        valuation = dict(zip(variables, combo))
        if all(c.evaluate(valuation) for c in query.comparisons):
            yield valuation


def tableau_extensions(
    instance: GroundInstance,
    query: ConjunctiveQuery,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    limit: int | None = None,
) -> Iterator[tuple[dict[Variable, Constant], GroundInstance]]:
    """Partially closed extensions ``I ∪ ν(T_Q)`` for Adom-valuations ``ν``.

    Yields ``(ν, I ∪ ν(T_Q))`` pairs for every valuation such that the
    extension is partially closed.  The extension need not be *strict*: if
    ``ν(T_Q) ⊆ I`` the pair is still yielded (the strong-model check compares
    query answers, for which equality is then immediate).
    """
    from repro.queries.tableau import freeze

    inspected = 0
    for valuation in tableau_valuations(query, adom, instance):
        inspected += 1
        if limit is not None and inspected > limit:
            raise BoundExceededError(
                f"tableau extension enumeration exceeded {limit} valuations"
            )
        additions = freeze(query.atoms, valuation)
        extended = instance.with_tuples(additions)
        if satisfies_all(extended, master, constraints):
            yield valuation, extended


def bounded_extensions(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    max_new_tuples: int = 1,
    limit: int | None = None,
) -> Iterator[GroundInstance]:
    """Partially closed extensions adding up to ``max_new_tuples`` Adom tuples.

    Used by the *bounded* completeness checks for FO and FP in the strong and
    viable models, where the exact problems are undecidable: any extension
    found here that changes the query answer refutes completeness; finding
    none is necessary but not sufficient for completeness.
    """
    frontier: list[GroundInstance] = [instance]
    seen: set[GroundInstance] = {instance}
    inspected = 0
    for _ in range(max_new_tuples):
        next_frontier: list[GroundInstance] = []
        for current in frontier:
            for extended in single_tuple_extensions(
                current, master, constraints, adom
            ):
                inspected += 1
                if limit is not None and inspected > limit:
                    raise BoundExceededError(
                        f"bounded extension enumeration exceeded {limit} instances"
                    )
                if extended in seen:
                    continue
                seen.add(extended)
                next_frontier.append(extended)
                yield extended
        frontier = next_frontier
