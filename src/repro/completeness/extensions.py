"""Partially closed extensions ``Ext(I, D_m, V)``.

``Ext(I, D_m, V)`` is the set of ground instances ``I'`` that strictly extend
``I`` and remain partially closed, i.e. ``(I', D_m) |= V`` (Section 2.1).
The set is infinite in general; the paper's algorithms only ever enumerate
two restricted families of extensions, both with values drawn from the active
domain ``Adom``:

* *single-tuple extensions* ``I ∪ {t}`` — sufficient for the extensibility
  problem (Proposition 3.3) and, for monotone queries, for the certain answer
  over all extensions (Lemma 5.2 / Theorem 5.4); and
* *query-tableau extensions* ``I ∪ ν(T_Q)`` — sufficient for the strong-model
  characterisation (Lemma 4.2 / 4.3).

Both searches are **engine-routed**: an extension search *is* a world search
over the c-instance obtained by adjoining candidate rows with fresh variables
(one all-variable row for the single-tuple case, the query tableau's atoms
for the tableau case) to the ground instance ``I``.  Every enumerator below
therefore accepts the same ``engine=`` / ``workers=`` selection as the rest
of the library (a registered engine name, an
:class:`~repro.search.registry.EngineConfig`, or ``None`` for the default)
and resolves it through the engine registry — the propagating engine prunes
constraint-violating candidates without materialising the cross product the
original scan walked, the SAT and parallel engines apply their own
machinery, and the naive engine reproduces the original scan as the
reference the parity harness compares against.

:func:`candidate_rows` survives as a thin cross product over
:func:`candidate_pools`, the *pool provider* the engine routing and the
remaining direct consumers (the certain-answer short-circuit sweep, the RCQP
combination scan) share.

Both enumerations are exponential in the worst case (that is the content of
the lower bounds); the generators accept an optional ``limit`` budget on the
candidate universe — the product of the candidate pools — so callers fail
fast instead of looping silently.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint, satisfies_all
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.exceptions import BoundExceededError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable, is_variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.reductions.implication, which consumes candidate_rows)
    from repro.search.registry import EngineConfig


# reprolint: disable=R004 -- world-level predicate (one instance against V),
# not a decider; Decision wrapping happens in consistency/ground deciders.
def is_partially_closed(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
) -> bool:
    """Whether ``(I, D_m) |= V``."""
    return satisfies_all(instance, master, constraints)


def candidate_pools(
    relation: RelationSchema, adom: ActiveDomain, fresh_first: bool = False
) -> list[list[Constant]]:
    """Per-attribute candidate pools over ``Adom`` for a relation schema.

    Attributes with finite domains range over their finite domain, other
    attributes over the whole active domain, exactly as in the paper's
    extensibility algorithm (Proposition 3.3).  This is the pool provider
    behind :func:`candidate_rows` and the engine-routed extension searches —
    by construction it produces exactly the pools the world-search engines
    derive for an adjoined all-variable row, which is what makes the two
    enumeration strategies interchangeable.

    With ``fresh_first=True`` each pool visits the fresh (``New``) constants
    of ``Adom`` before the input constants.  This does not change the pools'
    contents, only their order; callers that search for *one* satisfying
    tuple typically find fresh-valued tuples acceptable first, because fresh
    values rarely trigger containment-constraint violations.
    """
    fresh = set(adom.fresh_values)

    def order(pool: list[Constant]) -> list[Constant]:
        if not fresh_first:
            return pool
        return sorted(pool, key=lambda value: (value not in fresh, repr(value)))

    return [
        order(adom.pool_for(attribute.domain)) for attribute in relation.attributes
    ]


def candidate_rows(
    relation: RelationSchema, adom: ActiveDomain, fresh_first: bool = False
) -> Iterator[Row]:
    """All tuples over ``Adom`` conforming to a relation schema.

    The cross product of :func:`candidate_pools`; kept for consumers that
    genuinely want the raw candidate universe in pool order (the
    certain-answer sweep's fresh-first short-circuit, the RCQP combination
    scan, oracles in tests).
    """
    for combo in itertools.product(*candidate_pools(relation, adom, fresh_first)):
        yield tuple(combo)


def _budget_exceeded(limit: int | None, what: str) -> BoundExceededError:
    return BoundExceededError(f"{what} enumeration exceeded {limit} candidates")


def _extension_variables(name: str, relation: RelationSchema) -> tuple[Variable, ...]:
    """One fresh variable per attribute of the adjoined candidate row.

    The names cannot collide with anything in the search: the base instance
    is ground, so the adjoined row's variables are the only variables of the
    augmented c-instance.
    """
    return tuple(
        Variable(f"_ext_{name}_{i}") for i in range(relation.arity)
    )


def single_tuple_extensions(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    relations: Sequence[str] | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    fresh_first: bool = False,
) -> Iterator[GroundInstance]:
    """Partially closed extensions of ``I`` obtained by adding one Adom tuple.

    Routed through the world-search engine registry: for each target relation
    the search runs over ``I`` adjoined with one all-variable row, whose
    satisfying valuations are exactly the addable tuples (valuations that
    ground the row onto an existing tuple reproduce ``I`` itself and are
    filtered out — extensions are strict).

    Parameters
    ----------
    relations:
        Restrict the relation the new tuple is added to (all relations of the
        schema by default).
    limit:
        Optional cap on the number of candidate tuples inspected; exceeding
        it raises :class:`BoundExceededError`.  A relation whose candidate
        universe fits the remaining budget is searched through the engine
        (the whole universe is charged up front — a draining consumer would
        inspect exactly that many candidates); a relation that could not be
        drained within the budget falls back to the lazy per-candidate scan,
        preserving the historical semantics where an early witness is found
        and returned before the budget runs out.
    engine, workers:
        World-search engine selection, as accepted everywhere else in the
        library.
    fresh_first:
        Order the candidate sweep with the fresh ``New`` values of the
        active domain first (stably).  Fresh values are the candidates most
        likely to produce genuinely new tuples, so consumers that stop at
        the first (or first *unhelpful*) extension find one sooner.  On the
        engine-routed path the hint travels as the ``pool_order`` engine
        option; engines that do not declare
        :attr:`~repro.search.registry.EngineCapabilities.pool_order_hints`
        cannot honour it, so the sweep falls back to the direct fresh-first
        candidate scan instead — the extension *set* is identical on every
        path, only the discovery order differs.
    """
    from repro.ctables.possible_worlds import models_with_valuations
    from repro.search.registry import EngineConfig as _EngineConfig

    engine_selection: EngineConfig | str | None = engine
    engine_honours_order = True
    if fresh_first:
        config = _EngineConfig.coerce(engine)
        engine_honours_order = config.spec().capabilities.pool_order_hints
        if engine_honours_order:
            engine_selection = _EngineConfig(
                config.name,
                config.workers,
                {**dict(config.options), "pool_order": "fresh_first"},
            )

    names = list(relations) if relations is not None else list(
        instance.schema.relation_names
    )
    base = CInstance.from_ground_instance(instance)
    inspected = 0
    for name in names:
        rel_schema = instance.schema[name]
        pools = candidate_pools(rel_schema, adom, fresh_first=fresh_first)
        universe = math.prod(len(pool) for pool in pools)
        existing = instance.relation(name).rows
        if (limit is not None and inspected + universe > limit) or (
            fresh_first and not engine_honours_order
        ):
            # Direct scan: either the budget cannot cover this relation's
            # universe (inspect candidates one at a time so a witness early
            # in pool order is still found, and the bound trips exactly
            # where it used to), or a fresh-first sweep was requested and
            # the selected engine cannot honour the pool-order hint.
            for row in itertools.product(*pools):
                inspected += 1
                if limit is not None and inspected > limit:
                    raise _budget_exceeded(limit, "single-tuple extension")
                if row in existing:
                    continue
                extended = instance.with_tuple(name, row)
                if satisfies_all(extended, master, constraints):
                    yield extended
            continue
        inspected += universe
        variables = _extension_variables(name, rel_schema)
        augmented = base.with_row(name, variables)
        for valuation, _world in models_with_valuations(
            augmented, master, constraints, adom,
            engine=engine_selection, workers=workers,
        ):
            row = tuple(valuation[variable] for variable in variables)
            if row in existing:
                continue
            yield instance.with_tuple(name, row)


# reprolint: disable=R004 -- boolean existence probe consumed by
# is_extensible(), which wraps the verdict in a Decision with stats.
def has_partially_closed_extension(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> bool:
    """Whether ``Ext(I, D_m, V)`` is non-empty.

    For CCs defined by (monotone) CQs, an extension exists iff a *single
    tuple* can be added without violating ``V`` (Proposition 3.3), and the
    added tuple may be assumed to take values in ``Adom``.

    The unbudgeted probe runs with ``has_model``-style fresh-value symmetry
    breaking: per relation, the search over ``I`` adjoined with one
    all-variable row enumerates one valuation per orbit of the fresh-value
    permutation group (``break_symmetry=True``).  This is sound for the
    strict-extension filter because the acceptance predicate — "the adjoined
    row differs from every existing tuple of ``I``" — is invariant under
    permutations of the unmentioned fresh Adom values: ``I`` is ground and
    mentions no fresh value, so permuting fresh values maps strict-extension
    witnesses to strict-extension witnesses within the same orbit.  A
    relation with no existing tuples cannot produce a duplicate at all, so
    there the probe collapses to a plain existence check and engines may
    additionally cancel in-flight work at the first world.

    A ``limit`` budget keeps the historical per-candidate accounting (and
    its :class:`BoundExceededError` trip point), which is incompatible with
    orbit-level enumeration, so the budgeted path scans unreduced.
    """
    if limit is not None:
        for _ in single_tuple_extensions(
            instance, master, constraints, adom, limit=limit,
            engine=engine, workers=workers,
        ):
            return True
        return False

    from repro.ctables.possible_worlds import has_model, models_with_valuations

    base = CInstance.from_ground_instance(instance)
    for name in instance.schema.relation_names:
        rel_schema = instance.schema[name]
        existing = instance.relation(name).rows
        variables = _extension_variables(name, rel_schema)
        augmented = base.with_row(name, variables)
        if not existing:
            if has_model(
                augmented, master, constraints, adom,
                engine=engine, workers=workers,
            ):
                return True
            continue
        for valuation, _world in models_with_valuations(
            augmented, master, constraints, adom,
            engine=engine, workers=workers, break_symmetry=True,
        ):
            if tuple(valuation[variable] for variable in variables) not in existing:
                return True
    return False


def _tableau_pools(
    query: ConjunctiveQuery,
    adom: ActiveDomain,
    instance: GroundInstance | None,
) -> tuple[list[Variable], list[list[Constant]]]:
    """The (sorted) query variables and their candidate pools over ``Adom``.

    Variables occurring in finite-domain attribute positions are restricted
    to those domains when the relation is part of the instance schema — the
    same restriction the world-search engines derive from the augmented
    c-instance's ``variable_domains``.
    """
    variables = sorted(query.variables(), key=lambda v: v.name)
    restrictions: dict[Variable, list[Constant]] = {}
    if instance is not None:
        schema = instance.schema
        for atom in query.atoms:
            if atom.relation not in schema:
                continue
            rel_schema = schema[atom.relation]
            for attribute, term in zip(rel_schema.attributes, atom.terms):
                if is_variable(term) and attribute.domain.is_finite:
                    pool = adom.pool_for(attribute.domain)
                    current = restrictions.get(term)
                    restrictions[term] = (
                        pool if current is None else [v for v in current if v in pool]
                    )
    pools = [restrictions.get(v, adom.ordered()) for v in variables]
    return variables, pools


def tableau_valuations(
    query: ConjunctiveQuery,
    adom: ActiveDomain,
    instance: GroundInstance | None = None,
) -> Iterator[dict[Variable, Constant]]:
    """All valuations of a query tableau's variables over ``Adom``.

    The valuations produced satisfy the query's comparison atoms (a valuation
    violating them can never witness a new query answer).  Variables occurring
    in finite-domain attribute positions are restricted to those domains when
    the relation is part of the instance schema.
    """
    variables, pools = _tableau_pools(query, adom, instance)
    for combo in itertools.product(*pools):
        valuation = dict(zip(variables, combo))
        if all(c.evaluate(valuation) for c in query.comparisons):
            yield valuation


def tableau_extensions(
    instance: GroundInstance,
    query: ConjunctiveQuery,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Iterator[tuple[dict[Variable, Constant], GroundInstance]]:
    """Partially closed extensions ``I ∪ ν(T_Q)`` for Adom-valuations ``ν``.

    Yields ``(ν, I ∪ ν(T_Q))`` pairs for every valuation such that the
    extension is partially closed.  The extension need not be *strict*: if
    ``ν(T_Q) ⊆ I`` the pair is still yielded (the strong-model check compares
    query answers, for which equality is then immediate).

    Engine-routed: the search runs over ``I`` adjoined with the query
    tableau's atoms as c-table rows, so the engines prune
    constraint-violating valuations instead of testing ``satisfies_all`` per
    cross-product point.  Query variables bound only through equality atoms
    (they occur in no tableau row) are enumerated directly over their pools,
    and the query's comparison atoms are applied to the merged valuation —
    exactly the :func:`tableau_valuations` semantics.

    ``limit`` caps the number of candidate valuations inspected.  When the
    valuation universe fits the budget the engine search runs (and the whole
    universe is charged); otherwise the lazy per-valuation scan runs so that
    witnesses early in enumeration order are still produced before the bound
    trips, exactly as before the engine routing.
    """
    from repro.ctables.possible_worlds import models_with_valuations
    from repro.queries.tableau import freeze

    variables, pools = _tableau_pools(query, adom, instance)
    if limit is not None and math.prod(len(pool) for pool in pools) > limit:
        inspected = 0
        for valuation in tableau_valuations(query, adom, instance):
            inspected += 1
            if inspected > limit:
                raise _budget_exceeded(limit, "tableau extension")
            additions = freeze(query.atoms, valuation)
            extended = instance.with_tuples(additions)
            if satisfies_all(extended, master, constraints):
                yield valuation, extended
        return
    row_variables: set[Variable] = set()
    for atom in query.atoms:
        row_variables |= atom.variables()
    free = [
        (variable, pool)
        for variable, pool in zip(variables, pools)
        if variable not in row_variables
    ]

    def merged_valuations(
        engine_valuation: Mapping[Variable, Constant],
    ) -> Iterator[dict[Variable, Constant]]:
        if not free:
            yield dict(engine_valuation)
            return
        for combo in itertools.product(*(pool for _variable, pool in free)):
            merged = dict(engine_valuation)
            merged.update(zip((variable for variable, _pool in free), combo))
            yield merged

    if not query.atoms:
        # No tableau rows: the "extension" is I itself, kept iff partially
        # closed; every comparison-satisfying valuation is a witness.
        if not satisfies_all(instance, master, constraints):
            return
        for valuation in merged_valuations({}):
            if all(c.evaluate(valuation) for c in query.comparisons):
                yield valuation, instance
        return

    augmented = CInstance.from_ground_instance(instance)
    for atom in query.atoms:
        augmented = augmented.with_row(atom.relation, atom.terms)
    for engine_valuation, _world in models_with_valuations(
        augmented, master, constraints, adom, engine=engine, workers=workers
    ):
        for valuation in merged_valuations(engine_valuation):
            if not all(c.evaluate(valuation) for c in query.comparisons):
                continue
            extended = instance.with_tuples(freeze(query.atoms, valuation))
            yield valuation, extended


def bounded_extensions(
    instance: GroundInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    max_new_tuples: int = 1,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Iterator[GroundInstance]:
    """Partially closed extensions adding up to ``max_new_tuples`` Adom tuples.

    Used by the *bounded* completeness checks for FO and FP in the strong and
    viable models, where the exact problems are undecidable: any extension
    found here that changes the query answer refutes completeness; finding
    none is necessary but not sufficient for completeness.

    ``limit`` caps the number of **distinct** extension instances produced;
    an extension reachable along several addition orders is counted (and
    yielded) once, and a budget equal to the number of distinct extensions
    completes normally instead of tripping on a trailing duplicate.
    """
    frontier: list[GroundInstance] = [instance]
    seen: set[GroundInstance] = {instance}
    produced = 0
    for _ in range(max_new_tuples):
        next_frontier: list[GroundInstance] = []
        for current in frontier:
            for extended in single_tuple_extensions(
                current, master, constraints, adom, engine=engine, workers=workers
            ):
                if extended in seen:
                    continue
                produced += 1
                if limit is not None and produced > limit:
                    raise BoundExceededError(
                        f"bounded extension enumeration exceeded {limit} instances"
                    )
                seen.add(extended)
                next_frontier.append(extended)
                yield extended
        frontier = next_frontier
