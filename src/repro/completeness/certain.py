"""Certain answers over possible worlds and over their partially closed extensions.

The weak completeness model (Section 5) is phrased in terms of two certain
answers:

* ``⋂_{I ∈ Mod(T)} Q(I)`` — the certain answer over the possible worlds of
  the c-instance, and
* ``⋂_{I ∈ Mod(T), I' ∈ Ext(I)} Q(I')`` — the certain answer over all
  partially closed extensions of all possible worlds.

For monotone queries (CQ, UCQ, ∃FO⁺, FP) the second intersection may be
computed over *single-tuple* extensions with values from ``Adom`` (Lemma 5.2
and the monotonicity/small-extension argument of Theorem 5.4); both
intersections are exact under that restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, models
from repro.exceptions import InconsistentCInstanceError, QueryError
from repro.queries.evaluation import Query, evaluate, is_monotone
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


@dataclass(frozen=True)
class ExtensionCertainAnswer:
    """The certain answer over partially closed extensions.

    ``family_is_empty`` is ``True`` when no possible world has any partially
    closed extension; in that case the intersection ranges over an empty
    family and the weak-completeness definition falls back to its second
    disjunct ("or ``Ext(I) = ∅`` for all ``I ∈ Mod(T)``").
    """

    answers: frozenset[Row]
    family_is_empty: bool


def certain_answer_over_models(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> frozenset[Row]:
    """``⋂_{I ∈ Mod_Adom(T, D_m, V)} Q(I)``.

    Raises
    ------
    InconsistentCInstanceError
        If ``Mod(T, D_m, V)`` is empty (the paper only considers partially
        closed c-instances, i.e. consistent ones).
    """
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    answer: frozenset[Row] | None = None
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        world_answer = evaluate(query, world)
        answer = world_answer if answer is None else answer & world_answer
        if not answer:
            # The intersection can only shrink; stop early once empty.
            break
    if answer is None:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; the certain answer over models is undefined"
        )
    return answer


def _world_contribution(
    world: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain,
    limit: int | None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> tuple[frozenset[Row] | None, bool]:
    """``⋂_{I' ∈ Ext(I)} Q(I')`` for one possible world ``I`` (monotone ``Q``).

    Returns ``(contribution, has_extensions)``.  Monotonicity gives two exact
    short-circuits that avoid enumerating the full (exponential) set of
    single-tuple extensions:

    * every term of the intersection contains ``Q(I)``, so once the running
      intersection shrinks to ``Q(I)`` it cannot shrink further; and
    * if some valid extension leaves the answer unchanged ("unhelpful"
      extension), the intersection is exactly ``Q(I)``.

    The extension sweep is routed through
    :func:`~repro.completeness.extensions.single_tuple_extensions` with
    ``fresh_first=True``: an all-fresh tuple is very often such an unhelpful
    valid extension, and now that pool ordering is a pluggable engine hint
    the sweep shares the engine-routed (and engine-selectable) extension
    search instead of a private candidate scan.  The short-circuits make the
    result order-independent, so any engine yields the same contribution.
    """
    from repro.completeness.extensions import single_tuple_extensions

    base = evaluate(query, world)
    contribution: frozenset[Row] | None = None
    found_extension = False
    for extended in single_tuple_extensions(
        world,
        master,
        constraints,
        adom,
        limit=limit,
        engine=engine,
        workers=workers,
        fresh_first=True,
    ):
        found_extension = True
        extended_answer = evaluate(query, extended)
        if extended_answer == base:
            return base, True
        contribution = (
            extended_answer
            if contribution is None
            else contribution & extended_answer
        )
        if contribution == base:
            return base, True
    if not found_extension:
        return None, False
    return contribution, True


def certain_answer_over_extensions(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> ExtensionCertainAnswer:
    """``⋂_{I ∈ Mod(T), I' ∈ Ext(I)} Q(I')`` for monotone queries.

    By monotonicity (Lemma 5.2 / Theorem 5.4) the intersection over all
    partially closed extensions equals the intersection over *single-tuple*
    extensions with values from ``Adom``, which is what is enumerated here
    (with the per-world short-circuits of :func:`_world_contribution`).

    Raises
    ------
    QueryError
        If the query is not monotone (the single-tuple-extension argument
        does not apply; weak-model problems for FO are undecidable).
    InconsistentCInstanceError
        If ``Mod(T, D_m, V)`` is empty.
    """
    if not is_monotone(query):
        raise QueryError(
            "the certain answer over extensions is only computed for monotone "
            "queries (CQ, UCQ, ∃FO+, FP); weak-model analysis of FO is undecidable"
        )
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints, query)
    answer: frozenset[Row] | None = None
    saw_world = False
    for world in models(cinstance, master, constraints, adom, engine=engine, workers=workers):
        saw_world = True
        contribution, has_extensions = _world_contribution(
            world, query, master, constraints, adom, limit, engine, workers
        )
        if not has_extensions:
            continue
        answer = contribution if answer is None else answer & contribution
        if answer is not None and not answer:
            return ExtensionCertainAnswer(frozenset(), family_is_empty=False)
    if not saw_world:
        raise InconsistentCInstanceError(
            "Mod(T, Dm, V) is empty; the certain answer over extensions is undefined"
        )
    if answer is None:
        return ExtensionCertainAnswer(frozenset(), family_is_empty=True)
    return ExtensionCertainAnswer(answer, family_is_empty=False)
