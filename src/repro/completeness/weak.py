"""Weak relative completeness (Section 5).

A partially closed c-instance ``T`` is *weakly complete* for ``Q`` relative
to ``(D_m, V)`` iff

    ``⋂_{I ∈ Mod(T)} Q(I)  =  ⋂_{I ∈ Mod(T), I' ∈ Ext(I)} Q(I')``

or ``Ext(I) = ∅`` for every ``I ∈ Mod(T)``.  Intuitively the certain answer
over all partially closed extensions can already be found in ``T``.

Deciders:

* :func:`is_weakly_complete` — exact for the monotone languages CQ, UCQ,
  ∃FO⁺ (Πᵖ₃-complete, Theorem 5.1) and FP (coNEXPTIME-complete), using the
  Adom restriction of Lemma 5.2 and the single-tuple-extension argument.
* :func:`is_weakly_complete_bounded` — bounded variant for FO / native
  queries (RCDPʷ is undecidable for FO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.completeness.certain import (
    ExtensionCertainAnswer,
    certain_answer_over_extensions,
    certain_answer_over_models,
)
from repro.completeness.extensions import bounded_extensions
from repro.completeness.models import CompletenessModel
from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.possible_worlds import default_active_domain, models
from repro.decision import Decision, DecisionRecorder
from repro.exceptions import InconsistentCInstanceError, QueryError
from repro.queries.evaluation import Query, evaluate, is_monotone
from repro.relational.instance import Row
from repro.relational.master import MasterData
from repro.search.registry import EngineConfig


@dataclass(frozen=True)
class WeakCompletenessReport:
    """Both sides of the weak-completeness equation, for inspection.

    Legacy payload carried in ``Decision.details`` by the weak-model
    deciders; the pre-2.0 attribute access paths
    (``decision.certain_over_models`` etc.) still work through deprecation
    shims on :class:`~repro.decision.Decision`.
    """

    certain_over_models: frozenset[Row]
    certain_over_extensions: frozenset[Row]
    no_world_has_extensions: bool
    is_weakly_complete: bool


def weak_completeness_report(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Compute both certain answers and the weak-completeness verdict.

    Exact for monotone queries (CQ, UCQ, ∃FO⁺, FP).  An empty
    ``Mod(T, D_m, V)`` raises :class:`InconsistentCInstanceError` unless
    ``require_consistent=False`` is passed, in which case the c-instance is
    reported as vacuously weakly complete (both intersections range over an
    empty family of worlds).

    Returns a :class:`~repro.decision.Decision` whose ``.details`` is the
    full :class:`WeakCompletenessReport` (both certain answers plus the
    empty-extension-family flag).
    """
    rec = DecisionRecorder("rcdp", engine, model=CompletenessModel.WEAK)
    with rec:
        if not is_monotone(query):
            raise QueryError(
                "exact weak-completeness analysis requires a monotone query "
                "(CQ/UCQ/∃FO+/FP); use is_weakly_complete_bounded for FO"
            )
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        report: WeakCompletenessReport
        try:
            over_models = certain_answer_over_models(
                cinstance, query, master, constraints, adom=adom,
                engine=engine, workers=workers,
            )
        except InconsistentCInstanceError:
            if require_consistent:
                raise
            report = WeakCompletenessReport(
                certain_over_models=frozenset(),
                certain_over_extensions=frozenset(),
                no_world_has_extensions=True,
                is_weakly_complete=True,
            )
        else:
            over_extensions: ExtensionCertainAnswer = certain_answer_over_extensions(
                cinstance, query, master, constraints, adom=adom, limit=limit,
                engine=engine, workers=workers,
            )
            if over_extensions.family_is_empty:
                verdict = True
            else:
                verdict = over_models == over_extensions.answers
            report = WeakCompletenessReport(
                certain_over_models=over_models,
                certain_over_extensions=over_extensions.answers,
                no_world_has_extensions=over_extensions.family_is_empty,
                is_weakly_complete=verdict,
            )
    return rec.decision(report.is_weakly_complete, details=report)


def is_weakly_complete(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Whether ``T`` is weakly complete for ``Q`` relative to ``(D_m, V)``.

    Exact for CQ, UCQ, ∃FO⁺ and FP (RCDPʷ, Theorem 5.1).  The returned
    :class:`~repro.decision.Decision` carries the full
    :class:`WeakCompletenessReport` in ``.details``.
    """
    return weak_completeness_report(
        cinstance,
        query,
        master,
        constraints,
        adom=adom,
        limit=limit,
        require_consistent=require_consistent,
        engine=engine, workers=workers,
    )


def is_weakly_complete_bounded(
    cinstance: CInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    max_new_tuples: int = 1,
    adom: ActiveDomain | None = None,
    limit: int | None = None,
    require_consistent: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
) -> Decision:
    """Bounded weak-completeness check usable for any query language.

    The certain answer over extensions is approximated by extensions adding
    at most ``max_new_tuples`` Adom tuples.  For non-monotone queries this
    intersection may be *larger* than the true certain answer, so the verdict
    is a heuristic in both directions (the decision is marked
    ``exact=False``); the exact problem is undecidable for FO (Theorem 5.1).
    An empty ``Mod(T, D_m, V)`` raises unless ``require_consistent=False`` is
    passed (vacuously weakly complete, as in
    :func:`weak_completeness_report`).
    """
    rec = DecisionRecorder(
        "rcdp", engine, model=CompletenessModel.WEAK, exact=False
    )
    with rec:
        if adom is None:
            adom = default_active_domain(cinstance, master, constraints, query)
        over_models: frozenset[Row] | None = None
        over_extensions: frozenset[Row] | None = None
        any_extension = False
        saw_world = False
        for world in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        ):
            saw_world = True
            world_answer = evaluate(query, world)
            over_models = (
                world_answer if over_models is None else over_models & world_answer
            )
            for extended in bounded_extensions(
                world, master, constraints, adom,
                max_new_tuples=max_new_tuples, limit=limit,
                engine=engine, workers=workers,
            ):
                any_extension = True
                extended_answer = evaluate(query, extended)
                over_extensions = (
                    extended_answer
                    if over_extensions is None
                    else over_extensions & extended_answer
                )
        if not saw_world:
            if require_consistent:
                raise InconsistentCInstanceError(
                    "Mod(T, Dm, V) is empty; weak completeness is only defined "
                    "for partially closed (consistent) c-instances"
                )
            holds = True
        elif not any_extension:
            holds = True
        else:
            holds = over_models == over_extensions
        details = WeakCompletenessReport(
            certain_over_models=over_models or frozenset(),
            certain_over_extensions=over_extensions or frozenset(),
            # Vacuously true when there are no worlds at all, matching the
            # exact path's report for the inconsistent-but-tolerated case.
            no_world_has_extensions=not any_extension,
            is_weakly_complete=holds,
        )
    return rec.decision(holds, details=details)
