"""Search engines over the possible worlds of a c-instance.

The decision procedures of the paper all reduce to enumerating (or probing)
``Mod_Adom(T, D_m, V)``.  This package provides the three non-trivial
engines behind that enumeration:

* the **propagating** engine (:mod:`repro.search.engine`) — pruned
  backtracking: per-variable candidate pools, early containment-constraint
  propagation on partially grounded worlds, fresh-value symmetry breaking
  for existence checks and canonical-form deduplication;
* the **SAT** engine (:mod:`repro.search.sat_engine`) — membership is
  compiled to CNF (:mod:`repro.search.cnf_encoding`) and decided by the
  DPLL solver of :mod:`repro.reductions.dpll`; conditions and
  inequality-heavy constraints are evaluated once at encoding time;
* the **parallel** engine (:mod:`repro.search.parallel`) — the propagating
  search tree is sharded by the first ordered variable's pool values (pairs
  of the first two when the first pool is small) and the shards are run by a
  process pool, with shard-order merging so the output is order-identical to
  the serial propagating engine, early cancellation of outstanding shards
  for existence checks, and a serial fallback for small searches.

:mod:`repro.ctables.possible_worlds` routes through the propagating engine
by default (``engine="propagating"``); the SAT route is ``engine="sat"``,
the sharded route is ``engine="parallel"`` (with a ``workers=`` knob) and
the cross-product reference path remains available as ``engine="naive"``.
"""

from repro.search.cnf_encoding import (
    EncodingStats,
    WorldEncoding,
    encode_world_search,
)
from repro.search.engine import SearchStats, WorldSearch, world_key
from repro.search.ordering import order_variables
from repro.search.parallel import (
    ParallelSearchStats,
    ParallelWorldSearch,
    resolve_workers,
    shutdown_pools,
)
from repro.search.propagation import ConstraintChecker
from repro.search.sat_engine import SATSearchStats, SATWorldSearch

__all__ = [
    "ConstraintChecker",
    "EncodingStats",
    "ParallelSearchStats",
    "ParallelWorldSearch",
    "SATSearchStats",
    "SATWorldSearch",
    "SearchStats",
    "WorldEncoding",
    "WorldSearch",
    "encode_world_search",
    "order_variables",
    "resolve_workers",
    "shutdown_pools",
    "world_key",
]
