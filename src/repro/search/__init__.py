"""Search engines over the possible worlds of a c-instance.

The decision procedures of the paper all reduce to enumerating (or probing)
``Mod_Adom(T, D_m, V)``.  This package provides the three non-trivial
engines behind that enumeration:

* the **propagating** engine (:mod:`repro.search.engine`) — pruned
  backtracking: per-variable candidate pools, early containment-constraint
  propagation on partially grounded worlds, fresh-value symmetry breaking
  for existence checks and canonical-form deduplication;
* the **SAT** engine (:mod:`repro.search.sat_engine`) — membership is
  compiled to CNF (:mod:`repro.search.cnf_encoding`) and decided by the
  DPLL solver of :mod:`repro.reductions.dpll`; conditions and
  inequality-heavy constraints are evaluated once at encoding time;
* the **parallel** engine (:mod:`repro.search.parallel`) — the propagating
  search tree is sharded by the first ordered variable's pool values (pairs
  of the first two when the first pool is small) and the shards are run by a
  process pool, with shard-order merging so the output is order-identical to
  the serial propagating engine, early cancellation of outstanding shards
  for existence checks, and a serial fallback for small searches.

All engines are registered in the pluggable registry of
:mod:`repro.search.registry` (the cross-product reference path included, as
:class:`repro.search.naive.NaiveWorldSearch`);
:mod:`repro.ctables.possible_worlds` resolves the ``engine`` keyword —
a name string or an :class:`~repro.search.registry.EngineConfig` — through
:func:`repro.search.registry.get_engine`, so third-party engines registered
with :func:`repro.search.registry.register_engine` are selectable everywhere
without touching core modules.  The default is ``engine="propagating"``; the
SAT route is ``engine="sat"``, the sharded route is ``engine="parallel"``
(with a ``workers=`` knob) and the reference path is ``engine="naive"``.
"""

from repro.search.cnf_encoding import (
    EncodingStats,
    WorldEncoding,
    encode_world_search,
)
from repro.search.engine import SearchStats, WorldSearch, world_key
from repro.search.naive import NaiveSearchStats, NaiveWorldSearch
from repro.search.ordering import order_variables
from repro.search.parallel import (
    ParallelSearchStats,
    ParallelWorldSearch,
    resolve_workers,
    shutdown_pools,
)
from repro.search.propagation import CHECKER_MODES, CheckerSession, ConstraintChecker
from repro.search.registry import (
    DEFAULT_ENGINE,
    EngineCapabilities,
    EngineConfig,
    EngineSpec,
    engine_names,
    get_engine,
    register_engine,
    resolve_engine_name,
    unregister_engine,
)
from repro.search.sat_engine import SATSearchStats, SATWorldSearch

__all__ = [
    "CHECKER_MODES",
    "CheckerSession",
    "ConstraintChecker",
    "DEFAULT_ENGINE",
    "EncodingStats",
    "EngineCapabilities",
    "EngineConfig",
    "EngineSpec",
    "NaiveSearchStats",
    "NaiveWorldSearch",
    "ParallelSearchStats",
    "ParallelWorldSearch",
    "SATSearchStats",
    "SATWorldSearch",
    "SearchStats",
    "WorldEncoding",
    "WorldSearch",
    "encode_world_search",
    "engine_names",
    "get_engine",
    "order_variables",
    "register_engine",
    "resolve_engine_name",
    "resolve_workers",
    "shutdown_pools",
    "unregister_engine",
    "world_key",
]
