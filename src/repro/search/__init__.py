"""Constraint-propagating search over the possible worlds of a c-instance.

The decision procedures of the paper all reduce to enumerating (or probing)
``Mod_Adom(T, D_m, V)``.  This package provides the pruned backtracking
engine behind that enumeration: per-variable candidate pools, early
containment-constraint propagation on partially grounded worlds, fresh-value
symmetry breaking for existence checks and canonical-form deduplication.

:mod:`repro.ctables.possible_worlds` routes through the engine by default
(``engine="propagating"``); the cross-product path remains available as
``engine="naive"``.
"""

from repro.search.engine import SearchStats, WorldSearch, world_key
from repro.search.ordering import order_variables
from repro.search.propagation import ConstraintChecker

__all__ = [
    "ConstraintChecker",
    "SearchStats",
    "WorldSearch",
    "order_variables",
    "world_key",
]
