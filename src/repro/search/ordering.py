"""Variable ordering heuristics for the backtracking world search.

The engine assigns variables one at a time.  The order matters twice over:

* **fail first** — variables with small candidate pools (finite attribute
  domains, Section 3) branch less, so placing them early keeps the search
  tree narrow near the root; and
* **tuple locality** — a c-table row only contributes a tuple to the partial
  world once *all* of its variables are assigned, and only then can the
  containment constraints inspect it.  Grouping variables that co-occur in
  rows completes rows (and therefore enables pruning) as early as possible.

:func:`order_variables` combines both: it greedily picks the variable that
completes the most pending rows, breaking ties by pool size, then by how many
rows the variable touches, then by name (for determinism).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.queries.terms import Variable
from repro.relational.domains import Constant


def order_variables(
    pools: Mapping[Variable, Sequence[Constant]],
    row_variable_sets: Iterable[Iterable[Variable]],
) -> list[Variable]:
    """A deterministic assignment order over the variables of ``pools``.

    ``row_variable_sets`` holds, per c-table row, the variables the row
    mentions (in its terms or its local condition); rows with no variables are
    ignored, as are variables without a pool entry.
    """
    remaining = set(pools)
    pending = [set(vs) & remaining for vs in row_variable_sets]
    pending = [vs for vs in pending if vs]

    order: list[Variable] = []
    while remaining:

        def priority(candidate: Variable) -> tuple[int, int, int, str]:
            completes = sum(1 for vs in pending if vs == {candidate})
            touches = sum(1 for vs in pending if candidate in vs)
            return (-completes, len(pools[candidate]), -touches, candidate.name)

        best = min(remaining, key=priority)
        order.append(best)
        remaining.discard(best)
        still_pending = []
        for vs in pending:
            vs.discard(best)
            if vs:
                still_pending.append(vs)
        pending = still_pending
    return order
