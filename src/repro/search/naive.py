"""The naive cross-product engine (``engine="naive"``) as a search object.

The original reference path enumerated ``itertools.product`` over the
variable pools inline in :mod:`repro.ctables.possible_worlds`.  Wrapping it
in :class:`NaiveWorldSearch` gives it the same object shape as the other
engines (:class:`~repro.search.engine.WorldSearch`,
:class:`~repro.search.sat_engine.SATWorldSearch`,
:class:`~repro.search.parallel.ParallelWorldSearch`) so the engine registry
(:mod:`repro.search.registry`) can treat all four uniformly — and so the
differential harness keeps a reference implementation whose only cleverness
is having none: every Adom valuation is materialised and the containment
constraints are checked on complete worlds only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.constraints.containment import ContainmentConstraint, satisfies_all
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation, enumerate_valuations
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.engine import world_key


@dataclass
class NaiveSearchStats:
    """Counters describing one naive enumeration run."""

    nodes: int = 0  # complete valuations materialised
    worlds: int = 0  # satisfying valuations yielded
    duplicate_worlds: int = 0


class NaiveWorldSearch:
    """Cross-product enumeration of ``Mod_Adom(T, D_m, V)``.

    The reference implementation the optimised engines are parity-tested
    against: no propagation, no symmetry breaking, no sharing — just every
    valuation over the Adom pools, filtered on complete worlds.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        self._cinstance = cinstance
        self._master = master
        self._constraints = list(constraints)
        self._adom = adom
        self.stats = NaiveSearchStats()

    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs with ``(µ(T), D_m) |= V``."""
        for valuation in enumerate_valuations(self._cinstance, self._adom):
            self.stats.nodes += 1
            world = self._cinstance.apply(valuation)
            if satisfies_all(world, self._master, self._constraints):
                self.stats.worlds += 1
                yield valuation, world

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates when asked to."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether ``Mod_Adom(T, D_m, V)`` is non-empty."""
        for _ in self.search():
            return True
        return False

    def count_worlds(self) -> int:
        """The number of distinct worlds."""
        return sum(1 for _ in self.worlds(deduplicate=True))
