"""The SAT-backed world-search engine (``engine="sat"``).

:class:`SATWorldSearch` decides and enumerates ``Mod_Adom(T, D_m, V)`` by
handing the CNF encoding of :mod:`repro.search.cnf_encoding` to the DPLL
solver of :mod:`repro.reductions.dpll`.  It mirrors the API of
:class:`repro.search.engine.WorldSearch`, so
:mod:`repro.ctables.possible_worlds` routes through it transparently:

* :meth:`has_world` runs a single satisfiability check — existence questions
  (consistency, the MINP emptiness probe) never enumerate anything;
* :meth:`search` enumerates satisfying assignments with selector-projected
  blocking clauses, yielding each Adom valuation exactly once together with
  its world — exactly the pairs the naive cross-product scan accepts;
* :meth:`worlds` deduplicates by the shared canonical form
  (:func:`repro.search.engine.world_key`).

Compared with the propagating engine, the SAT route front-loads all
constraint reasoning into clause generation: conditions and
(in)equality-heavy containment constraints are evaluated once, and the solver
then explores the valuation space with unit propagation, learned conflicts
and restarts instead of per-node conjunctive-query re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation
from repro.reductions.dpll import DPLLSolver, SolverStats
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.cnf_encoding import (
    EncodingStats,
    IncrementalEncoder,
    LazyViolationOracle,
    WorldEncoding,
    encode_world_search,
)
from repro.search.engine import world_key
from repro.search.propagation import ConstraintChecker


@dataclass
class SATSearchStats:
    """Counters describing one SAT-backed search run."""

    worlds: int = 0
    duplicate_worlds: int = 0
    encoding: EncodingStats | None = None
    solver: SolverStats | None = None
    #: whether the most recent call was answered by a solver kept alive from
    #: a previous call (the incremental session); ``None`` for the one-shot
    #: :class:`SATWorldSearch`, which builds a fresh solver per search.
    reused_solver: bool | None = None
    #: clause-graph components the last component-counting ``count_worlds``
    #: decomposed into; ``None`` until (and unless) that path runs.
    components: int | None = None
    #: component sub-counts answered from the fingerprint cache.
    component_cache_hits: int = 0


class SATWorldSearch:
    """SAT-backed enumeration of ``Mod_Adom(T, D_m, V)``.

    Parameters mirror :class:`repro.search.engine.WorldSearch`: the
    decision-procedure input plus an optional prebuilt
    :class:`ConstraintChecker` whose precomputed right-hand sides the encoder
    reuses.  The CNF encoding is built eagerly (its cost corresponds to the
    constraint pre-evaluation of the other engines); the solver is created
    lazily per search.

    Three engine options tune the generation-2 SAT stack, all reachable as
    ``EngineConfig("sat", options={...})`` knobs:

    * ``cegar`` — encode lazily (no violation clauses up front) and refine
      with counter-example rounds: each candidate model is validated against
      the constraints and only the clauses it actually violates are added
      before re-solving (:class:`~repro.search.cnf_encoding.LazyViolationOracle`);
    * ``learning`` — the solver's conflict-analysis scheme (``"first_uip"``
      or ``"decision"``, see :class:`repro.reductions.dpll.DPLLSolver`);
    * ``component_counting`` — :meth:`count_worlds` splits the clause graph
      into connected components, counts each independently (with a
      fingerprint cache over isomorphic components) and multiplies, instead
      of enumerating the full cross product with blocking clauses.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        *,
        checker: ConstraintChecker | None = None,
        cegar: bool = False,
        learning: str = "first_uip",
        component_counting: bool = False,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        checker = checker or ConstraintChecker(master, constraints)
        self._cinstance = cinstance
        self._master = master
        self._constraints = tuple(constraints)
        self._adom = adom
        self._checker = checker
        self._learning = learning
        self._component_counting = bool(component_counting)
        self._encoding: WorldEncoding = encode_world_search(
            cinstance, master, constraints, adom,
            checker=checker,
            lazy_violations=bool(cegar),
        )
        self._oracle: LazyViolationOracle | None = (
            LazyViolationOracle(self._encoding, checker) if cegar else None
        )
        # Component counting needs the violation clauses in the clause graph
        # (a lazy encoding is spuriously disconnected), so under CEGAR it
        # builds — once, on demand — a parallel eager encoding.
        self._eager_encoding: WorldEncoding | None = (
            None if cegar else self._encoding
        )
        self._component_cache: dict[object, int] = {}
        self.stats = SATSearchStats(encoding=self._encoding.stats)

    @property
    def encoding(self) -> WorldEncoding:
        """The CNF encoding backing the search."""
        return self._encoding

    def _solver(self, encoding: WorldEncoding | None = None) -> DPLLSolver:
        # One SolverStats ledger outlives every solver instance, so a
        # has_world() followed by a search() reports the total work instead
        # of silently discarding the existence check's counters.
        if self.stats.solver is None:
            self.stats.solver = SolverStats()
        clauses = (encoding or self._encoding).clauses
        return DPLLSolver(clauses, learning=self._learning, stats=self.stats.solver)

    def _world_facts(self, valuation: Valuation) -> dict[str, set[Row]]:
        """The facts of the candidate world a valuation grounds."""
        facts: dict[str, set[Row]] = {
            name: set() for name in self._cinstance.schema.relation_names
        }
        for name, _index, row in self._cinstance.rows():
            ground = row.apply(valuation)
            if ground is not None:
                facts[name].add(ground)
        return facts

    def _models(self) -> Iterator[Valuation]:
        """The solve → validate (CEGAR) → decode → block loop.

        Without CEGAR this is exactly the shared
        :func:`~repro.search.cnf_encoding.iter_solver_models` loop.  With it,
        every candidate is checked against the constraints first; violated
        candidates feed their counter-example clauses back (persisting them
        in the encoding, so later solvers start refined) and re-solve.
        """
        encoding = self._encoding
        if encoding.trivially_unsat:
            return
        solver = self._solver()
        while True:
            model = solver.solve()
            if model is None:
                return
            valuation = encoding.decode(model)
            if self._oracle is not None:
                new_clauses = self._oracle.refute(self._world_facts(valuation))
                if new_clauses is None:
                    return  # a baseline-only violation: no world exists
                if new_clauses:
                    encoding.stats.cegar_rounds += 1
                    for clause in new_clauses:
                        solver.add_clause(clause)
                    continue
            yield valuation
            blocking = encoding.blocking_clause(valuation)
            if not blocking:
                return  # no variables: the single empty valuation is it
            solver.add_clause(blocking)

    # ------------------------------------------------------------------
    # front-ends (API parity with WorldSearch)
    # ------------------------------------------------------------------
    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs with ``(µ(T), D_m) |= V``.

        Every satisfying Adom valuation is yielded exactly once (selector
        blocking clauses; the CEGAR mode additionally validates candidates
        before yielding them).
        """
        for valuation in self._models():
            self.stats.worlds += 1
            yield valuation, self._cinstance.apply(valuation)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether ``Mod_Adom(T, D_m, V)`` is non-empty.

        A single satisfiability check for the eager encoding; under CEGAR, a
        refinement loop that stops at the first validated candidate.
        """
        if self._encoding.trivially_unsat:
            return False
        if self._oracle is None:
            return self._solver().solve() is not None
        for _valuation in self._models():
            return True
        return False

    def count_worlds(self) -> int:
        """The number of distinct worlds, counted natively.

        By default this runs the blocking-clause valuation enumeration but
        never builds a :class:`~repro.relational.instance.GroundInstance`:
        each valuation is reduced directly to the canonical world form of
        :func:`repro.search.engine.world_key` (the per-relation ground row
        sets) and counting is over the set of canonical forms.  This is the
        ``counts_natively`` capability the engine registry advertises.

        With ``component_counting`` the clause graph is split into connected
        components instead (see :meth:`_count_by_components`); the
        enumeration remains as the fallback for variable-free instances.
        """
        if self._encoding.trivially_unsat:
            return 0
        if self._component_counting:
            counted = self._count_by_components()
            if counted is not None:
                return counted
        names = list(self._cinstance.schema.relation_names)
        rows = [(name, row) for name, _index, row in self._cinstance.rows()]
        seen: set[tuple[frozenset[Row], ...]] = set()
        for valuation in self._models():
            self.stats.worlds += 1
            facts: dict[str, set[Row]] = {name: set() for name in names}
            for name, row in rows:
                ground = row.apply(valuation)
                if ground is not None:
                    facts[name].add(ground)
            key = tuple(frozenset(facts[name]) for name in names)
            if key in seen:
                self.stats.duplicate_worlds += 1
            else:
                seen.add(key)
        return len(seen)

    # ------------------------------------------------------------------
    # component-caching counting
    # ------------------------------------------------------------------
    def _complete_encoding(self) -> WorldEncoding:
        """An encoding whose clause graph carries all violation clauses.

        The lazy (CEGAR) encoding omits violation clauses, which would make
        clause-graph components spuriously independent — and the component
        product wrong.  Under CEGAR the counter builds one eager encoding on
        demand and caches it for later counts.
        """
        if self._eager_encoding is None:
            self._eager_encoding = encode_world_search(
                self._cinstance,
                self._master,
                self._constraints,
                self._adom,
                checker=self._checker,
            )
        return self._eager_encoding

    def _count_by_components(self) -> int | None:
        """Count worlds as a product over clause-graph components.

        Two c-instance variables interact — through a shared row, a shared
        candidate tuple or a shared violation clause — exactly when their
        selector variables are connected in the clause graph (tuples with
        producers in two groups get a presence variable whose Tseitin clauses
        merge them).  Component tuple universes are therefore disjoint, so
        the number of distinct worlds is the product of the per-component
        distinct sub-world counts.  Sub-counts are cached by a canonical
        component fingerprint, so isomorphic components (renamed copies of
        one sub-instance) are counted once.

        Returns ``None`` for variable-free instances (the enumeration
        fallback handles their single world).
        """
        encoding = self._complete_encoding()
        if encoding.trivially_unsat:
            return 0
        if not encoding.variables:
            return None

        parent: dict[int, int] = {}

        def find(item: int) -> int:
            root = item
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[item] != root:  # path compression
                parent[item], item = root, parent[item]
            return root

        def union(left: int, right: int) -> None:
            left_root, right_root = find(left), find(right)
            if left_root != right_root:
                parent[right_root] = left_root

        for clause in encoding.clauses:
            first = abs(clause[0])
            for lit in clause[1:]:
                union(first, abs(lit))

        # Group the c-instance variables by the component of their selectors
        # (the exactly-one clauses keep one variable's selectors together).
        groups: dict[int, list[int]] = {}
        for position, variable in enumerate(encoding.variables):
            first_value = encoding.pools[variable][0]
            root = find(encoding.selector[(variable, first_value)])
            groups.setdefault(root, []).append(position)

        component_clauses: dict[int, list[tuple[int, ...]]] = {
            root: [] for root in groups
        }
        for clause in encoding.clauses:
            # Every clause reaches some selector through the Tseitin
            # definitions, so its root is always a selector group's root.
            component_clauses[find(abs(clause[0]))].append(clause)

        producers_of: dict[int, list[tuple[tuple[int, ...], ...]]] = {
            root: [] for root in groups
        }
        for key in sorted(encoding.producers, key=repr):
            conjunctions = encoding.producers[key]
            producers_of[find(conjunctions[0][0])].append(conjunctions)

        self.stats.components = len(groups)
        total = 1
        for root, positions in sorted(groups.items(), key=lambda kv: kv[1][0]):
            fingerprint = self._component_fingerprint(
                encoding, positions, component_clauses[root], producers_of[root]
            )
            cached = self._component_cache.get(fingerprint)
            if cached is not None:
                self.stats.component_cache_hits += 1
                total *= cached
                continue
            count = self._count_component(
                encoding, positions, component_clauses[root], producers_of[root]
            )
            self._component_cache[fingerprint] = count
            total *= count
            if total == 0:
                break
        return total

    @staticmethod
    def _component_fingerprint(
        encoding: WorldEncoding,
        positions: Sequence[int],
        clauses: Sequence[tuple[int, ...]],
        producers: Sequence[tuple[tuple[int, ...], ...]],
    ) -> object:
        """A canonical form identifying a component up to variable renaming.

        Encoding variables are renamed 1..n — selectors first (c-instance
        variable order × pool order), auxiliaries by first occurrence in the
        clause walk — so two components that are renamed copies of the same
        sub-instance hash equal.  The canonical clause list is then sorted
        (literals within each clause too): violation clauses arrive in
        match-enumeration order, which differs between otherwise identical
        components, and clause order carries no meaning for the count.  The
        producer structure (which renamed conjunctions yield one candidate
        tuple) joins the clause list in the fingerprint because the
        sub-count is over distinct *tuple sets*, not distinct models.
        """
        rename: dict[int, int] = {}
        pool_sizes: list[int] = []
        for position in positions:
            variable = encoding.variables[position]
            pool = encoding.pools[variable]
            pool_sizes.append(len(pool))
            for value in pool:
                rename[encoding.selector[(variable, value)]] = len(rename) + 1
        canonical_clauses = []
        for clause in clauses:
            renamed = []
            for lit in clause:
                var = abs(lit)
                mapped = rename.get(var)
                if mapped is None:
                    mapped = len(rename) + 1
                    rename[var] = mapped
                renamed.append(mapped if lit > 0 else -mapped)
            canonical_clauses.append(tuple(sorted(renamed)))
        canonical_clauses.sort()
        producer_signatures = sorted(
            tuple(
                sorted(
                    tuple(rename[lit] for lit in conjunction)
                    for conjunction in conjunctions
                )
            )
            for conjunctions in producers
        )
        return (
            tuple(pool_sizes),
            tuple(canonical_clauses),
            tuple(producer_signatures),
        )

    def _count_component(
        self,
        encoding: WorldEncoding,
        positions: Sequence[int],
        clauses: Sequence[tuple[int, ...]],
        producers: Sequence[tuple[tuple[int, ...], ...]],
    ) -> int:
        """Distinct sub-worlds (candidate-tuple subsets) of one component."""
        scope = [
            encoding.selector[(variable, value)]
            for variable in (encoding.variables[p] for p in positions)
            for value in encoding.pools[variable]
        ]
        solver = self._solver_for_component(clauses)
        sub_worlds: set[frozenset[int]] = set()
        for model in solver.enumerate_models(project_onto=scope):
            produced = frozenset(
                index
                for index, conjunctions in enumerate(producers)
                if any(
                    all(model.get(lit, False) for lit in conjunction)
                    for conjunction in conjunctions
                )
            )
            sub_worlds.add(produced)
        return len(sub_worlds)

    def _solver_for_component(
        self, clauses: Sequence[tuple[int, ...]]
    ) -> DPLLSolver:
        if self.stats.solver is None:
            self.stats.solver = SolverStats()
        return DPLLSolver(clauses, learning=self._learning, stats=self.stats.solver)


class IncrementalSATSession:
    """A SAT search that outlives a stream of ground-tuple updates.

    Owned by the :class:`repro.api.Database` facade (one per facade when the
    effective engine supports it): instead of re-encoding and re-solving from
    scratch after every :meth:`~repro.api.Database.update`, the session keeps

    * an :class:`~repro.search.cnf_encoding.IncrementalEncoder`, whose clause
      set only ever grows (guards express drops through assumptions), and
    * one **live DPLL solver** fed the new clauses before each existence
      check and solved under the current guard assumptions, so learned
      clauses, activities and saved phases accumulate across the whole
      update stream (``reused_solver`` in the stats reports the reuse).

    Existence checks are the only consumers of the live solver: model
    *enumeration* adds blocking clauses, which are valuation-specific and
    would poison a solver that must stay sound for later calls, so
    :meth:`search` / :meth:`count_worlds` spin up a throwaway solver over the
    live clause list plus the current assumptions as unit clauses (still
    skipping the re-encode, which dominates).

    The session only absorbs updates that keep the encoding's fixed parts
    fixed: ground-tuple adds/drops under an unchanged active domain,
    variable set and finite-domain restriction map.  The facade checks those
    triggers (:meth:`compatible`) and rebuilds the session otherwise.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain,
        *,
        checker: ConstraintChecker | None = None,
        cegar: bool = False,
        learning: str = "first_uip",
    ) -> None:
        self._cinstance = cinstance
        self._adom = adom
        self._variables = frozenset(cinstance.variables())
        self._variable_domains = dict(cinstance.variable_domains())
        self._cegar = bool(cegar)
        self._learning = learning
        self._encoder = IncrementalEncoder(
            cinstance, master, constraints, adom,
            checker=checker,
            lazy_violations=self._cegar,
        )
        self._solver = DPLLSolver(learning=learning)
        self._fed = 0
        self.stats = SATSearchStats(
            encoding=self._encoder.encoding.stats, solver=self._solver.stats
        )

    @property
    def cinstance(self) -> CInstance:
        """The c-instance the session currently encodes."""
        return self._cinstance

    @property
    def encoding(self) -> WorldEncoding:
        """The (growing) CNF encoding behind the session."""
        return self._encoder.encoding

    # ------------------------------------------------------------------
    # update stream
    # ------------------------------------------------------------------
    def compatible(self, cinstance: CInstance, adom: ActiveDomain) -> bool:
        """Whether an updated instance can be absorbed without a rebuild.

        True when the variable set, the finite-domain restriction map and the
        active domain — everything the selector pools and the variable-row
        groundings were built from — are unchanged, so the instances can only
        differ in their fully ground rows.
        """
        return (
            adom == self._adom
            and frozenset(cinstance.variables()) == self._variables
            and dict(cinstance.variable_domains()) == self._variable_domains
        )

    def apply(
        self,
        cinstance: CInstance,
        added: Iterable[tuple[str, Row]],
        dropped: Iterable[tuple[str, Row]],
    ) -> None:
        """Absorb one update: tuple-level ground diffs against the old state.

        ``added``/``dropped`` are the ground tuples that became present /
        absent (the facade computes the set-level diff; duplicate rows of one
        tuple collapse).  The caller must have checked :meth:`compatible`.
        """
        for relation, ground in dropped:
            self._encoder.drop_ground(relation, ground)
        for relation, ground in added:
            self._encoder.add_ground(relation, ground)
        self._cinstance = cinstance

    # ------------------------------------------------------------------
    # decision surfaces (API parity with SATWorldSearch where it matters)
    # ------------------------------------------------------------------
    def _feed_live_solver(self) -> None:
        clauses = self._encoder.encoding.clauses
        while self._fed < len(clauses):
            self._solver.add_clause(clauses[self._fed])
            self._fed += 1

    def _world_facts(self, valuation: Valuation) -> dict[str, set[Row]]:
        """The facts of the candidate world a valuation grounds."""
        facts: dict[str, set[Row]] = {
            name: set() for name in self._cinstance.schema.relation_names
        }
        for name, _index, row in self._cinstance.rows():
            ground = row.apply(valuation)
            if ground is not None:
                facts[name].add(ground)
        return facts

    def has_world(self) -> bool:
        """Existence via the live solver, under the current guard assumptions.

        The ``reused_solver`` flag is set only once the live solver is
        actually consulted: a trivially-unsat session answers from the
        encoder alone and performs no solver reuse to report.
        """
        if self._encoder.encoding.trivially_unsat:
            return False
        self.stats.reused_solver = self._solver.stats.solve_calls > 0
        self._feed_live_solver()
        while True:
            model = self._solver.solve(self._encoder.assumptions())
            if model is None:
                return False
            if not self._cegar:
                return True
            # CEGAR round on the live solver: violation clauses are globally
            # sound (head coverage depends only on the fixed master), so
            # refinements persist safely across the update stream.
            valuation = self._encoder.encoding.decode(model)
            added = self._encoder.refute_facts(self._world_facts(valuation))
            if added == 0:
                return True
            self._encoder.encoding.stats.cegar_rounds += 1
            self._feed_live_solver()

    def _throwaway_solver(self) -> DPLLSolver:
        """A fresh solver over the live clauses + assumptions as units.

        Enumeration must not touch the live solver: its blocking clauses are
        sound only for the instance state they were generated under.
        """
        solver = DPLLSolver(self._encoder.encoding.clauses, learning=self._learning)
        for literal in self._encoder.assumptions():
            solver.add_clause((literal,))
        return solver

    def _session_models(self) -> Iterator[Valuation]:
        """Throwaway-solver enumeration with CEGAR validation when enabled."""
        encoding = self._encoder.encoding
        if encoding.trivially_unsat:
            return
        solver = self._throwaway_solver()
        while True:
            model = solver.solve()
            if model is None:
                return
            valuation = encoding.decode(model)
            if self._cegar:
                added = self._encoder.refute_facts(self._world_facts(valuation))
                if added:
                    encoding.stats.cegar_rounds += 1
                    for clause in encoding.clauses[-added:]:
                        solver.add_clause(clause)
                    continue
            yield valuation
            blocking = encoding.blocking_clause(valuation)
            if not blocking:
                return  # no variables: the single empty valuation is it
            solver.add_clause(blocking)

    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` for the *current* instance state."""
        self.stats.reused_solver = False
        cinstance = self._cinstance
        for valuation in self._session_models():
            self.stats.worlds += 1
            yield valuation, cinstance.apply(valuation)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def count_worlds(self) -> int:
        """Count distinct worlds natively (canonical forms, no instances)."""
        self.stats.reused_solver = False
        names = list(self._cinstance.schema.relation_names)
        rows = [(name, row) for name, _index, row in self._cinstance.rows()]
        seen: set[tuple[frozenset[Row], ...]] = set()
        for valuation in self._session_models():
            self.stats.worlds += 1
            facts: dict[str, set[Row]] = {name: set() for name in names}
            for name, row in rows:
                ground = row.apply(valuation)
                if ground is not None:
                    facts[name].add(ground)
            key = tuple(frozenset(facts[name]) for name in names)
            if key in seen:
                self.stats.duplicate_worlds += 1
            else:
                seen.add(key)
        return len(seen)
