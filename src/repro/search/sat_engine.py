"""The SAT-backed world-search engine (``engine="sat"``).

:class:`SATWorldSearch` decides and enumerates ``Mod_Adom(T, D_m, V)`` by
handing the CNF encoding of :mod:`repro.search.cnf_encoding` to the DPLL
solver of :mod:`repro.reductions.dpll`.  It mirrors the API of
:class:`repro.search.engine.WorldSearch`, so
:mod:`repro.ctables.possible_worlds` routes through it transparently:

* :meth:`has_world` runs a single satisfiability check — existence questions
  (consistency, the MINP emptiness probe) never enumerate anything;
* :meth:`search` enumerates satisfying assignments with selector-projected
  blocking clauses, yielding each Adom valuation exactly once together with
  its world — exactly the pairs the naive cross-product scan accepts;
* :meth:`worlds` deduplicates by the shared canonical form
  (:func:`repro.search.engine.world_key`).

Compared with the propagating engine, the SAT route front-loads all
constraint reasoning into clause generation: conditions and
(in)equality-heavy containment constraints are evaluated once, and the solver
then explores the valuation space with unit propagation, learned conflicts
and restarts instead of per-node conjunctive-query re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation
from repro.reductions.dpll import DPLLSolver, SolverStats
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.cnf_encoding import (
    EncodingStats,
    WorldEncoding,
    encode_world_search,
    iter_solver_models,
)
from repro.search.engine import world_key
from repro.search.propagation import ConstraintChecker


@dataclass
class SATSearchStats:
    """Counters describing one SAT-backed search run."""

    worlds: int = 0
    duplicate_worlds: int = 0
    encoding: EncodingStats | None = None
    solver: SolverStats | None = None


class SATWorldSearch:
    """SAT-backed enumeration of ``Mod_Adom(T, D_m, V)``.

    Parameters mirror :class:`repro.search.engine.WorldSearch`: the
    decision-procedure input plus an optional prebuilt
    :class:`ConstraintChecker` whose precomputed right-hand sides the encoder
    reuses.  The CNF encoding is built eagerly (its cost corresponds to the
    constraint pre-evaluation of the other engines); the solver is created
    lazily per search.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        *,
        checker: ConstraintChecker | None = None,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        self._cinstance = cinstance
        self._adom = adom
        self._encoding: WorldEncoding = encode_world_search(
            cinstance, master, constraints, adom, checker=checker
        )
        self.stats = SATSearchStats(encoding=self._encoding.stats)

    @property
    def encoding(self) -> WorldEncoding:
        """The CNF encoding backing the search."""
        return self._encoding

    def _solver(self) -> DPLLSolver:
        solver = DPLLSolver(self._encoding.clauses)
        self.stats.solver = solver.stats
        return solver

    # ------------------------------------------------------------------
    # front-ends (API parity with WorldSearch)
    # ------------------------------------------------------------------
    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs with ``(µ(T), D_m) |= V``.

        Every satisfying Adom valuation is yielded exactly once (see
        :func:`repro.search.cnf_encoding.iter_solver_models`, the shared
        blocking-clause enumeration loop).
        """
        if self._encoding.trivially_unsat:
            return
        for valuation in iter_solver_models(self._encoding, self._solver()):
            self.stats.worlds += 1
            yield valuation, self._cinstance.apply(valuation)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether ``Mod_Adom(T, D_m, V)`` is non-empty (single SAT call)."""
        if self._encoding.trivially_unsat:
            return False
        return self._solver().solve() is not None

    def count_worlds(self) -> int:
        """The number of distinct worlds, counted natively.

        Runs the blocking-clause valuation enumeration but never builds a
        :class:`~repro.relational.instance.GroundInstance`: each valuation is
        reduced directly to the canonical world form of
        :func:`repro.search.engine.world_key` (the per-relation ground row
        sets) and counting is over the set of canonical forms.  This is the
        ``counts_natively`` capability the engine registry advertises.
        """
        if self._encoding.trivially_unsat:
            return 0
        names = list(self._cinstance.schema.relation_names)
        rows = [(name, row) for name, _index, row in self._cinstance.rows()]
        seen: set[tuple[frozenset[Row], ...]] = set()
        for valuation in iter_solver_models(self._encoding, self._solver()):
            self.stats.worlds += 1
            facts: dict[str, set[Row]] = {name: set() for name in names}
            for name, row in rows:
                ground = row.apply(valuation)
                if ground is not None:
                    facts[name].add(ground)
            key = tuple(frozenset(facts[name]) for name in names)
            if key in seen:
                self.stats.duplicate_worlds += 1
            else:
                seen.add(key)
        return len(seen)
