"""The SAT-backed world-search engine (``engine="sat"``).

:class:`SATWorldSearch` decides and enumerates ``Mod_Adom(T, D_m, V)`` by
handing the CNF encoding of :mod:`repro.search.cnf_encoding` to the DPLL
solver of :mod:`repro.reductions.dpll`.  It mirrors the API of
:class:`repro.search.engine.WorldSearch`, so
:mod:`repro.ctables.possible_worlds` routes through it transparently:

* :meth:`has_world` runs a single satisfiability check — existence questions
  (consistency, the MINP emptiness probe) never enumerate anything;
* :meth:`search` enumerates satisfying assignments with selector-projected
  blocking clauses, yielding each Adom valuation exactly once together with
  its world — exactly the pairs the naive cross-product scan accepts;
* :meth:`worlds` deduplicates by the shared canonical form
  (:func:`repro.search.engine.world_key`).

Compared with the propagating engine, the SAT route front-loads all
constraint reasoning into clause generation: conditions and
(in)equality-heavy containment constraints are evaluated once, and the solver
then explores the valuation space with unit propagation, learned conflicts
and restarts instead of per-node conjunctive-query re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation
from repro.reductions.dpll import DPLLSolver, SolverStats
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.cnf_encoding import (
    EncodingStats,
    IncrementalEncoder,
    WorldEncoding,
    encode_world_search,
    iter_solver_models,
)
from repro.search.engine import world_key
from repro.search.propagation import ConstraintChecker


@dataclass
class SATSearchStats:
    """Counters describing one SAT-backed search run."""

    worlds: int = 0
    duplicate_worlds: int = 0
    encoding: EncodingStats | None = None
    solver: SolverStats | None = None
    #: whether the most recent call was answered by a solver kept alive from
    #: a previous call (the incremental session); ``None`` for the one-shot
    #: :class:`SATWorldSearch`, which builds a fresh solver per search.
    reused_solver: bool | None = None


class SATWorldSearch:
    """SAT-backed enumeration of ``Mod_Adom(T, D_m, V)``.

    Parameters mirror :class:`repro.search.engine.WorldSearch`: the
    decision-procedure input plus an optional prebuilt
    :class:`ConstraintChecker` whose precomputed right-hand sides the encoder
    reuses.  The CNF encoding is built eagerly (its cost corresponds to the
    constraint pre-evaluation of the other engines); the solver is created
    lazily per search.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        *,
        checker: ConstraintChecker | None = None,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        self._cinstance = cinstance
        self._adom = adom
        self._encoding: WorldEncoding = encode_world_search(
            cinstance, master, constraints, adom, checker=checker
        )
        self.stats = SATSearchStats(encoding=self._encoding.stats)

    @property
    def encoding(self) -> WorldEncoding:
        """The CNF encoding backing the search."""
        return self._encoding

    def _solver(self) -> DPLLSolver:
        solver = DPLLSolver(self._encoding.clauses)
        self.stats.solver = solver.stats
        return solver

    # ------------------------------------------------------------------
    # front-ends (API parity with WorldSearch)
    # ------------------------------------------------------------------
    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs with ``(µ(T), D_m) |= V``.

        Every satisfying Adom valuation is yielded exactly once (see
        :func:`repro.search.cnf_encoding.iter_solver_models`, the shared
        blocking-clause enumeration loop).
        """
        if self._encoding.trivially_unsat:
            return
        for valuation in iter_solver_models(self._encoding, self._solver()):
            self.stats.worlds += 1
            yield valuation, self._cinstance.apply(valuation)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether ``Mod_Adom(T, D_m, V)`` is non-empty (single SAT call)."""
        if self._encoding.trivially_unsat:
            return False
        return self._solver().solve() is not None

    def count_worlds(self) -> int:
        """The number of distinct worlds, counted natively.

        Runs the blocking-clause valuation enumeration but never builds a
        :class:`~repro.relational.instance.GroundInstance`: each valuation is
        reduced directly to the canonical world form of
        :func:`repro.search.engine.world_key` (the per-relation ground row
        sets) and counting is over the set of canonical forms.  This is the
        ``counts_natively`` capability the engine registry advertises.
        """
        if self._encoding.trivially_unsat:
            return 0
        names = list(self._cinstance.schema.relation_names)
        rows = [(name, row) for name, _index, row in self._cinstance.rows()]
        seen: set[tuple[frozenset[Row], ...]] = set()
        for valuation in iter_solver_models(self._encoding, self._solver()):
            self.stats.worlds += 1
            facts: dict[str, set[Row]] = {name: set() for name in names}
            for name, row in rows:
                ground = row.apply(valuation)
                if ground is not None:
                    facts[name].add(ground)
            key = tuple(frozenset(facts[name]) for name in names)
            if key in seen:
                self.stats.duplicate_worlds += 1
            else:
                seen.add(key)
        return len(seen)


class IncrementalSATSession:
    """A SAT search that outlives a stream of ground-tuple updates.

    Owned by the :class:`repro.api.Database` facade (one per facade when the
    effective engine supports it): instead of re-encoding and re-solving from
    scratch after every :meth:`~repro.api.Database.update`, the session keeps

    * an :class:`~repro.search.cnf_encoding.IncrementalEncoder`, whose clause
      set only ever grows (guards express drops through assumptions), and
    * one **live DPLL solver** fed the new clauses before each existence
      check and solved under the current guard assumptions, so learned
      clauses, activities and saved phases accumulate across the whole
      update stream (``reused_solver`` in the stats reports the reuse).

    Existence checks are the only consumers of the live solver: model
    *enumeration* adds blocking clauses, which are valuation-specific and
    would poison a solver that must stay sound for later calls, so
    :meth:`search` / :meth:`count_worlds` spin up a throwaway solver over the
    live clause list plus the current assumptions as unit clauses (still
    skipping the re-encode, which dominates).

    The session only absorbs updates that keep the encoding's fixed parts
    fixed: ground-tuple adds/drops under an unchanged active domain,
    variable set and finite-domain restriction map.  The facade checks those
    triggers (:meth:`compatible`) and rebuilds the session otherwise.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain,
        *,
        checker: ConstraintChecker | None = None,
    ) -> None:
        self._cinstance = cinstance
        self._adom = adom
        self._variables = frozenset(cinstance.variables())
        self._variable_domains = dict(cinstance.variable_domains())
        self._encoder = IncrementalEncoder(
            cinstance, master, constraints, adom, checker=checker
        )
        self._solver = DPLLSolver()
        self._fed = 0
        self.stats = SATSearchStats(
            encoding=self._encoder.encoding.stats, solver=self._solver.stats
        )

    @property
    def cinstance(self) -> CInstance:
        """The c-instance the session currently encodes."""
        return self._cinstance

    @property
    def encoding(self) -> WorldEncoding:
        """The (growing) CNF encoding behind the session."""
        return self._encoder.encoding

    # ------------------------------------------------------------------
    # update stream
    # ------------------------------------------------------------------
    def compatible(self, cinstance: CInstance, adom: ActiveDomain) -> bool:
        """Whether an updated instance can be absorbed without a rebuild.

        True when the variable set, the finite-domain restriction map and the
        active domain — everything the selector pools and the variable-row
        groundings were built from — are unchanged, so the instances can only
        differ in their fully ground rows.
        """
        return (
            adom == self._adom
            and frozenset(cinstance.variables()) == self._variables
            and dict(cinstance.variable_domains()) == self._variable_domains
        )

    def apply(
        self,
        cinstance: CInstance,
        added: Iterable[tuple[str, Row]],
        dropped: Iterable[tuple[str, Row]],
    ) -> None:
        """Absorb one update: tuple-level ground diffs against the old state.

        ``added``/``dropped`` are the ground tuples that became present /
        absent (the facade computes the set-level diff; duplicate rows of one
        tuple collapse).  The caller must have checked :meth:`compatible`.
        """
        for relation, ground in dropped:
            self._encoder.drop_ground(relation, ground)
        for relation, ground in added:
            self._encoder.add_ground(relation, ground)
        self._cinstance = cinstance

    # ------------------------------------------------------------------
    # decision surfaces (API parity with SATWorldSearch where it matters)
    # ------------------------------------------------------------------
    def _feed_live_solver(self) -> None:
        clauses = self._encoder.encoding.clauses
        while self._fed < len(clauses):
            self._solver.add_clause(clauses[self._fed])
            self._fed += 1

    def has_world(self) -> bool:
        """Existence via the live solver, under the current guard assumptions."""
        reused = self._solver.stats.solve_calls > 0
        self.stats.reused_solver = reused
        if self._encoder.encoding.trivially_unsat:
            return False
        self._feed_live_solver()
        return self._solver.solve(self._encoder.assumptions()) is not None

    def _throwaway_solver(self) -> DPLLSolver:
        """A fresh solver over the live clauses + assumptions as units.

        Enumeration must not touch the live solver: its blocking clauses are
        sound only for the instance state they were generated under.
        """
        solver = DPLLSolver(self._encoder.encoding.clauses)
        for literal in self._encoder.assumptions():
            solver.add_clause((literal,))
        return solver

    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` for the *current* instance state."""
        self.stats.reused_solver = False
        encoding = self._encoder.encoding
        if encoding.trivially_unsat:
            return
        cinstance = self._cinstance
        for valuation in iter_solver_models(encoding, self._throwaway_solver()):
            self.stats.worlds += 1
            yield valuation, cinstance.apply(valuation)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def count_worlds(self) -> int:
        """Count distinct worlds natively (canonical forms, no instances)."""
        self.stats.reused_solver = False
        encoding = self._encoder.encoding
        if encoding.trivially_unsat:
            return 0
        names = list(self._cinstance.schema.relation_names)
        rows = [(name, row) for name, _index, row in self._cinstance.rows()]
        seen: set[tuple[frozenset[Row], ...]] = set()
        for valuation in iter_solver_models(encoding, self._throwaway_solver()):
            self.stats.worlds += 1
            facts: dict[str, set[Row]] = {name: set() for name in names}
            for name, row in rows:
                ground = row.apply(valuation)
                if ground is not None:
                    facts[name].add(ground)
            key = tuple(frozenset(facts[name]) for name in names)
            if key in seen:
                self.stats.duplicate_worlds += 1
            else:
                seen.add(key)
        return len(seen)
