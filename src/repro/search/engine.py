"""The constraint-propagating world-search engine.

The naive enumeration of ``Mod_Adom(T, D_m, V)`` materialises the full
cross-product of variable pools (``itertools.product``) and checks the
containment constraints only on complete worlds — exponential work even when
a single tuple already violates a CC.  :class:`WorldSearch` replaces it with
a backtracking search that exploits the structure of the paper's Adom
restriction (Proposition 3.3, Lemmas 4.2/5.2):

* variables are assigned one at a time, ordered for early failure and early
  row completion (:mod:`repro.search.ordering`);
* whenever a c-table row becomes fully grounded, its tuple is *pushed* into
  an incremental checker session (:mod:`repro.search.propagation`) that
  delta-evaluates only the constraint answers the new tuple can produce — a
  violated branch is pruned without ever materialising its exponentially
  many completions, and without re-running any constraint's full CQ;
* for pure existence checks (:meth:`WorldSearch.has_world`), the fresh
  ``New`` values of the active domain are interchangeable, so the search
  explores only one representative per permutation class of fresh values
  (``break_symmetry=True``); and
* world enumeration deduplicates via a cheap canonical form
  (:func:`world_key`) instead of hashing full :class:`GroundInstance`
  objects.

The engine enumerates exactly the valuations the naive path accepts (pruning
is sound and complete for satisfying valuations), so
:mod:`repro.ctables.possible_worlds` can route through it transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
)
from repro.ctables.adom import ActiveDomain, variable_pools
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTableRow
from repro.ctables.valuation import Valuation
from repro.exceptions import SearchCancelledError, SearchError
from repro.queries.terms import Variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.ordering import order_variables
from repro.search.propagation import CheckerSession, ConstraintChecker

#: How many search nodes may elapse between two ``stop_check`` polls.
STOP_CHECK_STRIDE = 64

#: How many search nodes may elapse between two adaptive pool re-rankings.
ADAPTIVE_RERANK_STRIDE = 32

#: The pool-order hints :class:`WorldSearch` understands.
POOL_ORDERS = ("fresh_first",)


@dataclass
class SearchStats:
    """Counters describing one search run (reset per :class:`WorldSearch`)."""

    nodes: int = 0
    pruned: int = 0
    worlds: int = 0
    duplicate_worlds: int = 0
    symmetry_skips: int = 0
    #: whether the run's delta checker joined through hash indexes
    #: (:mod:`repro.relational.indexing`) rather than linear scans.
    uses_indexes: bool = False


#: The canonical world form produced by :func:`world_key`: the relations'
#: row sets in schema order.
WorldKey = tuple[frozenset[Row], ...]


def world_key(world: GroundInstance) -> WorldKey:
    """A canonical form for world deduplication.

    Two worlds over the same schema are equal iff their keys are equal; the
    key hashes only the tuple sets (in schema order), not the schema itself,
    which makes it cheaper than hashing :class:`GroundInstance` objects in a
    ``seen`` set.
    """
    return tuple(
        world.relation(name).rows for name in world.schema.relation_names
    )


class WorldSearch:
    """Backtracking enumeration of ``Mod_Adom(T, D_m, V)`` with propagation.

    Parameters
    ----------
    cinstance, master, constraints, adom:
        The decision-procedure input; ``adom`` defaults to the
        :func:`~repro.ctables.possible_worlds.default_active_domain` of the
        other three.
    break_symmetry:
        Restrict the search to one representative per permutation class of
        interchangeable fresh Adom values.  Sound for existence checks only:
        it preserves whether *some* satisfying valuation exists, not the full
        world set, so enumerating callers must leave it off.
    checker:
        A prebuilt :class:`ConstraintChecker` for ``(master, constraints)``.
        Callers that run many searches against the same master data pass one
        to avoid re-evaluating the constraint right-hand sides per search.
    order:
        A forced variable-assignment order (must cover exactly the variables
        of the c-instance).  The parallel engine pins the serial order here so
        every shard enumerates its subtree in the same sequence the serial
        search would, making the merged output order-identical to serial.
    pool_overrides:
        Per-variable replacement candidate pools, intersected with the
        variable's Adom pool.  The parallel engine restricts the shard
        variables to a single value each; the subtree under that prefix is
        then exactly the corresponding branch of the serial search.
    stop_check:
        A zero-argument callable polled every :data:`STOP_CHECK_STRIDE` search
        nodes; returning ``True`` aborts the search by raising
        :class:`~repro.exceptions.SearchCancelledError`.  Used for
        cross-process cancellation of existence checks.
    pool_order:
        A value-order hint applied (stably) to every candidate pool.  The
        only hint currently defined is ``"fresh_first"``: try the fresh
        ``New`` values of the active domain before the constants, which
        front-loads the candidates most likely to create genuinely new
        tuples — the order the single-tuple-extension sweeps want.
        Reordering pools never changes the *set* of worlds, only the
        sequence they are found in, so callers that promise order-identical
        enumeration must leave this off.
    adaptive:
        Re-rank every candidate pool by observed per-value prune rate
        (ascending, stable) each :data:`ADAPTIVE_RERANK_STRIDE` nodes, so
        values that keep surviving propagation are tried first.  Like
        ``pool_order`` this permutes enumeration order only; it is meant for
        existence checks (:meth:`has_world`), where finding any world
        sooner ends the search.  Deterministic: the ranking depends only on
        the search's own history, never on ambient state.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        *,
        break_symmetry: bool = False,
        checker: ConstraintChecker | None = None,
        order: Sequence[Variable] | None = None,
        pool_overrides: Mapping[Variable, Sequence[Constant]] | None = None,
        stop_check: Callable[[], bool] | None = None,
        pool_order: str | None = None,
        adaptive: bool = False,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        self._cinstance = cinstance
        self._schema = cinstance.schema
        self._adom = adom
        self._checker = checker or ConstraintChecker(master, constraints)
        self._stop_check = stop_check
        self._adaptive = bool(adaptive)
        #: (variable, value) → [times tried, times pruned]; feeds the
        #: adaptive re-ranking, deliberately per-search (no cross-run state).
        self._prune_counts: dict[tuple[Variable, Constant], list[int]] = {}
        self.stats = SearchStats(uses_indexes=self._checker.uses_indexes)

        restrictions = cinstance.variable_domains()
        self._pools = variable_pools(cinstance.variables(), adom, restrictions)
        if pool_overrides:
            for variable, values in pool_overrides.items():
                if variable not in self._pools:
                    raise SearchError(
                        f"pool override for {variable!r}, which is not a "
                        "variable of the c-instance"
                    )
                allowed = set(self._pools[variable])
                self._pools[variable] = [v for v in values if v in allowed]
        if pool_order is not None:
            if pool_order not in POOL_ORDERS:
                raise SearchError(
                    f"pool_order must be one of {POOL_ORDERS}, got {pool_order!r}"
                )
            fresh = set(adom.fresh_values)
            for pool in self._pools.values():
                # Stable: fresh values first, both groups keeping their
                # existing relative order.
                pool.sort(key=lambda value: value not in fresh)
        rows = [(name, row) for name, _index, row in cinstance.rows()]
        if order is not None:
            if set(order) != set(self._pools) or len(order) != len(self._pools):
                raise SearchError(
                    "forced variable order must cover exactly the variables "
                    "of the c-instance"
                )
            self._order = list(order)
        else:
            self._order = order_variables(
                self._pools, [row.variables() for _name, row in rows]
            )
        position = {variable: i for i, variable in enumerate(self._order)}
        # completions[0] holds the rows that are ground from the start;
        # completions[d + 1] the rows whose last variable is order[d].
        self._completions: list[list[tuple[str, CTableRow]]] = [
            [] for _ in range(len(self._order) + 1)
        ]
        for name, row in rows:
            row_variables = row.variables()
            level = (
                1 + max(position[v] for v in row_variables) if row_variables else 0
            )
            self._completions[level].append((name, row))

        self._fresh_rank: dict[Constant, int] = {}
        if break_symmetry:
            self._fresh_rank = self._interchangeable_fresh_ranks(master, constraints)

    @property
    def order(self) -> list[Variable]:
        """The variable-assignment order the search uses (deterministic)."""
        return list(self._order)

    @property
    def pools(self) -> dict[Variable, list[Constant]]:
        """The per-variable candidate pools (after any overrides)."""
        return {variable: list(pool) for variable, pool in self._pools.items()}

    # ------------------------------------------------------------------
    # symmetry
    # ------------------------------------------------------------------
    def _interchangeable_fresh_ranks(
        self,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
    ) -> dict[Constant, int]:
        """Rank the fresh Adom values that nothing in the input distinguishes.

        A fresh value is interchangeable when it occurs in no c-table term or
        condition, no master tuple, no constraint and no finite attribute
        domain — then any permutation of such values maps satisfying
        valuations to satisfying valuations, and it suffices to explore
        assignments whose fresh values are first used in rank order.
        """
        mentioned: set[Constant] = set(self._cinstance.constants())
        mentioned |= set(master.constants())
        mentioned |= set(constraint_set_constants(constraints))
        mentioned |= set(self._adom.finite_domain_values)
        ranks: dict[Constant, int] = {}
        for value in self._adom.fresh_values:
            if value not in mentioned:
                ranks[value] = len(ranks)
        return ranks

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs with ``(µ(T), D_m) |= V``."""
        session = self._checker.session(self._schema.relation_names)
        if not self._push_level(session, 0, {}):
            # The tuples fixed by the ground rows already violate a CC; by
            # monotonicity no valuation can repair that.
            self.stats.pruned += 1
            return
        yield from self._descend(0, {}, session, 0)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def _push_level(
        self,
        session: CheckerSession,
        level: int,
        valuation: Valuation,
    ) -> bool:
        """Push the rows completed at ``level``; ``False`` on a violation.

        The caller unwinds via :meth:`CheckerSession.pop_to` against a mark
        taken before the call, so a partially applied level needs no special
        handling — pops are symmetric with pushes either way.
        """
        for name, row in self._completions[level]:
            ground = row.apply(valuation)
            if ground is None:
                continue
            # reprolint: disable=R002 -- pops are the caller's contract: every
            # caller unwinds via pop_to against a mark taken before this call.
            if not session.push(name, ground):
                return False
        # A level may complete without a single push (no rows ground here),
        # in which case the session's standing verdict decides: at the root
        # this is where an atom-free constraint's base violation surfaces.
        return session.is_satisfied

    def _descend(
        self,
        depth: int,
        valuation: Valuation,
        session: CheckerSession,
        used_fresh: int,
    ) -> Iterator[tuple[Valuation, GroundInstance]]:
        if depth == len(self._order):
            world = GroundInstance(
                self._schema,
                {name: tuple(rows) for name, rows in session.facts.items()},
            )
            self.stats.worlds += 1
            yield dict(valuation), world
            return
        variable = self._order[depth]
        pool = self._pools[variable]
        if self._adaptive:
            # Snapshot: a re-ranking triggered deeper in the subtree mutates
            # self._pools[variable] while this frame is still iterating it.
            pool = list(pool)
        for value in pool:
            rank = self._fresh_rank.get(value)
            if rank is None:
                next_used = used_fresh
            elif rank > used_fresh:
                # A later fresh value would start a branch that is a mere
                # renaming of one rooted at fresh value #used_fresh.
                self.stats.symmetry_skips += 1
                continue
            else:
                next_used = used_fresh + (1 if rank == used_fresh else 0)
            self.stats.nodes += 1
            if (
                self._stop_check is not None
                and self.stats.nodes % STOP_CHECK_STRIDE == 0
                and self._stop_check()
            ):
                raise SearchCancelledError("world search cancelled by stop_check")
            counters: list[int] | None = None
            if self._adaptive:
                counters = self._prune_counts.setdefault((variable, value), [0, 0])
                counters[0] += 1
                if self.stats.nodes % ADAPTIVE_RERANK_STRIDE == 0:
                    self._rerank_pools()
            valuation[variable] = value
            mark = session.mark()
            try:
                if self._push_level(session, depth + 1, valuation):
                    yield from self._descend(depth + 1, valuation, session, next_used)
                else:
                    self.stats.pruned += 1
                    if counters is not None:
                        counters[1] += 1
            finally:
                # Unwind even when SearchCancelledError (stop_check) or
                # GeneratorExit (an abandoned enumeration) escapes mid-branch,
                # so the session stays balanced for reuse after an abort.
                session.pop_to(mark)
                del valuation[variable]

    # ------------------------------------------------------------------
    # adaptive pool re-ranking
    # ------------------------------------------------------------------
    def _rerank_pools(self) -> None:
        """Stably re-sort every pool by observed prune rate (ascending).

        Values that have survived propagation most often move to the front;
        never-tried values keep rate 0.0 and their relative order (the sort
        is stable), so the ranking is a deterministic function of the
        search's own history.
        """
        counts = self._prune_counts
        for variable, pool in self._pools.items():
            pool.sort(key=lambda value: _prune_rate(counts.get((variable, value))))

    # ------------------------------------------------------------------
    # front-ends
    # ------------------------------------------------------------------
    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds, suppressing duplicates by canonical form."""
        seen: set[tuple[frozenset[Row], ...]] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether ``Mod_Adom(T, D_m, V)`` is non-empty."""
        for _ in self.search():
            return True
        return False

    def count_worlds(self) -> int:
        """The number of distinct worlds."""
        return sum(1 for _ in self.worlds(deduplicate=True))


def _prune_rate(counters: Sequence[int] | None) -> float:
    """Observed prune rate of one (variable, value) pair (0.0 if untried)."""
    if not counters or not counters[0]:
        return 0.0
    return counters[1] / counters[0]
