"""The pluggable world-search engine registry.

Before this module existed, every engine was wired in by hand: adding one
meant growing string ``if/elif`` chains in
:mod:`repro.ctables.possible_worlds` *and* in the RCQP witness search, plus
per-call-site ``workers=`` threading.  The registry replaces those chains
with a single object model, in the spirit of object registries in
long-running server codebases: an engine is a **name**, a **factory** and a
set of declared **capabilities**, and everything downstream (the
:mod:`possible_worlds <repro.ctables.possible_worlds>` front-ends, the
deciders, the :class:`repro.api.Database` facade) resolves engines through
:func:`get_engine` alone.

Third-party or experimental engines become drop-ins::

    from repro.search.registry import EngineCapabilities, register_engine

    register_engine(
        "my-engine",
        lambda cinstance, master, constraints, adom, *, workers, checker,
               break_symmetry, **options: MySearch(...),
        capabilities=EngineCapabilities(counts_natively=True),
    )

after which ``engine="my-engine"`` works everywhere an engine keyword is
accepted — no core module is touched.

Capability flags let callers pick fast paths without knowing engine
internals: ``counts_natively`` routes ``model_count`` to the engine's own
counting (SAT blocking-clause enumeration, parallel shard-count merging),
``symmetry_breaking`` tells existence checks to request the fresh-value
symmetry reduction, ``order_identical`` marks engines whose enumeration
order matches the serial propagating engine, and ``supports_cancellation``
marks engines that can abandon work early once an answer is known.

The module also hosts two *ambient* channels that avoid parameter
threading through the decision procedures:

* :func:`collect_searches` — every engine object created through the
  registry inside the ``with`` block is appended to the caller's sink, which
  is how :class:`repro.decision.DecisionRecorder` attributes search nodes /
  CNF clauses to the :class:`~repro.decision.Decision` it builds;
* :func:`use_checker` — a prebuilt
  :class:`~repro.search.propagation.ConstraintChecker` handed to every
  checker-accepting engine created inside the block, which is how the
  :class:`repro.api.Database` facade shares one checker across calls.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.exceptions import SearchError
from repro.relational.master import MasterData
from repro.protocols import SearchSink, WorldSearchEngine
from repro.search.engine import WorldSearch
from repro.search.naive import NaiveWorldSearch
from repro.search.parallel import ParallelWorldSearch
from repro.search.propagation import ConstraintChecker
from repro.search.sat_engine import SATWorldSearch

#: Engine used when callers do not request one explicitly.
DEFAULT_ENGINE = "propagating"

#: The object shape every registered engine factory must produce.  Kept as
#: an alias of :class:`repro.protocols.WorldSearchEngine`, where the
#: protocol now lives alongside the other structural contracts.
WorldSearchLike = WorldSearchEngine


#: ``factory(cinstance, master, constraints, adom, *, workers, checker,
#: break_symmetry, **options) -> WorldSearchLike``.  Factories are free to
#: ignore hints that do not apply to them (the SAT factory ignores
#: ``workers``); unknown ``options`` keys should raise.
EngineFactory = Callable[..., WorldSearchLike]


@dataclass(frozen=True)
class EngineCapabilities:
    """Declared properties of an engine, consulted for fast paths.

    Attributes
    ----------
    counts_natively:
        ``count_worlds()`` is cheaper than draining ``worlds()`` — e.g. the
        SAT engine counts over blocking-clause enumeration without
        materialising :class:`~repro.relational.instance.GroundInstance`
        objects, and the parallel engine merges per-shard world-key sets.
        ``model_count`` routes through the native path when set.
    order_identical:
        ``worlds()`` enumerates in exactly the serial propagating engine's
        order (the parallel engine's merge guarantee).
    supports_workers:
        The factory honours the ``workers`` hint.
    supports_cancellation:
        Existence checks can abandon in-flight work once an answer is known.
    symmetry_breaking:
        The factory honours ``break_symmetry=True`` for existence checks.
    accepts_checker:
        The factory reuses a prebuilt
        :class:`~repro.search.propagation.ConstraintChecker`.
    uses_indexes:
        The engine's delta checker joins over the hash indexes of
        :class:`~repro.relational.indexing.IndexedFactStore` (reported per
        run as ``uses_indexes`` in :class:`~repro.decision.DecisionStats`).
    pool_order_hints:
        The factory honours the ``pool_order`` option (e.g.
        ``"fresh_first"``) for value-order hints on the candidate pools.
    supports_incremental:
        The engine can re-decide after an in-place
        :meth:`repro.api.Database.update` without rebuilding its search
        state (the SAT engine keeps its encoding and live solver across
        updates via assumption-guarded tuple-presence literals).
    """

    counts_natively: bool = False
    order_identical: bool = False
    supports_workers: bool = False
    supports_cancellation: bool = False
    symmetry_breaking: bool = False
    accepts_checker: bool = True
    uses_indexes: bool = False
    pool_order_hints: bool = False
    supports_incremental: bool = False


@dataclass(frozen=True)
class EngineSpec:
    """A registered engine: name + factory + capabilities."""

    name: str
    factory: EngineFactory
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)

    def create(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None,
        *,
        workers: int | None = None,
        checker: ConstraintChecker | None = None,
        break_symmetry: bool = False,
        options: Mapping[str, Any] | None = None,
    ) -> WorldSearchLike:
        """Instantiate the engine, honouring ambient checker/stat channels."""
        if checker is None and self.capabilities.accepts_checker:
            checker = ambient_checker()
        search = self.factory(
            cinstance,
            master,
            constraints,
            adom,
            workers=workers,
            checker=checker,
            break_symmetry=break_symmetry,
            **dict(options or {}),
        )
        record_search(search)
        return search


# ---------------------------------------------------------------------------
# the registry proper
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    factory: EngineFactory,
    capabilities: EngineCapabilities | None = None,
    *,
    replace: bool = False,
) -> EngineSpec:
    """Register a world-search engine under ``name``.

    The engine becomes selectable everywhere an ``engine=`` keyword (or an
    :class:`EngineConfig`) is accepted.  Re-registering an existing name
    raises unless ``replace=True`` is passed.
    """
    if not name or not isinstance(name, str):
        raise SearchError(f"engine name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise SearchError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    spec = EngineSpec(
        name=name,
        factory=factory,
        capabilities=capabilities or EngineCapabilities(),
    )
    _REGISTRY[name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove a registered engine (built-in engines can be removed too)."""
    if name not in _REGISTRY:
        raise SearchError(f"engine {name!r} is not registered")
    del _REGISTRY[name]


def get_engine(name: str) -> EngineSpec:
    """Look up a registered engine by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise SearchError(
            f"unknown world-search engine {name!r}; registered engines: "
            f"{tuple(sorted(_REGISTRY))}"
        )
    return spec


def engine_names() -> tuple[str, ...]:
    """The registered engine names, in registration order."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# engine configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """A resolved-at-call-time engine selection.

    ``name=None`` means the registry default (:data:`DEFAULT_ENGINE`);
    ``workers`` sizes worker pools for engines that support them;
    ``options`` are passed through to the engine factory verbatim (e.g.
    ``{"shard_order": "reversed"}`` for the parallel engine).

    Every ``engine=`` keyword in the library accepts a plain name string, an
    :class:`EngineConfig`, or ``None`` — :meth:`coerce` normalises all
    three.
    """

    name: str | None = None
    workers: int | None = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))

    def __hash__(self) -> int:
        return hash((self.name, self.workers, tuple(sorted(self.options))))

    @classmethod
    def coerce(cls, value: "EngineConfig | str | None") -> "EngineConfig":
        """Normalise ``None`` / engine-name / config into an :class:`EngineConfig`."""
        if value is None:
            return cls()
        if isinstance(value, EngineConfig):
            return value
        if isinstance(value, str):
            return cls(name=value)
        raise SearchError(
            f"engine must be a name, an EngineConfig or None, got {value!r}"
        )

    def spec(self) -> EngineSpec:
        """The registered engine this config selects (validating the name)."""
        return get_engine(self.name or DEFAULT_ENGINE)


def resolve_engine_name(engine: "EngineConfig | str | None") -> str:
    """Normalise an engine selection to a validated registered name."""
    return EngineConfig.coerce(engine).spec().name


# ---------------------------------------------------------------------------
# ambient channels (no parameter threading through the deciders)
# ---------------------------------------------------------------------------
# Both channels are context variables holding immutable tuples: each thread
# (and each asyncio task) sees its own stack, and the token-based reset
# restores the exact previous state even if context managers are exited out
# of the ideal LIFO order (e.g. a close()d generator).
_SEARCH_SINKS: ContextVar[tuple[SearchSink, ...]] = ContextVar(
    "repro_search_sinks", default=()
)
_AMBIENT_CHECKERS: ContextVar[tuple[ConstraintChecker, ...]] = ContextVar(
    "repro_ambient_checkers", default=()
)


def record_search(search: WorldSearchLike) -> None:
    """Report an engine instantiation to every active collector."""
    for sink in _SEARCH_SINKS.get():
        sink.append(search)


@contextmanager
def collect_searches(sink: list[WorldSearchEngine]) -> Iterator[list[WorldSearchEngine]]:
    """Collect every engine object created through the registry in ``sink``."""
    token = _SEARCH_SINKS.set(_SEARCH_SINKS.get() + (sink,))
    try:
        yield sink
    finally:
        _SEARCH_SINKS.reset(token)


def ambient_checker() -> ConstraintChecker | None:
    """The innermost checker installed by :func:`use_checker`, if any."""
    checkers = _AMBIENT_CHECKERS.get()
    return checkers[-1] if checkers else None


@contextmanager
def use_checker(checker: ConstraintChecker) -> Iterator[ConstraintChecker]:
    """Hand a prebuilt constraint checker to every engine created inside.

    The checker depends only on ``(master, constraints)``, so a caller that
    runs many searches against the same pair (the :class:`repro.api.Database`
    facade, the RCQP composition sweep) installs it once instead of paying
    the right-hand-side CQ evaluation per search.

    Hold the context only around *synchronous* work: a generator that
    suspends inside the ``with`` block would leave the checker installed for
    unrelated callers until it resumes.  Code that hands out generators
    passes the checker explicitly (the ``checker=`` parameter of the
    :mod:`repro.ctables.possible_worlds` front-ends) instead.
    """
    token = _AMBIENT_CHECKERS.set(_AMBIENT_CHECKERS.get() + (checker,))
    try:
        yield checker
    finally:
        _AMBIENT_CHECKERS.reset(token)


# ---------------------------------------------------------------------------
# built-in engines
# ---------------------------------------------------------------------------
def _propagating_factory(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None,
    *,
    workers: int | None,
    checker: ConstraintChecker | None,
    break_symmetry: bool,
    **options: Any,
) -> WorldSearchEngine:
    del workers  # serial engine
    return WorldSearch(
        cinstance,
        master,
        constraints,
        adom,
        break_symmetry=break_symmetry,
        checker=checker,
        **options,
    )


def _sat_factory(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None,
    *,
    workers: int | None,
    checker: ConstraintChecker | None,
    break_symmetry: bool,
    **options: Any,
) -> WorldSearchEngine:
    del workers, break_symmetry  # one SAT call decides existence anyway
    return SATWorldSearch(cinstance, master, constraints, adom, checker=checker, **options)


def _parallel_factory(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None,
    *,
    workers: int | None,
    checker: ConstraintChecker | None,
    break_symmetry: bool,
    **options: Any,
) -> WorldSearchEngine:
    del break_symmetry  # applied internally, per front-end
    return ParallelWorldSearch(
        cinstance, master, constraints, adom, workers=workers, checker=checker, **options
    )


def _naive_factory(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None,
    *,
    workers: int | None,
    checker: ConstraintChecker | None,
    break_symmetry: bool,
    **options: Any,
) -> WorldSearchEngine:
    del workers, checker, break_symmetry  # the reference path optimises nothing
    return NaiveWorldSearch(cinstance, master, constraints, adom, **options)


register_engine(
    "propagating",
    _propagating_factory,
    EngineCapabilities(
        supports_cancellation=True,
        symmetry_breaking=True,
        order_identical=True,
        uses_indexes=True,
        pool_order_hints=True,
    ),
)
register_engine(
    "sat",
    _sat_factory,
    EngineCapabilities(counts_natively=True, supports_incremental=True),
)
register_engine(
    "parallel",
    _parallel_factory,
    EngineCapabilities(
        counts_natively=True,
        order_identical=True,
        supports_workers=True,
        supports_cancellation=True,
        uses_indexes=True,
    ),
)
register_engine(
    "naive",
    _naive_factory,
    EngineCapabilities(accepts_checker=False),
)
