"""The process-parallel sharded world-search engine (``engine="parallel"``).

The strong/weak/viable deciders must visit *every* world of
``Mod_Adom(T, D_m, V)`` — an embarrassingly parallel tree walk.  The subtrees
below the first assigned variable are independent: fixing that variable to
one of its pool values yields a branch no other value's branch shares.
:class:`ParallelWorldSearch` exploits this by

* computing the serial engine's variable order and candidate pools once,
* sharding the tree by the first ordered variable's pool values (falling back
  to the *pair* of the first two variables when the first pool alone is too
  small to keep every worker busy),
* farming shard chunks to a persistent ``ProcessPoolExecutor`` whose workers
  run the existing propagating search (:class:`repro.search.engine.WorldSearch`)
  with the shard prefix pinned via ``pool_overrides`` and the serial variable
  order forced via ``order``, and
* merging results in shard order, so the merged enumeration is
  **order-identical to the serial propagating engine** (the canonical-form
  deduplication of :func:`repro.search.engine.world_key` is applied on the
  merged stream exactly as the serial engine applies it on its own stream).

Existence checks (:meth:`ParallelWorldSearch.has_world`) additionally use a
fork-inherited cancellation event: the first shard to find a model sets the
event, and every other worker polls it every
:data:`repro.search.engine.STOP_CHECK_STRIDE` nodes through the serial
engine's ``stop_check`` hook, so an expensive shard cannot delay the answer.

Process pools only pay off when there is enough work to amortise fork and
pickling overhead; searches whose valuation space is smaller than
``min_parallel_valuations`` (and hosts without the ``fork`` start method, and
``workers=1`` runs) silently take the serial propagating path instead.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.sharedctypes import Synchronized

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation
from repro.exceptions import SearchCancelledError, SearchError
from repro.queries.terms import Variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.search.engine import WorldKey, WorldSearch, world_key
from repro.search.propagation import ConstraintChecker

#: Valuation-space size below which the serial engine is used directly
#: (fork + pickling overhead dominates tiny searches).
SERIAL_FALLBACK_VALUATIONS = 2048

#: Each worker receives about this many shard chunks, so an unlucky expensive
#: chunk can be balanced by idle workers stealing the remaining ones.
CHUNKS_PER_WORKER = 2

#: A shard variable pool must offer at least this many shards per worker
#: before the second ordered variable is pulled into the shard prefix.
MIN_SHARDS_PER_WORKER = 2


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob; ``None`` means "one per available CPU"."""
    if workers is None:
        try:
            resolved = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux hosts
            resolved = os.cpu_count() or 1
        return max(1, resolved)
    if workers < 1:
        raise SearchError(f"workers must be >= 1, got {workers!r}")
    return workers


# ---------------------------------------------------------------------------
# persistent worker pools
# ---------------------------------------------------------------------------
@dataclass
class _PoolHandle:
    executor: ProcessPoolExecutor
    # Fork-inherited shared slot holding the *generation number* of the most
    # recently cancelled existence run.  Each has_world() run draws a fresh
    # generation; its workers abort only when the slot equals *their* run's
    # generation, so concurrent runs sharing one pool can never cancel each
    # other into an unsound "no model" verdict (a cancel overwritten by
    # another run's cancel merely costs the loser its early exit).
    cancel_generation: "Synchronized[int]"  # multiprocessing.Value("Q")
    next_generation: int = 0


_POOLS: dict[int, _PoolHandle] = {}

# Set in each worker process by :func:`_worker_init`.
_WORKER_CANCEL_GENERATION: "Synchronized[int] | None" = None


def _worker_init(cancel_generation: "Synchronized[int]") -> None:
    global _WORKER_CANCEL_GENERATION
    _WORKER_CANCEL_GENERATION = cancel_generation


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _pool_for(workers: int) -> _PoolHandle:
    handle = _POOLS.get(workers)
    if handle is None:
        context = multiprocessing.get_context("fork")
        cancel_generation = context.Value("Q", 0)
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(cancel_generation,),
        )
        handle = _PoolHandle(executor=executor, cancel_generation=cancel_generation)
        _POOLS[workers] = handle
    return handle


def _discard_pool(workers: int) -> None:
    handle = _POOLS.pop(workers, None)
    if handle is not None:
        # wait=True joins the workers and the executor's management thread;
        # tearing down without waiting races the interpreter's own
        # concurrent.futures atexit hook on the already-closed pipes.
        handle.executor.shutdown(wait=True, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent worker pool (idempotent; used at exit)."""
    for workers in list(_POOLS):
        _discard_pool(workers)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# worker-side shard execution
# ---------------------------------------------------------------------------
#: ``(cinstance, master, constraints, adom, order, break_symmetry,
#: checker_mode, checker_indexed)``.
_Payload = tuple[
    CInstance,
    MasterData,
    list[ContainmentConstraint],
    ActiveDomain,
    list[Variable],
    bool,
    str,
    bool,
]

#: One shard prefix: the pinned values of the shard variables.
_Prefix = dict[Variable, Constant]

# One-slot per-worker checker cache.  A run farms many shard chunks to each
# worker, and every chunk used to rebuild the ConstraintChecker — paying the
# right-hand-side CQ evaluation per shard.  Constraint contexts are value
# objects (MasterData and ContainmentConstraint define structural equality),
# so the worker keeps the checker of the last-seen ``(master, constraints)``
# pair and reuses it whenever the next chunk carries an equal pair.
_CheckerKey = tuple[MasterData, tuple[ContainmentConstraint, ...], str, bool]
_WORKER_CHECKER: tuple[_CheckerKey, ConstraintChecker] | None = None


def _worker_checker(
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    mode: str,
    indexed: bool,
) -> ConstraintChecker:
    # reprolint: disable=R005 -- deliberate per-process memo cache: each forked
    # worker keeps its own slot; the parent never reads or depends on it.
    global _WORKER_CHECKER
    key = (master, tuple(constraints), mode, indexed)
    if _WORKER_CHECKER is not None and _WORKER_CHECKER[0] == key:
        return _WORKER_CHECKER[1]
    checker = ConstraintChecker(master, constraints, mode=mode, indexed=indexed)
    _WORKER_CHECKER = (key, checker)
    return checker


def _shard_search(
    payload: _Payload, prefix: Mapping[Variable, Constant], **kwargs: Any
) -> WorldSearch:
    # Hash indexes are session-local state (IndexedFactStore lives inside
    # each CheckerSession), so nothing index-shaped crosses the fork: every
    # worker's searches rebuild their indexes lazily from their own pushes.
    (
        cinstance,
        master,
        constraints,
        adom,
        order,
        break_symmetry,
        checker_mode,
        checker_indexed,
    ) = payload
    return WorldSearch(
        cinstance,
        master,
        constraints,
        adom,
        break_symmetry=break_symmetry,
        checker=_worker_checker(master, constraints, checker_mode, checker_indexed),
        order=order,
        pool_overrides={variable: [value] for variable, value in prefix.items()},
        **kwargs,
    )


def _worker_stop_check(generation: int | None) -> Callable[[], bool] | None:
    """A worker-side stop check bound to one run's cancellation generation.

    ``None`` when the run did not draw a generation (legacy callers) or the
    worker was not initialised with the shared slot.
    """
    # reprolint: disable=R005 -- fork-inherited cancellation slot installed by
    # the pool initializer; workers only read it (writes go through its lock).
    slot = _WORKER_CANCEL_GENERATION
    if generation is None or slot is None:
        return None
    cancel_slot = slot
    bound_generation = generation

    def _stop_check() -> bool:
        return cancel_slot.value == bound_generation

    return _stop_check


def _run_chunk_pairs(
    payload: _Payload,
    chunk: Sequence[tuple[int, _Prefix]],
    generation: int | None = None,
) -> list[tuple[int, list[tuple[Valuation, GroundInstance]], int]]:
    """Enumerate every shard of a chunk; returns (index, pairs, nodes).

    When the run drew a cancellation ``generation`` (the streaming driver
    always does), the fork-inherited slot is polled between shards and —
    via the serial engine's ``stop_check`` hook — inside each shard search,
    so workers abandon in-flight enumeration promptly once the driver
    cancels the run (consumer ``stop_check`` fired, or the consumer closed
    the generator early).  Cancelled chunks return the shards completed so
    far; the driver is unwinding and never merges them.
    """
    stop_check = _worker_stop_check(generation)
    results: list[tuple[int, list[tuple[Valuation, GroundInstance]], int]] = []
    for prefix_index, prefix in chunk:
        if stop_check is not None and stop_check():
            break
        search = _shard_search(payload, prefix, stop_check=stop_check)
        try:
            pairs = list(search.search())
        except SearchCancelledError:
            break
        results.append((prefix_index, pairs, search.stats.nodes))
    return results


def _run_chunk_keys(
    payload: _Payload, chunk: Sequence[tuple[int, _Prefix]]
) -> list[tuple[int, set[WorldKey], int]]:
    """Count-support worker: per-shard canonical world keys, no worlds.

    Returns ``(index, world_key set, nodes)`` per shard.  Shipping only the
    canonical forms (per-relation frozen row sets) back to the parent keeps
    the pickled payload proportional to the number of *distinct* worlds in
    the shard rather than the number of satisfying valuations, which is what
    makes the parallel engine's native ``count_worlds`` cheaper than
    streaming the full enumeration through :meth:`ParallelWorldSearch.worlds`.
    """
    results: list[tuple[int, set[WorldKey], int]] = []
    for prefix_index, prefix in chunk:
        search = _shard_search(payload, prefix)
        keys = {world_key(world) for _valuation, world in search.search()}
        results.append((prefix_index, keys, search.stats.nodes))
    return results


def _run_chunk_exists(
    payload: _Payload, chunk: Sequence[tuple[int, _Prefix]], generation: int
) -> list[tuple[int, bool, bool, int]]:
    """Probe every shard of a chunk; returns (index, found, cancelled, nodes).

    The fork-inherited cancellation slot is polled between shards and (via
    the serial engine's ``stop_check`` hook) inside each shard search, so a
    worker grinding through an expensive shard abandons it promptly once any
    other shard of *this run* (identified by ``generation``) has reported a
    model.
    """
    # reprolint: disable=R005 -- fork-inherited cancellation slot installed by
    # the pool initializer; workers only read it (writes go through its lock).
    slot = _WORKER_CANCEL_GENERATION
    stop_check = _worker_stop_check(generation)
    results: list[tuple[int, bool, bool, int]] = []
    for prefix_index, prefix in chunk:
        if stop_check is not None and stop_check():
            results.append((prefix_index, False, True, 0))
            continue
        search = _shard_search(payload, prefix, stop_check=stop_check)
        try:
            found = search.has_world()
        except SearchCancelledError:
            results.append((prefix_index, False, True, search.stats.nodes))
            continue
        results.append((prefix_index, found, False, search.stats.nodes))
        if found:
            if slot is not None:
                with slot.get_lock():
                    slot.value = generation
            break
    return results


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
@dataclass
class ParallelSearchStats:
    """Counters describing one parallel search run."""

    workers: int = 0
    shards: int = 0
    chunks: int = 0
    serial_fallback: bool = False
    cancelled_shards: int = 0
    found_shard: int | None = None
    nodes: int = 0
    worlds: int = 0
    duplicate_worlds: int = 0
    shard_variables: list[Variable] = field(default_factory=list)
    #: whether the shards' delta checkers joined through hash indexes.
    uses_indexes: bool = False


class ParallelWorldSearch:
    """Sharded, process-parallel enumeration of ``Mod_Adom(T, D_m, V)``.

    Parameters
    ----------
    cinstance, master, constraints, adom:
        As for :class:`repro.search.engine.WorldSearch`.
    workers:
        Worker-process count; ``None`` means one per available CPU
        (:func:`resolve_workers`).
    min_parallel_valuations:
        Searches whose valuation space is smaller than this run serially (the
        fork/pickle overhead would dominate).  Tests pin it to ``0`` to force
        the parallel path on tiny instances.
    shard_order:
        ``"pool"`` (default) submits shards in serial pool order; ``"reversed"``
        submits them in reverse.  Results are merged by shard index either
        way, so the enumeration produced is identical — the knob exists so the
        differential tests can demonstrate submission-order independence.
    checker:
        A prebuilt :class:`~repro.search.propagation.ConstraintChecker` for
        ``(master, constraints)``, shared by the planning pass and any
        serial-fallback search (worker processes build their own).  Callers
        running many searches against the same master data pass one, exactly
        as with :class:`~repro.search.engine.WorldSearch`.
    stop_check:
        Optional zero-argument cancellation predicate, mirroring the serial
        engine's hook (the registry capability ``supports_cancellation``).
        The driver polls it between merged results; once it returns true the
        run's cancellation generation is broadcast through the fork-inherited
        slot — every worker polls the slot between shards and (every
        :data:`repro.search.engine.STOP_CHECK_STRIDE` nodes) inside shard
        searches — and :class:`~repro.exceptions.SearchCancelledError` is
        raised to the consumer.  Abandoning an enumeration generator early
        (``close()``/``break``) broadcasts the same cancellation, so
        in-flight chunks abort promptly instead of completing into the void.
        Serial-fallback searches receive the predicate directly.

    Note on latency: this is a *throughput* engine.  Enumeration streams
    shard results as worker chunks complete, but the first result cannot
    arrive before the first chunk (≈ ``1/(2·workers)`` of the tree) has been
    fully searched — consumers that want one world fast (e.g. witness
    extraction from a satisfiable instance) are better served by the serial
    ``"propagating"`` engine or by :meth:`has_world`, which races shards and
    cancels the losers.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        *,
        workers: int | None = None,
        min_parallel_valuations: int = SERIAL_FALLBACK_VALUATIONS,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        shard_order: str = "pool",
        checker: ConstraintChecker | None = None,
        stop_check: Callable[[], bool] | None = None,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        if shard_order not in ("pool", "reversed"):
            raise SearchError(
                f"shard_order must be 'pool' or 'reversed', got {shard_order!r}"
            )
        self._cinstance = cinstance
        self._master = master
        self._constraints = list(constraints)
        self._adom = adom
        self._workers = resolve_workers(workers)
        self._min_parallel = min_parallel_valuations
        self._chunks_per_worker = max(1, chunks_per_worker)
        self._shard_order = shard_order
        self._checker = checker
        self._stop_check = stop_check
        self.stats = ParallelSearchStats(
            workers=self._workers,
            uses_indexes=checker.uses_indexes if checker is not None else True,
        )

        # The serial engine's order/pools are the ground truth the shards
        # reproduce; computing them here costs one ordering pass, no search.
        base = WorldSearch(cinstance, master, constraints, adom, checker=checker)
        self._order = base.order
        self._pools = base.pools

    @property
    def order(self) -> list[Variable]:
        """The serial variable order every shard reproduces."""
        return list(self._order)

    @property
    def pools(self) -> dict[Variable, list[Constant]]:
        """The per-variable candidate pools the shards are drawn from."""
        return {variable: list(pool) for variable, pool in self._pools.items()}

    # ------------------------------------------------------------------
    # shard planning
    # ------------------------------------------------------------------
    def _shard_variables(self) -> list[Variable]:
        if not self._order:
            return []
        first = self._order[0]
        enough = self._workers * MIN_SHARDS_PER_WORKER
        if len(self._pools[first]) >= enough or len(self._order) < 2:
            return [first]
        return [self._order[0], self._order[1]]

    def _prefixes(self) -> list[_Prefix]:
        """Shard prefixes in serial enumeration order (lexicographic in the
        ordered shard variables' pool positions)."""
        shard_vars = self._shard_variables()
        if not shard_vars:
            return []
        prefixes: list[_Prefix] = [{}]
        for variable in shard_vars:
            prefixes = [
                {**prefix, variable: value}
                for prefix in prefixes
                for value in self._pools[variable]
            ]
        return prefixes

    def _use_serial(self, prefixes: list[_Prefix]) -> bool:
        if self._workers <= 1 or len(prefixes) < 2 or not _fork_available():
            return True
        total = 1
        for pool in self._pools.values():
            total *= len(pool)
        return total < self._min_parallel

    def _payload(self, break_symmetry: bool) -> _Payload:
        # Workers rebuild (and cache) their own checkers; shipping the mode
        # and the indexed flag keeps a facade-configured mode="full" (or
        # indexed=False baseline) honest in every process.
        mode = self._checker.mode if self._checker is not None else "delta"
        indexed = self._checker.indexed if self._checker is not None else True
        return (
            self._cinstance,
            self._master,
            self._constraints,
            self._adom,
            self._order,
            break_symmetry,
            mode,
            indexed,
        )

    def _chunks(self, prefixes: list[_Prefix]) -> list[list[tuple[int, _Prefix]]]:
        count = min(len(prefixes), self._workers * self._chunks_per_worker)
        chunks: list[list[tuple[int, _Prefix]]] = [[] for _ in range(count)]
        indexed = list(enumerate(prefixes))
        if self._shard_order == "reversed":
            indexed = indexed[::-1]
        for position, (prefix_index, prefix) in enumerate(indexed):
            chunks[position % count].append((prefix_index, prefix))
        return chunks

    # ------------------------------------------------------------------
    # front-ends
    # ------------------------------------------------------------------
    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(µ, µ(T))`` pairs, in the serial engine's order.

        Shard results stream in as worker chunks complete; out-of-order
        shards are buffered until every earlier shard has been yielded, so
        consumers see exactly the serial order without waiting for the whole
        tree (early-exiting consumers simply abandon the generator — any
        still-running chunks finish in the background and are discarded).
        """
        prefixes = self._prefixes()
        if self._use_serial(prefixes):
            yield from self._serial_search()
            return
        self._record_plan(prefixes)
        yield from self._stream_pairs(prefixes)

    def __iter__(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        return self.search()

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the worlds; duplicates (also across shards) suppressed."""
        seen: set[WorldKey] = set()
        for _valuation, world in self.search():
            if deduplicate:
                key = world_key(world)
                if key in seen:
                    self.stats.duplicate_worlds += 1
                    continue
                seen.add(key)
            yield world

    def has_world(self) -> bool:
        """Whether some world exists; shards race and losers are cancelled."""
        prefixes = self._prefixes()
        if self._use_serial(prefixes):
            serial = WorldSearch(
                self._cinstance,
                self._master,
                self._constraints,
                self._adom,
                break_symmetry=True,
                checker=self._checker,
                stop_check=self._stop_check,
            )
            found = serial.has_world()
            self._absorb_serial(serial)
            return found
        self._record_plan(prefixes)
        outcome = self._collect_exists(prefixes)
        if outcome is None:  # broken pool: fall back to serial
            serial = WorldSearch(
                self._cinstance,
                self._master,
                self._constraints,
                self._adom,
                break_symmetry=True,
                checker=self._checker,
                stop_check=self._stop_check,
            )
            found = serial.has_world()
            self._absorb_serial(serial)
            return found
        return outcome

    def count_worlds(self) -> int:
        """The number of distinct worlds, by cross-shard key-set merging.

        Every shard reduces its subtree to the set of canonical world forms
        (:func:`repro.search.engine.world_key`); the parent unions the sets,
        so duplicates within *and across* shards collapse exactly as the
        serial deduplication would collapse them.  This is the engine's
        ``counts_natively`` registry capability: no
        :class:`~repro.relational.instance.GroundInstance` objects cross the
        process boundary.
        """
        prefixes = self._prefixes()
        if self._use_serial(prefixes):
            self.stats.serial_fallback = True
            serial = WorldSearch(
                self._cinstance, self._master, self._constraints, self._adom,
                checker=self._checker, stop_check=self._stop_check,
            )
            count = serial.count_worlds()
            self.stats.nodes += serial.stats.nodes
            self.stats.worlds += count
            return count
        self._record_plan(prefixes)
        chunks = self._chunks(prefixes)
        self.stats.chunks = len(chunks)
        payload = self._payload(break_symmetry=False)
        handle = _pool_for(self._workers)
        merged: set[WorldKey] = set()
        try:
            futures = [
                handle.executor.submit(_run_chunk_keys, payload, chunk)
                for chunk in chunks
            ]
            for future in as_completed(futures):
                for _prefix_index, keys, nodes in future.result():
                    self.stats.nodes += nodes
                    merged |= keys
        except BrokenProcessPool:
            _discard_pool(self._workers)
            serial = WorldSearch(
                self._cinstance, self._master, self._constraints, self._adom,
                checker=self._checker, stop_check=self._stop_check,
            )
            count = serial.count_worlds()
            self.stats.nodes += serial.stats.nodes
            self.stats.worlds += count
            return count
        self.stats.worlds += len(merged)
        return len(merged)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _serial_search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        self.stats.serial_fallback = True
        serial = WorldSearch(
            self._cinstance, self._master, self._constraints, self._adom,
            checker=self._checker, stop_check=self._stop_check,
        )
        for pair in serial.search():
            self.stats.worlds += 1
            yield pair
        self.stats.nodes += serial.stats.nodes

    def _absorb_serial(self, serial: WorldSearch) -> None:
        self.stats.serial_fallback = True
        self.stats.nodes += serial.stats.nodes

    def _record_plan(self, prefixes: list[_Prefix]) -> None:
        self.stats.shards = len(prefixes)
        self.stats.shard_variables = self._shard_variables()

    def _stream_pairs(
        self, prefixes: list[_Prefix]
    ) -> Iterator[tuple[Valuation, GroundInstance]]:
        chunks = self._chunks(prefixes)
        self.stats.chunks = len(chunks)
        payload = self._payload(break_symmetry=False)
        handle = _pool_for(self._workers)
        handle.next_generation += 1
        generation = handle.next_generation
        buffered: dict[int, list[tuple[Valuation, GroundInstance]]] = {}
        next_index = 0
        drained = False
        try:
            futures = [
                handle.executor.submit(_run_chunk_pairs, payload, chunk, generation)
                for chunk in chunks
            ]
            for future in as_completed(futures):
                for prefix_index, pairs, nodes in future.result():
                    buffered[prefix_index] = pairs
                    self.stats.nodes += nodes
                while next_index in buffered:
                    for valuation, world in buffered.pop(next_index):
                        if self._stop_check is not None and self._stop_check():
                            raise SearchCancelledError(
                                "parallel enumeration cancelled by stop_check"
                            )
                        self.stats.worlds += 1
                        yield valuation, world
                    next_index += 1
            drained = True
        except BrokenProcessPool:
            _discard_pool(self._workers)
            if next_index or buffered:
                # Results were already yielded; a serial restart would
                # duplicate them.  Surface the failure instead.
                raise SearchError(
                    "worker pool broke mid-enumeration; rerun the search"
                ) from None
            drained = True  # the serial path owns the rest of the run
            yield from self._serial_search()
        finally:
            if not drained:
                # Cancelled by stop_check, or the consumer abandoned the
                # generator: broadcast this run's generation so in-flight
                # chunks abort at their next slot poll instead of searching
                # into the void.  Later runs draw fresh generations, so a
                # stale broadcast can never cancel them.
                with handle.cancel_generation.get_lock():
                    handle.cancel_generation.value = generation

    def _collect_exists(self, prefixes: list[_Prefix]) -> bool | None:
        chunks = self._chunks(prefixes)
        self.stats.chunks = len(chunks)
        payload = self._payload(break_symmetry=True)
        handle = _pool_for(self._workers)
        handle.next_generation += 1
        generation = handle.next_generation
        found = False
        try:
            pending = {
                handle.executor.submit(_run_chunk_exists, payload, chunk, generation)
                for chunk in chunks
            }
            # With a caller stop_check the wait gets a short timeout so the
            # predicate is polled even while every chunk is still running.
            poll = None if self._stop_check is None else 0.05
            while pending:
                if self._stop_check is not None and self._stop_check():
                    with handle.cancel_generation.get_lock():
                        handle.cancel_generation.value = generation
                    raise SearchCancelledError(
                        "parallel existence check cancelled by stop_check"
                    )
                done, pending = wait(
                    pending, timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in done:
                    for prefix_index, ok, cancelled, nodes in future.result():
                        self.stats.nodes += nodes
                        if cancelled:
                            self.stats.cancelled_shards += 1
                        if ok and not found:
                            found = True
                            self.stats.found_shard = prefix_index
                            with handle.cancel_generation.get_lock():
                                handle.cancel_generation.value = generation
        except BrokenProcessPool:
            _discard_pool(self._workers)
            return None
        return found
