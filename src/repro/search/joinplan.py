"""Selectivity-ordered hash joins for the delta constraint checker.

Given a newly pushed tuple that seeds one atom of a constraint CQ, the
remaining atoms form a join the checker must complete (or refute) against the
facts grounded so far.  This module plans and executes that join over the
hash indexes of :class:`~repro.relational.indexing.IndexedFactStore` instead
of the linear scans :func:`~repro.queries.evaluation.match_conjunction`
performs:

* **Signatures.**  For each remaining atom, the columns carrying constants or
  already-bound variables form the index *key*; the columns carrying unbound
  *relevant* variables form the index *output*.  A variable is relevant iff
  it occurs in the query head, in a comparison, or in more than one atom
  position of the body (:func:`relevant_variables`).  Unbound variables that
  are not relevant are existentially projected away by the index itself —
  CQ answers are sets, so any single witness row is as good as all of them,
  and duplicate continuations collapse into one bucket entry.

* **Greedy ordering.**  At every join step the planner derives each remaining
  atom's signature under the current assignment, looks up the *actual* bucket
  for its key, and expands the atom with the smallest bucket first — the
  bucket size under the live binding is an exact selectivity measure, not an
  estimate.  An empty bucket for any remaining atom refutes the whole
  conjunction immediately (every full match must agree with the key on the
  bound columns, so no row in the bucket means no match at all).

The acceptance rule at the leaves —
:func:`~repro.queries.evaluation.finalize_assignment` followed by a
right-hand-side membership test on the instantiated head — is shared with the
linear path, so the two evaluation strategies agree by construction on
everything except speed; the differential suite in
``tests/search/test_indexed_store.py`` locks that in.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.queries.atoms import Comparison, RelationAtom
from repro.queries.evaluation import finalize_assignment, instantiate_head
from repro.queries.terms import Term, Variable, is_variable
from repro.relational.domains import Constant
from repro.relational.indexing import IndexedFactStore, Signature
from repro.relational.instance import Row

_MISSING = object()


def relevant_variables(
    atoms: Sequence[RelationAtom],
    comparisons: Iterable[Comparison],
    head: tuple[Term, ...],
) -> frozenset[Variable]:
    """Variables the indexed join must keep (everything else is projected).

    A body variable is *relevant* when some later consumer can observe it:
    it appears in the head (answers depend on it), in a comparison (the leaf
    check needs it), or in at least two atom positions of the body (join
    equality — including a repeat within a single atom — must be enforced
    through it).
    """
    occurrences: dict[Variable, int] = {}
    for atom in atoms:
        for term in atom.terms:
            if is_variable(term):
                occurrences[term] = occurrences.get(term, 0) + 1
    relevant = {variable for variable, count in occurrences.items() if count > 1}
    for term in head:
        if is_variable(term):
            relevant.add(term)
    for comparison in comparisons:
        relevant.update(comparison.variables())
    return frozenset(relevant)


def atom_plan(
    atom: RelationAtom,
    assignment: Mapping[Variable, Constant],
    relevant: frozenset[Variable],
) -> tuple[Signature, Row, tuple[Variable, ...]]:
    """Derive an atom's index signature under the current assignment.

    Returns ``(signature, key_values, out_variables)``: the signature to
    index on, the concrete key to look up (constants plus bound-variable
    values, in key-position order), and the unbound relevant variables the
    bucket's out-tuples will bind (in out-position order; a variable repeated
    within the atom appears once per position, so unification over the
    out-tuple enforces the repeat).
    """
    key_positions: list[int] = []
    key_values: list[Constant] = []
    out_positions: list[int] = []
    out_variables: list[Variable] = []
    for position, term in enumerate(atom.terms):
        if is_variable(term):
            if term in assignment:
                key_positions.append(position)
                key_values.append(assignment[term])
            elif term in relevant:
                out_positions.append(position)
                out_variables.append(term)
            # An unbound irrelevant variable occurs nowhere else in the query:
            # the index projects it away (existential semantics).
        else:
            key_positions.append(position)
            key_values.append(term)
    signature: Signature = (tuple(key_positions), tuple(out_positions))
    return signature, tuple(key_values), tuple(out_variables)


def join_escapes_rhs(
    store: IndexedFactStore,
    atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison],
    head: tuple[Term, ...],
    rhs: AbstractSet[Row],
    seed: Mapping[Variable, Constant],
    relevant: frozenset[Variable],
) -> bool:
    """Whether some completion of ``seed`` over ``atoms`` has a head ∉ ``rhs``.

    This is the indexed counterpart of the delta checker's linear scan: it
    returns ``True`` exactly when :func:`match_conjunction` seeded with the
    same assignment would yield an assignment whose instantiated head escapes
    the constraint's right-hand side.
    """

    def descend(
        remaining: list[RelationAtom], assignment: dict[Variable, Constant]
    ) -> bool:
        if not remaining:
            completed = finalize_assignment(comparisons, assignment)
            if completed is None:
                return False
            return instantiate_head(head, completed) not in rhs
        best_index = 0
        best_bucket: Mapping[Row, int] | None = None
        best_out: tuple[Variable, ...] = ()
        for position, atom in enumerate(remaining):
            signature, key_values, out_variables = atom_plan(atom, assignment, relevant)
            bucket = store.index(atom.relation, signature).group(key_values)
            if not bucket:
                # This atom must still be matched, and every match agrees
                # with the key on the bound columns: no bucket, no match.
                return False
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_index, best_bucket, best_out = position, bucket, out_variables
        assert best_bucket is not None
        rest = remaining[:best_index] + remaining[best_index + 1 :]
        for out_tuple in best_bucket:
            extended = dict(assignment)
            compatible = True
            for variable, value in zip(best_out, out_tuple):
                existing = extended.get(variable, _MISSING)
                if existing is _MISSING:
                    extended[variable] = value
                elif existing != value:
                    compatible = False
                    break
            if compatible and descend(rest, extended):
                return True
        return False

    return descend(list(atoms), dict(seed))
