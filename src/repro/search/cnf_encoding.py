"""CNF encoding of ``Mod_Adom(T, D_m, V)`` membership.

The paper's lower bounds reduce quantified SAT *to* the completeness
problems; this module runs the connection the other way, encoding the
valuation search itself as propositional satisfiability so the DPLL solver
(:mod:`repro.reductions.dpll`) can decide it.  A satisfying assignment of the
produced formula corresponds one-to-one to a valuation ``µ`` over the active
domain with ``(µ(T), D_m) |= V``.

The encoding has three layers:

**Selector variables.**  For every c-instance variable ``x`` and every value
``a`` of its candidate pool (the active domain, narrowed by finite attribute
domains) a selector ``s[x=a]`` states "``µ(x) = a``".  Exactly-one
constraints per variable — an at-least-one clause plus pairwise at-most-one
clauses — make total assignments of the selectors exactly the Adom
valuations.  Cells of the c-table sharing a variable share its selectors.

**Tuple-presence variables.**  Every c-table row can only ground to finitely
many tuples: one per assignment of the row's variables (terms *and* local
condition) whose condition evaluates to true — assignments falsifying the
condition simply drop the row, so they produce no grounding.  For each
possible tuple ``t`` of relation ``R`` a variable ``p[R,t]`` is defined by a
Tseitin-style equivalence with the groundings that produce it::

    p[R,t]  ↔  g₁ ∨ g₂ ∨ ...        gᵢ ↔ s[x=a] ∧ s[y=b] ∧ ...

where each ``gᵢ`` stands for one (row, assignment) pair.  Tuples contributed
by fully ground rows (no variables, condition true) are *baseline* facts —
present in every world — and need no variable at all.  Because the auxiliary
``g``/``p`` variables are functionally determined by the selectors, models
project one-to-one onto valuations: enumerating models with selector-only
blocking clauses enumerates valuations without duplicates.

**Constraint clauses.**  A containment constraint ``q ⊆ p(D_m)`` is violated
by a world iff some match of ``q``'s body onto the world's tuples produces a
head row outside the (fixed) master answer.  The worlds' tuples all come from
the candidate universe above, so every potential violation is a match of
``q`` onto the universe; for each such match with an uncovered head the
encoding emits the clause ::

    ¬p[R₁,t₁] ∨ ... ∨ ¬p[Rₖ,tₖ]     ("not all of these tuples together")

over the presence variables of the matched tuples (baseline facts contribute
no literal — they are always present).  A violating match consisting solely
of baseline facts makes the instance trivially inconsistent.

Conditions, equalities and inequalities are therefore handled *natively*:
row conditions vanish into the grounding step, and the ``=``/``≠``
comparisons of the constraint queries are evaluated once, during clause
generation, instead of once per explored world — this is what lets the SAT
engine open up the inequality-heavy instances the monotone-CC pruner of
:mod:`repro.search.engine` cannot prune.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.reductions.dpll import DPLLSolver

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.adom import ActiveDomain, variable_pools
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation, enumerate_assignments
from repro.exceptions import SearchError
from repro.queries.evaluation import instantiate_head, match_atom, match_conjunction
from repro.queries.terms import Variable
from repro.relational.domains import Constant
from repro.relational.instance import Row
from repro.relational.master import MasterData
from repro.search.propagation import ConstraintChecker


@dataclass
class EncodingStats:
    """Size counters for one :class:`WorldEncoding` build."""

    selector_variables: int = 0
    grounding_variables: int = 0
    presence_variables: int = 0
    clauses: int = 0
    candidate_tuples: int = 0
    baseline_tuples: int = 0
    blocked_matches: int = 0
    #: Violation clauses were deferred to a CEGAR loop (lazy encoding).
    lazy: bool = False
    #: Counter-example rounds run against this encoding (CEGAR refinement).
    cegar_rounds: int = 0


@dataclass
class WorldEncoding:
    """The CNF encoding of ``Mod_Adom(T, D_m, V)`` membership.

    Build with :func:`encode_world_search`.  ``clauses`` is ready for
    :class:`repro.reductions.dpll.DPLLSolver`; :meth:`decode` turns a model
    back into a valuation and :meth:`selector_scope` lists the variables to
    project model enumeration onto.
    """

    variables: tuple[Variable, ...]
    pools: Mapping[Variable, Sequence[Constant]]
    selector: Mapping[tuple[Variable, Constant], int]
    clauses: list[tuple[int, ...]]
    trivially_unsat: bool
    stats: EncodingStats = field(default_factory=EncodingStats)
    #: Presence literal per candidate tuple (consumed by the CEGAR oracle
    #: and the component counter; empty for encoders that predate them).
    presence: Mapping[tuple[str, Row], int] = field(default_factory=dict)
    #: Tuples present in every world, per relation (from fully ground rows).
    baseline: Mapping[str, frozenset[Row]] = field(default_factory=dict)
    #: Selector-conjunction producers per candidate tuple.
    producers: Mapping[tuple[str, Row], tuple[tuple[int, ...], ...]] = field(
        default_factory=dict
    )

    def selector_scope(self) -> list[int]:
        """Selector variable identifiers, in deterministic order.

        Auxiliary grounding/presence variables are functionally determined by
        the selectors, so blocking models on this scope enumerates each
        valuation exactly once.
        """
        return [
            self.selector[(variable, value)]
            for variable in self.variables
            for value in self.pools[variable]
        ]

    def decode(self, model: Mapping[int, bool]) -> Valuation:
        """The valuation a satisfying assignment encodes."""
        valuation: Valuation = {}
        for variable in self.variables:
            for value in self.pools[variable]:
                if model.get(self.selector[(variable, value)]):
                    valuation[variable] = value
                    break
            else:
                raise SearchError(
                    f"model assigns no value to variable {variable!r}; "
                    "the exactly-one constraints were violated"
                )
        return valuation

    def blocking_clause(self, valuation: Mapping[Variable, Constant]) -> tuple[int, ...]:
        """A clause excluding exactly the given valuation."""
        return tuple(
            -self.selector[(variable, valuation[variable])]
            for variable in self.variables
        )


def encode_world_search(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    checker: ConstraintChecker | None = None,
    *,
    lazy_violations: bool = False,
) -> WorldEncoding:
    """Encode ``Mod_Adom(T, D_m, V)`` membership as CNF.

    ``checker`` may supply precomputed constraint right-hand sides (shared
    with the propagating engine); one is built from ``(master, constraints)``
    otherwise.

    With ``lazy_violations`` the constraint-violation clauses are omitted:
    models of the abstraction then over-approximate the valuation set, and a
    :class:`LazyViolationOracle` refutes invalid candidates one counter-example
    round at a time (CEGAR).  Deferring the violation pass skips the full
    ``match_conjunction`` join over the candidate universe, which dominates
    encoding time on wide all-variable rows.
    """
    if adom is None:
        from repro.ctables.possible_worlds import default_active_domain

        adom = default_active_domain(cinstance, master, constraints)
    checker = checker or ConstraintChecker(master, constraints)

    variables = tuple(sorted(cinstance.variables(), key=lambda v: v.name))
    pools = variable_pools(variables, adom, cinstance.variable_domains())

    stats = EncodingStats(lazy=lazy_violations)
    clauses: list[tuple[int, ...]] = []
    counter = 0

    def fresh_variable() -> int:
        nonlocal counter
        counter += 1
        return counter

    # --- selector variables and exactly-one constraints -------------------
    selector: dict[tuple[Variable, Constant], int] = {}
    for variable in variables:
        pool = pools[variable]
        ids = []
        for value in pool:
            selector[(variable, value)] = fresh_variable()
            ids.append(selector[(variable, value)])
        stats.selector_variables += len(ids)
        if not ids:
            # An empty pool (e.g. an empty finite-domain intersection) admits
            # no valuation at all.
            stats.clauses = len(clauses)
            return WorldEncoding(
                variables=variables,
                pools=pools,
                selector=selector,
                clauses=clauses,
                trivially_unsat=True,
                stats=stats,
            )
        clauses.append(tuple(ids))
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                clauses.append((-ids[i], -ids[j]))

    # --- row groundings and tuple-presence variables -----------------------
    # baseline[name]: tuples present in every world (from fully ground rows).
    # producers[(name, tuple)]: conjunctions of selector literals, one per
    # (row, assignment) grounding producing the tuple.
    baseline: dict[str, set[Row]] = {
        name: set() for name in cinstance.schema.relation_names
    }
    producers: dict[tuple[str, Row], list[tuple[int, ...]]] = {}
    for name, _index, row in cinstance.rows():
        row_variables = sorted(row.variables(), key=lambda v: v.name)
        if not row_variables:
            ground = row.apply({})
            if ground is not None:
                baseline[name].add(ground)
            continue
        row_pools = {variable: pools[variable] for variable in row_variables}
        for assignment in enumerate_assignments(row_pools):
            ground = row.apply(assignment)
            if ground is None:
                continue  # local condition falsified: the row drops out
            conjunction = tuple(
                selector[(variable, assignment[variable])]
                for variable in row_variables
            )
            producers.setdefault((name, ground), []).append(conjunction)

    # Tuples that are baseline facts need no presence variable; their other
    # producers are irrelevant (the tuple is present regardless).
    for (name, ground) in list(producers):
        if ground in baseline[name]:
            del producers[(name, ground)]

    stats.baseline_tuples = sum(len(rows) for rows in baseline.values())
    stats.candidate_tuples = stats.baseline_tuples + len(producers)

    # Tseitin definitions: g ↔ conjunction (cached across tuples), p ↔ ∨ g.
    grounding_variable: dict[tuple[int, ...], int] = {}

    def literal_for_conjunction(conjunction: tuple[int, ...]) -> int:
        if len(conjunction) == 1:
            return conjunction[0]
        cached = grounding_variable.get(conjunction)
        if cached is not None:
            return cached
        g = fresh_variable()
        grounding_variable[conjunction] = g
        stats.grounding_variables += 1
        for lit in conjunction:
            clauses.append((-g, lit))
        clauses.append(tuple(-lit for lit in conjunction) + (g,))
        return g

    presence: dict[tuple[str, Row], int] = {}
    for key in sorted(producers, key=repr):
        conjunctions = producers[key]
        if len(conjunctions) == 1:
            # A single producer: its grounding literal *is* the presence
            # variable (for one-variable rows, the selector literal itself).
            presence[key] = literal_for_conjunction(conjunctions[0])
            continue
        p = fresh_variable()
        stats.presence_variables += 1
        presence[key] = p
        disjuncts = [literal_for_conjunction(c) for c in conjunctions]
        for g in disjuncts:
            clauses.append((-g, p))
        clauses.append((-p,) + tuple(disjuncts))

    # --- constraint violation clauses --------------------------------------
    trivially_unsat = False
    if not lazy_violations:
        # The candidate universe: everything any world could contain.
        universe: dict[str, frozenset[Row]] = {}
        for name in cinstance.schema.relation_names:
            rows = set(baseline[name])
            rows.update(ground for (rel, ground) in producers if rel == name)
            universe[name] = frozenset(rows)

        blocked: set[tuple[int, ...]] = set()
        for constraint, _relations, rhs in checker.entries:
            query = constraint.query
            for match in match_conjunction(query.atoms, query.comparisons, universe):
                head = instantiate_head(query.head, match)
                if head in rhs:
                    continue
                stats.blocked_matches += 1
                literals: set[int] = set()
                baseline_only = True
                for atom in query.atoms:
                    ground = tuple(
                        match[term] if isinstance(term, Variable) else term
                        for term in atom.terms
                    )
                    if ground in baseline[atom.relation]:
                        continue  # always present: contributes no literal
                    baseline_only = False
                    literals.add(-presence[(atom.relation, ground)])
                if baseline_only:
                    # The fixed part of the c-instance already violates the
                    # constraint: no valuation can repair it.
                    trivially_unsat = True
                    break
                clause = tuple(sorted(literals))
                if clause not in blocked:
                    blocked.add(clause)
                    clauses.append(clause)
            if trivially_unsat:
                break

    stats.clauses = len(clauses)
    return WorldEncoding(
        variables=variables,
        pools=pools,
        selector=selector,
        clauses=clauses,
        trivially_unsat=trivially_unsat,
        stats=stats,
        presence=presence,
        baseline={name: frozenset(rows) for name, rows in baseline.items()},
        producers={key: tuple(value) for key, value in producers.items()},
    )


class LazyViolationOracle:
    """CEGAR counter-example oracle for a lazily encoded world search.

    Built over a :func:`encode_world_search` result (typically one produced
    with ``lazy_violations=True``).  :meth:`refute` takes the facts of a
    candidate world — the c-instance grounded by a decoded valuation — and
    emits the violation clauses for every uncovered constraint match over
    those facts.  Each emitted clause is falsified by the candidate model
    (its tuples are all present), so feeding the clauses back and re-solving
    makes strict progress; a fixpoint with no new clauses certifies the
    candidate as a real world.
    """

    def __init__(self, encoding: WorldEncoding, checker: ConstraintChecker) -> None:
        self._encoding = encoding
        self._entries = list(checker.entries)
        self._blocked: set[tuple[int, ...]] = set()

    def refute(
        self, facts: Mapping[str, Any]
    ) -> list[tuple[int, ...]] | None:
        """Violation clauses refuting a candidate world.

        Returns the newly added clauses (empty when the candidate satisfies
        every constraint, i.e. it is a genuine world), or ``None`` when a
        violated match consists solely of baseline facts — then no valuation
        can repair the instance and the encoding is marked trivially unsat.
        """
        encoding = self._encoding
        new_clauses: list[tuple[int, ...]] = []
        for constraint, _relations, rhs in self._entries:
            query = constraint.query
            for match in match_conjunction(query.atoms, query.comparisons, facts):
                head = instantiate_head(query.head, match)
                if head in rhs:
                    continue
                encoding.stats.blocked_matches += 1
                literals: set[int] = set()
                baseline_only = True
                for atom in query.atoms:
                    ground = tuple(
                        match[term] if isinstance(term, Variable) else term
                        for term in atom.terms
                    )
                    if ground in encoding.baseline.get(atom.relation, frozenset()):
                        continue  # always present: contributes no literal
                    baseline_only = False
                    literals.add(-encoding.presence[(atom.relation, ground)])
                if baseline_only:
                    # The fixed part of the c-instance already violates the
                    # constraint: no valuation can repair it.
                    encoding.trivially_unsat = True
                    encoding.stats.clauses = len(encoding.clauses)
                    return None
                clause = tuple(sorted(literals))
                if clause not in self._blocked:
                    self._blocked.add(clause)
                    encoding.clauses.append(clause)
                    new_clauses.append(clause)
        encoding.stats.clauses = len(encoding.clauses)
        return new_clauses


class IncrementalEncoder:
    """A :class:`WorldEncoding` that absorbs ground-tuple adds and drops.

    The one-shot :func:`encode_world_search` hard-wires the fully ground rows
    into the clauses (baseline facts contribute no literal), so any change to
    the instance forces a re-encode.  This encoder instead gives every ground
    tuple a **guard literal** ``g[R,t]`` and keeps the tuple's presence
    conditional on it:

    * presence definitions are *one-directional* — for every producer of a
      tuple (a guard, or a selector conjunction grounding a variable row) one
      clause ``producer → p[R,t]`` is emitted.  Presence literals occur only
      negatively in the violation clauses, so the missing direction can never
      flip a verdict: a model may set an unproduced ``p`` spuriously true,
      which only *removes* satisfying assignments that another completion of
      the same valuation still has, and a false ``p`` still implies every
      producer is false.  One-directional definitions are what make the
      clause set **monotone**: a new producer is one new clause, with nothing
      to retract;
    * whether a ground tuple is currently in the instance is expressed per
      call through :meth:`assumptions` (``+g`` if present, ``-g`` if
      dropped), not through clauses, so drops and re-adds touch no clause at
      all;
    * adding a *new* ground tuple extends the violation clauses semi-naively:
      only matches of a constraint body that use the new tuple at least once
      are joined (each LHS atom over the relation is seeded with it in turn,
      exactly like the delta checker of :mod:`repro.search.propagation`), over
      the universe of every tuple ever registered — dropped tuples included,
      since their clauses are neutralised by their guards.

    The growing clause list lives in :attr:`encoding` (a plain
    :class:`WorldEncoding`, so decode/blocking/projection are shared);
    consumers that keep a live solver feed themselves ``clauses[cursor:]``
    before each solve.  Variable rows, the active domain and the candidate
    pools are fixed at construction — changes to any of those are rebuild
    events, which the owner (:class:`repro.search.sat_engine.IncrementalSATSession`
    via :meth:`repro.api.Database.update`) detects and answers with a fresh
    encoder.
    """

    def __init__(
        self,
        cinstance: CInstance,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        adom: ActiveDomain | None = None,
        checker: ConstraintChecker | None = None,
        *,
        lazy_violations: bool = False,
    ) -> None:
        if adom is None:
            from repro.ctables.possible_worlds import default_active_domain

            adom = default_active_domain(cinstance, master, constraints)
        checker = checker or ConstraintChecker(master, constraints)
        self._entries = [
            (constraint, relations, rhs)
            for constraint, relations, rhs in checker.entries
        ]
        # Lazy mode defers all violation clauses to refute_facts() (CEGAR):
        # neither the initial universe join nor the per-add delta joins run.
        self._lazy = lazy_violations

        variables = tuple(sorted(cinstance.variables(), key=lambda v: v.name))
        pools = variable_pools(variables, adom, cinstance.variable_domains())

        stats = EncodingStats(lazy=lazy_violations)
        clauses: list[tuple[int, ...]] = []
        self._counter = 0
        self.encoding = WorldEncoding(
            variables=variables,
            pools=pools,
            selector={},
            clauses=clauses,
            trivially_unsat=False,
            stats=stats,
        )

        # guard literal per registered ground tuple; activity drives the
        # per-call assumptions, never the clause set.
        self._guards: dict[tuple[str, Row], int] = {}
        self._active: set[tuple[str, Row]] = set()
        # presence literal per candidate tuple (aliased to the guard for
        # tuples no variable row can produce).
        self._presence: dict[tuple[str, Row], int] = {}
        # every tuple ever registered, dropped or not — the delta-join
        # universe (guards neutralise the clauses of inactive tuples).
        self._universe: dict[str, set[Row]] = {
            name: set() for name in cinstance.schema.relation_names
        }
        self._blocked: set[tuple[int, ...]] = set()

        # --- selectors and exactly-one clauses (as in the one-shot path) ---
        selector = self.encoding.selector
        assert isinstance(selector, dict)
        for variable in variables:
            ids = []
            for value in pools[variable]:
                selector[(variable, value)] = self._fresh()
                ids.append(selector[(variable, value)])
            stats.selector_variables += len(ids)
            if not ids:
                # an empty candidate pool admits no valuation at all
                self.encoding.trivially_unsat = True
                return
            clauses.append(tuple(ids))
            for i in range(len(ids)):
                for j in range(i + 1, len(ids)):
                    clauses.append((-ids[i], -ids[j]))

        # --- variable-row groundings: one-directional presence producers ---
        for name, _index, row in cinstance.rows():
            row_variables = sorted(row.variables(), key=lambda v: v.name)
            if not row_variables:
                continue  # ground rows are registered below, guarded
            row_pools = {variable: pools[variable] for variable in row_variables}
            for assignment in enumerate_assignments(row_pools):
                ground = row.apply(assignment)
                if ground is None:
                    continue  # local condition falsified: the row drops out
                key = (name, ground)
                p = self._presence.get(key)
                if p is None:
                    p = self._fresh()
                    stats.presence_variables += 1
                    self._presence[key] = p
                    self._universe[name].add(ground)
                conjunction = tuple(
                    -selector[(variable, assignment[variable])]
                    for variable in row_variables
                )
                clauses.append(conjunction + (p,))

        # --- ground rows: guard producers ----------------------------------
        for name, _index, row in cinstance.rows():
            if row.variables():
                continue
            ground = row.apply({})
            if ground is not None:
                self._register_ground(name, ground)

        stats.baseline_tuples = len(self._guards)
        stats.candidate_tuples = sum(len(rows) for rows in self._universe.values())

        # --- violation clauses over the initial universe -------------------
        if not self._lazy:
            for constraint, _relations, rhs in self._entries:
                query = constraint.query
                for match in match_conjunction(
                    query.atoms, query.comparisons, self._universe
                ):
                    self._block_match(query, rhs, match)
        stats.clauses = len(clauses)

    # ------------------------------------------------------------------
    # literal allocation and clause helpers
    # ------------------------------------------------------------------
    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _block_match(
        self, query: Any, rhs: frozenset[Row], match: Mapping[Variable, Constant]
    ) -> None:
        """Emit the violation clause for one uncovered match, deduplicated."""
        head = instantiate_head(query.head, match)
        if head in rhs:
            return
        self.encoding.stats.blocked_matches += 1
        literals: set[int] = set()
        for atom in query.atoms:
            ground = tuple(
                match[term] if isinstance(term, Variable) else term
                for term in atom.terms
            )
            literals.add(-self._presence[(atom.relation, ground)])
        clause = tuple(sorted(literals))
        if clause not in self._blocked:
            self._blocked.add(clause)
            self.encoding.clauses.append(clause)

    def _register_ground(self, relation: str, ground: Row) -> int:
        """Allocate the guard for a never-seen ground tuple; return it."""
        key = (relation, ground)
        guard = self._fresh()
        self._guards[key] = guard
        self._active.add(key)
        p = self._presence.get(key)
        if p is None:
            # no variable row can produce this tuple: the guard *is* the
            # presence literal (a dedicated p would only restate it)
            self._presence[key] = guard
        else:
            self.encoding.clauses.append((-guard, p))
        self._universe[relation].add(ground)
        return guard

    # ------------------------------------------------------------------
    # incremental surface
    # ------------------------------------------------------------------
    def add_ground(self, relation: str, ground: Row) -> None:
        """Make a ground tuple present (re-activating or newly encoding it)."""
        key = (relation, ground)
        if key in self._guards:
            self._active.add(key)  # re-add: flip the assumption, no clauses
            return
        if self.encoding.trivially_unsat:
            # No valuation exists regardless of the instance contents (an
            # empty candidate pool); clause bookkeeping is moot.
            self._guards[key] = self._fresh()
            self._active.add(key)
            return
        self._register_ground(relation, ground)
        self.encoding.stats.baseline_tuples = len(self._guards)
        self.encoding.stats.candidate_tuples = sum(
            len(rows) for rows in self._universe.values()
        )
        # Semi-naive delta: every new violating match must use the new tuple
        # in at least one LHS atom over its relation; seed each such atom in
        # turn and join the rest over the full universe.
        if self._lazy:
            # Deferred to refute_facts() counter-example rounds; only the
            # guard-producer clause from _register_ground was added.
            self.encoding.stats.clauses = len(self.encoding.clauses)
            return
        for constraint, relations, rhs in self._entries:
            if relation not in relations:
                continue
            query = constraint.query
            for atom_index, atom in enumerate(query.atoms):
                if atom.relation != relation:
                    continue
                seed = match_atom(atom, ground, {})
                if seed is None:
                    continue
                rest = query.atoms[:atom_index] + query.atoms[atom_index + 1:]
                for match in match_conjunction(
                    rest, query.comparisons, self._universe, initial=seed
                ):
                    self._block_match(query, rhs, match)
        self.encoding.stats.clauses = len(self.encoding.clauses)

    def drop_ground(self, relation: str, ground: Row) -> None:
        """Make a registered ground tuple absent (assumption flip only)."""
        key = (relation, ground)
        if key not in self._guards:
            raise SearchError(
                f"drop of unregistered ground tuple {ground!r} in {relation!r}"
            )
        self._active.discard(key)

    def is_active(self, relation: str, ground: Row) -> bool:
        """Whether the tuple is currently present in the encoded instance."""
        return (relation, ground) in self._active

    def refute_facts(self, facts: Mapping[str, Any]) -> int:
        """Block every violated match over a candidate world's facts (CEGAR).

        ``facts`` are the relations of one candidate world (the current
        instance grounded by a decoded valuation); every tuple in them is
        registered, so each uncovered match yields a clause over known
        presence/guard literals.  Because those literals are all forced true
        for the candidate (guards by assumption, produced tuples by their
        producer clauses), each new clause refutes the candidate model —
        re-solving after feeding them makes strict progress.  Returns the
        number of clauses added; ``0`` certifies the candidate as a world.
        """
        before = len(self.encoding.clauses)
        for constraint, _relations, rhs in self._entries:
            query = constraint.query
            for match in match_conjunction(query.atoms, query.comparisons, facts):
                self._block_match(query, rhs, match)
        self.encoding.stats.clauses = len(self.encoding.clauses)
        return len(self.encoding.clauses) - before

    def assumptions(self) -> list[int]:
        """The guard literals expressing the current instance contents."""
        return [
            guard if key in self._active else -guard
            for key, guard in sorted(self._guards.items(), key=lambda item: item[1])
        ]


def iter_solver_models(
    encoding: WorldEncoding, solver: DPLLSolver | None = None
) -> Iterator[Valuation]:
    """Enumerate the valuations satisfying the encoding.

    This is the one solve → decode → block loop shared by the SAT engine
    (:meth:`repro.search.sat_engine.SATWorldSearch.search`) and the tests.
    Each satisfying valuation is yielded exactly once: its blocking clause
    (one negated selector literal per c-instance variable) is added before
    re-solving, and the auxiliary encoding variables are functionally
    determined by the selectors, so nothing is dropped or duplicated.
    ``solver`` may be supplied to observe its statistics; it must be fresh
    (built from ``encoding.clauses``).
    """
    from repro.reductions.dpll import DPLLSolver

    if encoding.trivially_unsat:
        return
    if solver is None:
        solver = DPLLSolver(encoding.clauses)
    while True:
        model = solver.solve()
        if model is None:
            return
        valuation = encoding.decode(model)
        yield valuation
        blocking = encoding.blocking_clause(valuation)
        if not blocking:
            return  # no variables: the single empty valuation is it
        solver.add_clause(blocking)
