"""Incremental containment-constraint checking on partially grounded worlds.

The pruning rule of the engine rests on monotonicity: the left-hand side of a
containment constraint ``q(R) ⊆ p(R_m)`` is a CQ, and CQs are monotone in the
database.  The tuples contributed by the c-table rows that are already fully
grounded under a partial valuation form a *subset* of every world reachable
from that partial valuation, so

    ``q(definite tuples) ⊄ p(D_m)  ⟹  q(µ(T)) ⊄ p(D_m)`` for every
    completion ``µ`` of the partial valuation,

and the whole branch can be discarded.  :class:`ConstraintChecker`
precomputes the (fixed) right-hand sides ``p(D_m)`` once and re-evaluates a
constraint only when a relation mentioned by its left-hand side has gained a
tuple since the last check.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.queries.evaluation import evaluate_cq_on_facts
from repro.relational.instance import Row
from repro.relational.master import MasterData


class ConstraintChecker:
    """Containment-constraint checks with precomputed right-hand sides."""

    __slots__ = ("_entries",)

    def __init__(
        self, master: MasterData, constraints: Sequence[ContainmentConstraint]
    ) -> None:
        entries: list[tuple[ContainmentConstraint, frozenset[str], frozenset[Row]]] = []
        for constraint in constraints:
            entries.append(
                (
                    constraint,
                    frozenset(constraint.query.relation_names()),
                    constraint.right_answer(master),
                )
            )
        self._entries = entries

    @property
    def constraints(self) -> list[ContainmentConstraint]:
        """The constraints being checked, in input order."""
        return [constraint for constraint, _relations, _rhs in self._entries]

    @property
    def entries(self) -> list[tuple[ContainmentConstraint, frozenset[str], frozenset[Row]]]:
        """``(constraint, LHS relation names, precomputed RHS answer)`` triples.

        Exposed so other engines (e.g. the CNF encoder of
        :mod:`repro.search.cnf_encoding`) can share the per-master-data
        right-hand-side evaluation instead of redoing it.
        """
        return list(self._entries)

    def check(
        self,
        facts: Mapping[str, AbstractSet[Row]],
        touched: Iterable[str] | None = None,
    ) -> bool:
        """Whether the fact store satisfies (the relevant) constraints.

        ``facts`` maps relation names to the definitely-present tuples of a
        (partially grounded) world.  With ``touched`` given, only constraints
        whose left-hand side mentions one of those relations are re-evaluated;
        by the monotonicity argument above, the verdict for the others cannot
        have changed since they were last checked.
        """
        touched_set = None if touched is None else set(touched)
        for constraint, relations, rhs in self._entries:
            if touched_set is not None and not (relations & touched_set):
                continue
            if not evaluate_cq_on_facts(constraint.query, facts) <= rhs:
                return False
        return True

    def violated(
        self, facts: Mapping[str, AbstractSet[Row]]
    ) -> list[ContainmentConstraint]:
        """The constraints the fact store violates (diagnostic helper)."""
        return [
            constraint
            for constraint, _relations, rhs in self._entries
            if not evaluate_cq_on_facts(constraint.query, facts) <= rhs
        ]
