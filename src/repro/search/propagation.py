"""Incremental containment-constraint checking on partially grounded worlds.

The pruning rule of the engine rests on monotonicity: the left-hand side of a
containment constraint ``q(R) ⊆ p(R_m)`` is a CQ, and CQs are monotone in the
database.  The tuples contributed by the c-table rows that are already fully
grounded under a partial valuation form a *subset* of every world reachable
from that partial valuation, so

    ``q(definite tuples) ⊄ p(D_m)  ⟹  q(µ(T)) ⊄ p(D_m)`` for every
    completion ``µ`` of the partial valuation,

and the whole branch can be discarded.  :class:`ConstraintChecker`
precomputes the (fixed) right-hand sides ``p(D_m)`` once.

Two evaluation modes are available:

* ``mode="delta"`` (the default) — **semi-naive delta evaluation**.  When a
  tuple ``t`` joins relation ``R``, the only LHS answers that can newly
  escape the right-hand side are those derived by a homomorphism using ``t``
  somewhere.  For every LHS atom over ``R`` the checker seeds the CQ match
  with ``atom ↦ t`` and joins the *remaining* atoms outward against the
  already-grounded fact set; the union over seed positions covers exactly
  the new answers.  The full left-hand side is never re-evaluated, which
  cuts the per-tuple cost from ``O(|facts|^k)`` to ``O(|facts|^(k-1))`` for
  a ``k``-atom constraint.
* ``mode="full"`` — the original recompute-from-scratch path, kept as the
  debug/oracle mode the differential test suite compares ``"delta"``
  against: every touched constraint's whole CQ is re-evaluated via
  :func:`~repro.queries.evaluation.evaluate_cq_on_facts`.

The delta mode additionally comes in two join strategies, selected by the
``indexed`` flag: ``indexed=True`` (the default) routes the remaining-atom
join through the hash indexes of
:class:`~repro.relational.indexing.IndexedFactStore` with the
selectivity-greedy planner of :mod:`repro.search.joinplan`;
``indexed=False`` keeps the linear scans of
:func:`~repro.queries.evaluation.match_conjunction` as the measurable
baseline (and second oracle) the benchmark gates the indexed path against.

The incremental surface is a :class:`CheckerSession` (created per search via
:meth:`ConstraintChecker.session`): a ``push(relation, row)`` /- ``pop()``
snapshot stack over a fact store owned by the session.  Sessions make the
checker itself stateless, so one :class:`ConstraintChecker` can be shared by
the :class:`repro.api.Database` facade, the parallel engine's workers and
arbitrarily many concurrent searches.  Because CQ answers are monotone in
the fact store, a push can only *add* violations and popping it removes
exactly the violations it added — the session tracks per-push violation
sets, so verdicts stay exact across any push/pop sequence (including pushes
after a violation and pushes of already-present tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.exceptions import SearchError
from repro.queries.atoms import Comparison, RelationAtom
from repro.queries.evaluation import (
    evaluate_cq_on_facts,
    instantiate_head,
    match_atom,
    match_conjunction,
)
from repro.queries.terms import Term, Variable
from repro.relational.indexing import IndexedFactStore
from repro.relational.instance import Row
from repro.relational.master import MasterData
from repro.search.joinplan import join_escapes_rhs, relevant_variables

#: The evaluation modes a :class:`ConstraintChecker` supports.
CHECKER_MODES = ("delta", "full")


@dataclass(frozen=True)
class _Entry:
    """One constraint with everything the delta evaluator precomputes."""

    constraint: ContainmentConstraint
    relations: frozenset[str]
    rhs: frozenset[Row]
    atoms: tuple[RelationAtom, ...]
    comparisons: tuple[Comparison, ...]
    head: tuple[Term, ...]
    #: relation name → indices of the LHS atoms that can match a tuple of it.
    seeds: Mapping[str, tuple[int, ...]]
    #: variables the indexed join must keep (head/comparison/shared); the
    #: rest are existentially projected away by the index buckets.
    relevant: frozenset[Variable]


class ConstraintChecker:
    """Containment-constraint checks with precomputed right-hand sides.

    Parameters
    ----------
    master, constraints:
        The constraint context; the right-hand sides ``p(D_m)`` are evaluated
        once here and shared by every check and every session.
    mode:
        ``"delta"`` (default) for semi-naive incremental evaluation inside
        sessions, ``"full"`` for the recompute-from-scratch oracle path.
        Both modes agree on every verdict; ``"full"`` exists so differential
        tests (and debugging) have an independent reference.
    indexed:
        With ``mode="delta"``: ``True`` (default) joins the remaining atoms
        through the session store's hash indexes
        (:mod:`repro.search.joinplan`); ``False`` keeps the linear-scan
        join as a measurable baseline.  Ignored by ``mode="full"``.  All
        three configurations agree on every verdict.
    """

    __slots__ = ("_entries", "_mode", "_indexed", "_base_violations", "_session")

    def __init__(
        self,
        master: MasterData,
        constraints: Sequence[ContainmentConstraint],
        mode: str = "delta",
        *,
        indexed: bool = True,
    ) -> None:
        if mode not in CHECKER_MODES:
            raise SearchError(
                f"checker mode must be one of {CHECKER_MODES}, got {mode!r}"
            )
        entries: list[_Entry] = []
        base_violations: frozenset[int]
        base: set[int] = set()
        for index, constraint in enumerate(constraints):
            query = constraint.query
            seeds: dict[str, tuple[int, ...]] = {}
            for atom_index, atom in enumerate(query.atoms):
                seeds[atom.relation] = seeds.get(atom.relation, ()) + (atom_index,)
            entry = _Entry(
                constraint=constraint,
                relations=frozenset(query.relation_names()),
                rhs=constraint.right_answer(master),
                atoms=query.atoms,
                comparisons=query.comparisons,
                head=query.head,
                seeds=seeds,
                relevant=relevant_variables(
                    query.atoms, query.comparisons, query.head
                ),
            )
            entries.append(entry)
            if not entry.atoms:
                # Atom-free constraints (constant/equality-only LHS) never
                # touch a relation, so no push can ever re-check them; their
                # verdict is fixed at construction time and seeded into every
                # session as a base violation when it fails.
                if not evaluate_cq_on_facts(query, {}) <= entry.rhs:
                    base.add(index)
        base_violations = frozenset(base)
        self._entries = entries
        self._mode = mode
        self._indexed = bool(indexed)
        self._base_violations = base_violations
        self._session: CheckerSession | None = None

    @property
    def mode(self) -> str:
        """The evaluation mode (``"delta"`` or ``"full"``)."""
        return self._mode

    @property
    def indexed(self) -> bool:
        """Whether delta joins run over hash indexes (vs linear scans)."""
        return self._indexed

    @property
    def uses_indexes(self) -> bool:
        """Whether sessions of this checker actually exercise the indexes."""
        return self._indexed and self._mode == "delta"

    @property
    def constraints(self) -> list[ContainmentConstraint]:
        """The constraints being checked, in input order."""
        return [entry.constraint for entry in self._entries]

    @property
    def entries(self) -> list[tuple[ContainmentConstraint, frozenset[str], frozenset[Row]]]:
        """``(constraint, LHS relation names, precomputed RHS answer)`` triples.

        Exposed so other engines (e.g. the CNF encoder of
        :mod:`repro.search.cnf_encoding`) can share the per-master-data
        right-hand-side evaluation instead of redoing it.
        """
        return [
            (entry.constraint, entry.relations, entry.rhs)
            for entry in self._entries
        ]

    # ------------------------------------------------------------------
    # stateless (full-evaluation) surface
    # ------------------------------------------------------------------
    def check(
        self,
        facts: Mapping[str, AbstractSet[Row]],
        touched: Iterable[str] | None = None,
    ) -> bool:
        """Whether the fact store satisfies (the relevant) constraints.

        ``facts`` maps relation names to the definitely-present tuples of a
        (partially grounded) world.  With ``touched`` given, only constraints
        whose left-hand side mentions one of those relations are re-evaluated;
        by the monotonicity argument above, the verdict for the others cannot
        have changed since they were last checked.

        This surface always evaluates from scratch, regardless of the
        checker's mode; incremental callers use a :class:`CheckerSession`.
        """
        touched_set = None if touched is None else set(touched)
        for entry in self._entries:
            if touched_set is not None and not (entry.relations & touched_set):
                continue
            if not evaluate_cq_on_facts(entry.constraint.query, facts) <= entry.rhs:
                return False
        return True

    def violated(
        self, facts: Mapping[str, AbstractSet[Row]]
    ) -> list[ContainmentConstraint]:
        """The constraints the fact store violates (diagnostic helper)."""
        return [
            entry.constraint
            for entry in self._entries
            if not evaluate_cq_on_facts(entry.constraint.query, facts) <= entry.rhs
        ]

    # ------------------------------------------------------------------
    # incremental surface
    # ------------------------------------------------------------------
    def session(self, relation_names: Iterable[str] = ()) -> "CheckerSession":
        """A fresh push/pop session over an (initially empty) fact store.

        Sessions are independent: a shared checker can serve any number of
        concurrent searches, each with its own session.
        """
        return CheckerSession(self, relation_names)

    def reset(self, relation_names: Iterable[str] = ()) -> "CheckerSession":
        """(Re)start the checker's own default session and return it.

        Convenience for direct/interactive use (the engines create their own
        sessions); :meth:`push` and :meth:`pop` delegate to this session.
        """
        self._session = self.session(relation_names)
        return self._session

    def push(self, relation: str, row: Row) -> bool:
        """Push onto the default session (auto-created on first use)."""
        if self._session is None:
            self.reset()
        # reprolint: disable=R002 -- interactive convenience shim: the default
        # session's balance is the caller's contract, via ConstraintChecker.pop().
        return self._session.push(relation, row)

    def pop(self) -> None:
        """Pop the default session's most recent push."""
        if self._session is None or not self._session.depth:
            raise SearchError("pop() without a matching push()")
        self._session.pop()

    # ------------------------------------------------------------------
    # per-push evaluation (used by sessions)
    # ------------------------------------------------------------------
    def _newly_violated(
        self,
        facts: Mapping[str, AbstractSet[Row]],
        relation: str,
        row: Row,
        already: AbstractSet[int],
    ) -> frozenset[int]:
        """Indices of constraints newly violated by adding ``row`` to ``relation``.

        ``facts`` must already contain the new row.  Constraints in
        ``already`` are skipped — they were violated before this push, and by
        monotonicity they stay violated until the pushes that violated them
        are popped.
        """
        fresh: set[int] = set()
        use_indexes = self._indexed and isinstance(facts, IndexedFactStore)
        for index, entry in enumerate(self._entries):
            if index in already or relation not in entry.seeds:
                continue
            if self._mode == "full":
                if not evaluate_cq_on_facts(entry.constraint.query, facts) <= entry.rhs:
                    fresh.add(index)
            elif use_indexes:
                assert isinstance(facts, IndexedFactStore)
                if self._delta_violates_indexed(entry, facts, relation, row):
                    fresh.add(index)
            elif self._delta_violates(entry, facts, relation, row):
                fresh.add(index)
        return frozenset(fresh)

    def _delta_violates(
        self,
        entry: _Entry,
        facts: Mapping[str, AbstractSet[Row]],
        relation: str,
        row: Row,
    ) -> bool:
        """Whether some *new* LHS answer (one using ``row``) escapes the RHS.

        Seeds the conjunctive match at every LHS atom over ``relation`` in
        turn: a new homomorphism must map at least one such atom onto the new
        tuple, and the remaining atoms join against the full fact store
        (which already contains the tuple, covering homomorphisms that use it
        several times).
        """
        for atom_index in entry.seeds[relation]:
            seed = match_atom(entry.atoms[atom_index], row, {})
            if seed is None:
                continue
            rest = entry.atoms[:atom_index] + entry.atoms[atom_index + 1:]
            for assignment in match_conjunction(
                rest, entry.comparisons, facts, initial=seed
            ):
                if instantiate_head(entry.head, assignment) not in entry.rhs:
                    return True
        return False

    def _delta_violates_indexed(
        self,
        entry: _Entry,
        facts: IndexedFactStore,
        relation: str,
        row: Row,
    ) -> bool:
        """Indexed-join counterpart of :meth:`_delta_violates`.

        Same seed enumeration, but the remaining atoms are joined through
        the store's hash indexes in greedy selectivity order
        (:func:`repro.search.joinplan.join_escapes_rhs`) instead of by
        linear scans.  The two strategies agree on every verdict.
        """
        for atom_index in entry.seeds[relation]:
            seed = match_atom(entry.atoms[atom_index], row, {})
            if seed is None:
                continue
            rest = entry.atoms[:atom_index] + entry.atoms[atom_index + 1:]
            if join_escapes_rhs(
                facts,
                rest,
                entry.comparisons,
                entry.head,
                entry.rhs,
                seed,
                entry.relevant,
            ):
                return True
        return False


#: Trail record of one push: ``(relation, row, added, newly_violated)``.
#: One trail frame: ``(relation, row, actually_added, newly_violated_ids)``.
_TrailEntry = tuple[str, "Row", bool, frozenset[int]]


class CheckerSession:
    """A push/pop snapshot stack over a session-owned fact store.

    ``push(relation, row)`` adds a tuple and returns whether the store still
    satisfies every constraint; ``pop()`` undoes the most recent push
    exactly (facts *and* violation bookkeeping).  Pushing a tuple that is
    already present is a recorded no-op: the verdict is unchanged and the
    matching ``pop()`` does not remove the tuple.

    The monotonicity of CQ answers in the fact store makes the bookkeeping
    exact: a push can only introduce violations, never repair one, so the
    set of violated constraints is the union of the per-push violation sets
    on the trail (plus any atom-free base violations fixed at checker
    construction).
    """

    __slots__ = ("_checker", "facts", "_trail", "_violated", "_retracted")

    def __init__(
        self, checker: ConstraintChecker, relation_names: Iterable[str] = ()
    ) -> None:
        self._checker = checker
        # A dict[str, set[Row]] subclass: plain mapping reads everywhere,
        # with lazily built hash indexes (and value interning) maintained by
        # the push/pop mutators when the checker runs indexed delta joins.
        self.facts: IndexedFactStore = IndexedFactStore(
            relation_names, intern_values=checker.uses_indexes
        )
        self._trail: list[_TrailEntry] = []
        self._violated: set[int] = set(checker._base_violations)
        self._retracted = False

    @property
    def depth(self) -> int:
        """The number of pushes currently on the trail."""
        return len(self._trail)

    @property
    def is_satisfied(self) -> bool:
        """Whether the current fact store satisfies every constraint."""
        return not self._violated

    def violated_constraints(self) -> list[ContainmentConstraint]:
        """The constraints currently violated, in input order."""
        entries = self._checker._entries
        return [entries[index].constraint for index in sorted(self._violated)]

    def push(self, relation: str, row: Row) -> bool:
        """Add ``row`` to ``relation``; return whether all constraints hold."""
        row, added = self.facts.add_row(relation, row)
        if not added:
            self._trail.append((relation, row, False, frozenset()))
            return not self._violated
        try:
            fresh = self._checker._newly_violated(
                self.facts, relation, row, self._violated
            )
        except BaseException:
            # Exception-safe unwind (reprolint R002): the row — and every
            # index entry it contributed — must not outlive a failed push,
            # or the trail would no longer mirror the store.
            self.facts.discard_row(relation, row)
            raise
        self._violated |= fresh
        self._trail.append((relation, row, True, fresh))
        return not self._violated

    def pop(self) -> None:
        """Undo the most recent push (facts, index entries, violation state)."""
        if self._retracted:
            raise SearchError(
                "pop() after retract(): a retraction invalidates the per-push "
                "violation attribution, so the trail no longer mirrors the "
                "store; use a fresh session for push/pop search"
            )
        if not self._trail:
            raise SearchError("pop() without a matching push()")
        relation, row, added, fresh = self._trail.pop()
        if added:
            self.facts.discard_row(relation, row)
        self._violated -= fresh

    def retract(self, relation: str, row: Row) -> bool:
        """Remove ``row`` from ``relation`` out of push order (update path).

        Unlike :meth:`pop`, which unwinds the *most recent* push, a
        retraction removes an arbitrary present tuple — the primitive the
        incremental-update layer (:meth:`repro.api.Database.update`) needs
        for drops.  CQ monotonicity means removing a tuple can only *repair*
        violations, never introduce one, so the verdict is refreshed by
        fully re-evaluating exactly the constraints whose left-hand side
        mentions ``relation``.

        Retraction trades the trail for flexibility: the per-push violation
        attribution no longer matches the store afterwards, so subsequent
        :meth:`pop` calls raise.  Sessions used for backtracking search
        should never retract; sessions owned by the update layer never pop.

        Returns whether the row was present (and therefore removed).
        """
        row = self.facts.intern_row(row)
        if not self.facts.discard_row(relation, row):
            return False
        self._retracted = True
        for index, entry in enumerate(self._checker._entries):
            if relation not in entry.relations:
                continue
            if evaluate_cq_on_facts(entry.constraint.query, self.facts) <= entry.rhs:
                self._violated.discard(index)
            else:
                self._violated.add(index)
        return True

    def mark(self) -> int:
        """A snapshot token for :meth:`pop_to` (the current trail depth)."""
        return len(self._trail)

    def pop_to(self, mark: int) -> None:
        """Pop until the trail is back at the given snapshot token."""
        while len(self._trail) > mark:
            self.pop()

    def check_full(self) -> bool:
        """Full re-evaluation of the current store (cross-check helper)."""
        return self._checker.check(self.facts)
