"""Containment constraints and classical dependencies.

Containment constraints (CCs) relate a partially closed database to master
data (Section 2.1).  Classical dependencies — FDs, INDs, CFDs and denial
constraints — can either be encoded as CCs (keeping the completeness analysis
decidable) or, for FD + IND sets over the database itself, make the analysis
undecidable (Proposition 3.1); both sides of that story live here.
"""

from repro.constraints.containment import (
    ContainmentConstraint,
    EmptyRHS,
    ProjectionQuery,
    cc,
    constraint_set_constants,
    constraint_set_variables,
    denial_cc,
    projection,
    relation_containment_cc,
    satisfies_all,
    violated_constraints,
)
from repro.constraints.dependencies import (
    WILDCARD,
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    cfd,
    fd,
    ind,
    satisfies_dependencies,
)
from repro.constraints.encode import (
    cfd_as_ccs,
    denial_as_cc,
    encode_dependencies,
    fd_as_ccs,
    ind_to_master_as_cc,
)
from repro.constraints.integrity import (
    attribute_closure,
    chase_fd_ind,
    counterexample_instance,
    fd_implies,
    is_key,
    minimal_keys,
)

__all__ = [
    "ConditionalFunctionalDependency",
    "ContainmentConstraint",
    "DenialConstraint",
    "EmptyRHS",
    "FunctionalDependency",
    "InclusionDependency",
    "ProjectionQuery",
    "WILDCARD",
    "attribute_closure",
    "cc",
    "cfd",
    "cfd_as_ccs",
    "chase_fd_ind",
    "constraint_set_constants",
    "constraint_set_variables",
    "counterexample_instance",
    "denial_as_cc",
    "denial_cc",
    "encode_dependencies",
    "fd",
    "fd_as_ccs",
    "fd_implies",
    "ind",
    "ind_to_master_as_cc",
    "is_key",
    "minimal_keys",
    "projection",
    "relation_containment_cc",
    "satisfies_all",
    "satisfies_dependencies",
    "violated_constraints",
]
