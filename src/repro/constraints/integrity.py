"""Integrity-constraint reasoning: FD closure, implication, and the chase.

Proposition 3.1 reduces the (undecidable) implication problem for FDs + INDs
to RCDP/RCQP in the presence of such constraints.  To exercise that reduction
the library needs the decidable fragments of the implication problem:

* implication for FDs alone — decidable in linear time via attribute closure
  (Armstrong); and
* a *bounded* chase for FDs + INDs — sound (a proof of implication found
  within the bound is a real proof) but incomplete in general, exactly as one
  expects for an undecidable problem.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.constraints.dependencies import (
    FunctionalDependency,
    InclusionDependency,
)
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance
from repro.relational.schema import DatabaseSchema


def attribute_closure(
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
    relation: str | None = None,
) -> frozenset[str]:
    """The closure ``X⁺`` of an attribute set under a set of FDs.

    When ``relation`` is given, only FDs over that relation participate.
    """
    closure = set(attributes)
    applicable = [
        dependency
        for dependency in fds
        if relation is None or dependency.relation == relation
    ]
    changed = True
    while changed:
        changed = False
        for dependency in applicable:
            if set(dependency.lhs) <= closure and not set(dependency.rhs) <= closure:
                closure |= set(dependency.rhs)
                changed = True
    return frozenset(closure)


def fd_implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Whether a set of FDs logically implies another FD (same relation)."""
    relevant = [d for d in fds if d.relation == candidate.relation]
    closure = attribute_closure(candidate.lhs, relevant, relation=candidate.relation)
    return set(candidate.rhs) <= closure


def is_key(
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
    schema: DatabaseSchema,
    relation: str,
) -> bool:
    """Whether the attribute set is a (super)key of the relation under the FDs."""
    closure = attribute_closure(attributes, fds, relation=relation)
    return set(schema[relation].attribute_names) <= closure


def minimal_keys(
    fds: Sequence[FunctionalDependency], schema: DatabaseSchema, relation: str
) -> list[frozenset[str]]:
    """All minimal keys of a relation under the given FDs (exponential search)."""
    attributes = schema[relation].attribute_names
    keys: list[frozenset[str]] = []
    for size in range(1, len(attributes) + 1):
        for combo in itertools.combinations(attributes, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_key(candidate, fds, schema, relation):
                keys.append(candidate)
    return keys


def chase_fd_ind(
    schema: DatabaseSchema,
    fds: Sequence[FunctionalDependency],
    inds: Sequence[InclusionDependency],
    candidate: FunctionalDependency,
    max_steps: int = 200,
) -> bool | None:
    """Bounded chase test of ``Θ |= φ`` for mixed FD + IND sets.

    Returns ``True`` if the candidate FD is implied (the chase of the standard
    two-tuple counterexample instance equates the target attributes within the
    step bound), ``False`` if the chase terminates without equating them, and
    ``None`` when the step budget is exhausted (the problem is undecidable in
    general, so non-termination is expected for adversarial inputs).
    """
    rel_schema = schema[candidate.relation]

    # Build the canonical two-tuple instance over labelled nulls (ints).
    counter = itertools.count(1)
    lhs = set(candidate.lhs)
    first: list[int] = []
    second: list[int] = []
    for attribute in rel_schema.attribute_names:
        value = next(counter)
        first.append(value)
        if attribute in lhs:
            second.append(value)
        else:
            second.append(next(counter))

    facts: dict[str, set[tuple[int, ...]]] = {name: set() for name in schema.relation_names}
    facts[candidate.relation] = {tuple(first), tuple(second)}

    def apply_equality(a: int, b: int) -> None:
        if a == b:
            return
        keep, drop = (a, b) if a < b else (b, a)
        for name, rows in facts.items():
            facts[name] = {
                tuple(keep if value == drop else value for value in row) for row in rows
            }

    steps = 0
    changed = True
    while changed:
        changed = False
        steps += 1
        if steps > max_steps:
            return None
        # FD rules: equate RHS values of tuples agreeing on the LHS.
        for dependency in fds:
            rel = schema[dependency.relation]
            lhs_pos = [rel.position_of(a) for a in dependency.lhs]
            rhs_pos = [rel.position_of(a) for a in dependency.rhs]
            rows = list(facts.get(dependency.relation, ()))
            for i, row_a in enumerate(rows):
                for row_b in rows[i + 1:]:
                    if all(row_a[p] == row_b[p] for p in lhs_pos):
                        for p in rhs_pos:
                            if row_a[p] != row_b[p]:
                                apply_equality(row_a[p], row_b[p])
                                changed = True
        # IND rules: copy projected tuples into the target relation with fresh nulls.
        for dependency in inds:
            src = schema[dependency.source_relation]
            tgt = schema[dependency.target_relation]
            src_pos = [src.position_of(a) for a in dependency.source_attributes]
            tgt_pos = [tgt.position_of(a) for a in dependency.target_attributes]
            target_rows = facts.get(dependency.target_relation, set())
            existing_projections = {
                tuple(row[p] for p in tgt_pos) for row in target_rows
            }
            for row in list(facts.get(dependency.source_relation, ())):
                projection = tuple(row[p] for p in src_pos)
                if projection in existing_projections:
                    continue
                fresh_row = [next(counter) for _ in tgt.attribute_names]
                for value, position in zip(projection, tgt_pos):
                    fresh_row[position] = value
                facts[dependency.target_relation].add(tuple(fresh_row))
                existing_projections.add(projection)
                changed = True

    # After the chase converges, check whether the target attributes were equated.
    rhs_pos = [rel_schema.position_of(a) for a in candidate.rhs]
    rows = list(facts[candidate.relation])
    lhs_pos = [rel_schema.position_of(a) for a in candidate.lhs]
    for i, row_a in enumerate(rows):
        for row_b in rows[i + 1:]:
            if all(row_a[p] == row_b[p] for p in lhs_pos):
                if any(row_a[p] != row_b[p] for p in rhs_pos):
                    return False
    return True


def counterexample_instance(
    schema: DatabaseSchema,
    candidate: FunctionalDependency,
    values: tuple[Constant, Constant] = (0, 1),
) -> GroundInstance:
    """The canonical two-tuple instance violating ``candidate`` and nothing forced.

    Used by tests of the Proposition 3.1 reduction: the instance satisfies any
    FD whose left-hand side is *not* contained in the candidate's, and
    violates the candidate itself.
    """
    rel_schema = schema[candidate.relation]
    lhs = set(candidate.lhs)
    low, high = values
    first = []
    second = []
    for attribute in rel_schema.attribute_names:
        if attribute in lhs:
            first.append(low)
            second.append(low)
        else:
            first.append(low)
            second.append(high)
    return GroundInstance(schema, {candidate.relation: [tuple(first), tuple(second)]})
