"""Containment constraints (CCs).

A containment constraint (Section 2.1) has the form ``q(R) ⊆ p(R_m)`` where
``q`` is a conjunctive query (with ``=`` and ``≠``) over the database schema
``R`` and ``p`` is a projection query over the master schema ``R_m``.  A
ground instance ``I`` and master data ``D_m`` satisfy the constraint iff
``q(I) ⊆ p(D_m)``.

The right-hand side ``p`` is allowed to be:

* a projection of a master relation (the common case, e.g. Example 2.1),
* a full master relation (projection on all attributes), or
* an arbitrary CQ over the master schema — strictly more general than the
  paper requires, which is convenient for writing the gadget constraints of
  the lower-bound proofs exactly as stated.

The special case of an *empty* right-hand side (a projection of an empty
master relation, written ``q ⊆ D_∅`` in the paper) is what turns a CC into a
denial constraint; :func:`denial_cc` builds it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import ConstraintError
from repro.queries.atoms import RelationAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_cq
from repro.queries.terms import Variable, variables as make_variables
from repro.relational.instance import GroundInstance, Row
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema


@dataclass(frozen=True)
class ProjectionQuery:
    """A projection query ``π_attributes(R_m)`` over a master relation.

    The degenerate case with ``attributes = None`` projects on all attributes
    (i.e. it is the master relation itself).
    """

    relation: str
    attributes: tuple[str, ...] | None = None

    def evaluate(self, master: MasterData) -> frozenset[Row]:
        """The set of tuples the projection yields on the master data."""
        rel = master.relation(self.relation)
        if self.attributes is None:
            return rel.rows
        positions = [rel.schema.position_of(a) for a in self.attributes]
        return frozenset(tuple(row[p] for p in positions) for row in rel.rows)

    @property
    def arity_hint(self) -> int | None:
        """The output arity if determined by the attribute list."""
        if self.attributes is None:
            return None
        return len(self.attributes)

    def __repr__(self) -> str:
        if self.attributes is None:
            return self.relation
        return f"π[{', '.join(self.attributes)}]({self.relation})"


@dataclass(frozen=True)
class EmptyRHS:
    """The empty right-hand side ``D_∅``: no tuple is allowed on the left."""

    arity: int | None = None

    def evaluate(self, master: MasterData) -> frozenset[Row]:
        """Always the empty set, regardless of the master data."""
        return frozenset()

    def __repr__(self) -> str:
        return "∅"


#: Right-hand sides supported by containment constraints.
RightHandSide = "ProjectionQuery | ConjunctiveQuery | EmptyRHS"


@dataclass(frozen=True)
class ContainmentConstraint:
    """A containment constraint ``q(R) ⊆ p(R_m)``."""

    query: ConjunctiveQuery
    master_query: "ProjectionQuery | ConjunctiveQuery | EmptyRHS"
    name: str = ""

    def __post_init__(self) -> None:
        arity = self.query.arity
        rhs = self.master_query
        if isinstance(rhs, ConjunctiveQuery) and rhs.arity != arity:
            raise ConstraintError(
                f"CC {self.name or self.query.name!r}: left arity {arity} differs "
                f"from right arity {rhs.arity}"
            )
        if isinstance(rhs, ProjectionQuery) and rhs.arity_hint not in (None, arity):
            raise ConstraintError(
                f"CC {self.name or self.query.name!r}: left arity {arity} differs "
                f"from projection arity {rhs.arity_hint}"
            )

    # ------------------------------------------------------------------
    # satisfaction
    # ------------------------------------------------------------------
    def left_answer(self, instance: GroundInstance) -> frozenset[Row]:
        """``q(I)``."""
        return evaluate_cq(self.query, instance)

    def right_answer(self, master: MasterData) -> frozenset[Row]:
        """``p(D_m)``."""
        rhs = self.master_query
        if isinstance(rhs, ConjunctiveQuery):
            return evaluate_cq(rhs, master.instance)
        return rhs.evaluate(master)

    def is_satisfied(self, instance: GroundInstance, master: MasterData) -> bool:
        """Whether ``(I, D_m) |= q ⊆ p``."""
        return self.left_answer(instance) <= self.right_answer(master)

    def violations(
        self, instance: GroundInstance, master: MasterData
    ) -> frozenset[Row]:
        """The tuples of ``q(I)`` that are not covered by ``p(D_m)``."""
        return self.left_answer(instance) - self.right_answer(master)

    # ------------------------------------------------------------------
    # metadata used by the Adom construction and the deciders
    # ------------------------------------------------------------------
    def constants(self) -> set[Constant]:
        """Constants mentioned by the left-hand side query."""
        consts = set(self.query.constants())
        if isinstance(self.master_query, ConjunctiveQuery):
            consts |= self.master_query.constants()
        return consts

    def variables(self) -> set[Variable]:
        """Variables mentioned by the left-hand side query."""
        result = set(self.query.variables())
        if isinstance(self.master_query, ConjunctiveQuery):
            result |= self.master_query.variables()
        return result

    def relation_names(self) -> set[str]:
        """Database relations constrained by the left-hand side."""
        return self.query.relation_names()

    def is_inclusion_dependency(self) -> bool:
        """Whether the CC is an IND-shaped constraint ``π(R) ⊆ π(R_m)``.

        The tractable RCQP cases of Corollary 7.2 apply when every CC has
        this shape: a single relation atom on the left, no comparisons, and a
        projection of a single master relation on the right.
        """
        simple_left = (
            len(self.query.atoms) == 1
            and not self.query.comparisons
            and all(isinstance(t, Variable) for t in self.query.atoms[0].terms)
        )
        simple_right = isinstance(self.master_query, (ProjectionQuery, EmptyRHS))
        return simple_left and simple_right

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.query!r} ⊆ {self.master_query!r}"


def cc(
    query: ConjunctiveQuery,
    master_query: "ProjectionQuery | ConjunctiveQuery | EmptyRHS",
    name: str = "",
) -> ContainmentConstraint:
    """Shorthand constructor for :class:`ContainmentConstraint`."""
    return ContainmentConstraint(query=query, master_query=master_query, name=name)


def projection(relation: str, *attributes: str) -> ProjectionQuery:
    """Shorthand constructor for :class:`ProjectionQuery`."""
    return ProjectionQuery(relation, tuple(attributes) or None)


def denial_cc(query: ConjunctiveQuery, name: str = "") -> ContainmentConstraint:
    """A denial constraint ``q(R) ⊆ ∅`` expressed as a CC.

    Satisfied exactly when ``q(I)`` is empty, independent of master data.
    """
    return ContainmentConstraint(query=query, master_query=EmptyRHS(), name=name)


def relation_containment_cc(
    database_relation: str,
    schema: DatabaseSchema,
    master_relation: str,
    name: str = "",
) -> ContainmentConstraint:
    """The CC ``R ⊆ R_m`` stating a database relation is bounded by a master relation.

    This is the shape used for the gadget relations of the lower-bound proofs
    (e.g. ``R_(0,1) ⊆ R^m_(0,1)`` in Proposition 3.3).
    """
    rel_schema = schema[database_relation]
    vars_ = make_variables([f"{database_relation.lower()}_{a}" for a in rel_schema.attribute_names])
    query = ConjunctiveQuery(
        head=vars_,
        atoms=(RelationAtom(database_relation, vars_),),
        name=f"all_{database_relation}",
    )
    return ContainmentConstraint(
        query=query, master_query=ProjectionQuery(master_relation), name=name
    )


def satisfies_all(
    instance: GroundInstance,
    master: MasterData,
    constraints: Iterable[ContainmentConstraint],
) -> bool:
    """Whether ``(I, D_m) |= V`` for a set ``V`` of CCs."""
    return all(c.is_satisfied(instance, master) for c in constraints)


def violated_constraints(
    instance: GroundInstance,
    master: MasterData,
    constraints: Iterable[ContainmentConstraint],
) -> list[ContainmentConstraint]:
    """The CCs of ``V`` violated by ``(I, D_m)``."""
    return [c for c in constraints if not c.is_satisfied(instance, master)]


def constraint_set_constants(
    constraints: Iterable[ContainmentConstraint],
) -> set[Constant]:
    """All constants mentioned by a set of CCs."""
    result: set[Constant] = set()
    for c in constraints:
        result |= c.constants()
    return result


def constraint_set_variables(
    constraints: Iterable[ContainmentConstraint],
) -> set[Variable]:
    """All variables mentioned by a set of CCs."""
    result: set[Variable] = set()
    for c in constraints:
        result |= c.variables()
    return result
