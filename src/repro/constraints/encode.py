"""Encoding classical dependencies as containment constraints.

Example 2.1 and Section 3 of the paper show how constraints commonly used in
data cleaning can be pushed into the CC formalism, so that a single constraint
language governs both relative completeness and data consistency:

* a functional dependency ``R: X → A`` becomes, for each right-hand-side
  attribute, a CC ``q ⊆ D_∅`` whose left query looks for two tuples agreeing
  on ``X`` but disagreeing on ``A`` (so satisfaction of the CC is exactly
  satisfaction of the FD);
* a denial constraint (a forbidden Boolean CQ pattern) becomes ``q ⊆ D_∅``
  directly;
* a CFD becomes the same shape with the pattern constants folded into the
  query;
* an inclusion dependency *into master data* ``R[X] ⊆ R_m[Y]`` is already a
  CC whose left query is a projection CQ — this is the IND-shaped CC class
  for which RCQP becomes tractable (Corollary 7.2).  INDs between database
  relations require FO on the left and are intentionally *not* encodable
  here; Proposition 3.1 shows why admitting them is fatal.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.containment import (
    ContainmentConstraint,
    EmptyRHS,
    ProjectionQuery,
)
from repro.constraints.dependencies import (
    WILDCARD,
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
)
from repro.exceptions import ConstraintError
from repro.queries.atoms import Comparison, RelationAtom, eq, neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.relational.schema import DatabaseSchema, RelationSchema


def _fresh_vars(prefix: str, schema: RelationSchema) -> list[Variable]:
    return [Variable(f"{prefix}_{attribute}") for attribute in schema.attribute_names]


def fd_as_ccs(
    dependency: FunctionalDependency, schema: DatabaseSchema
) -> list[ContainmentConstraint]:
    """Encode an FD as denial-shaped CCs, one per right-hand-side attribute.

    This is exactly the construction of Example 2.1 (``q_name ⊆ D_∅`` and
    ``q_GD ⊆ D_∅`` for the FD ``NHS → name, GD``).
    """
    rel_schema = schema[dependency.relation]
    constraints = []
    for target in dependency.rhs:
        first = _fresh_vars("t1", rel_schema)
        second = _fresh_vars("t2", rel_schema)
        comparisons: list[Comparison] = []
        for attribute in dependency.lhs:
            position = rel_schema.position_of(attribute)
            comparisons.append(eq(first[position], second[position]))
        target_position = rel_schema.position_of(target)
        comparisons.append(neq(first[target_position], second[target_position]))
        query = ConjunctiveQuery(
            head=(),
            atoms=(
                RelationAtom(dependency.relation, first),
                RelationAtom(dependency.relation, second),
            ),
            comparisons=tuple(comparisons),
            name=f"violates_{dependency.relation}_{'_'.join(dependency.lhs)}_to_{target}",
        )
        constraints.append(
            ContainmentConstraint(
                query=query,
                master_query=EmptyRHS(),
                name=f"fd:{dependency.relation}:{','.join(dependency.lhs)}→{target}",
            )
        )
    return constraints


def denial_as_cc(dependency: DenialConstraint) -> ContainmentConstraint:
    """Encode a denial constraint as a CC with an empty right-hand side."""
    return ContainmentConstraint(
        query=dependency.query,
        master_query=EmptyRHS(),
        name=dependency.name or f"denial:{dependency.query.name}",
    )


def cfd_as_ccs(
    dependency: ConditionalFunctionalDependency, schema: DatabaseSchema
) -> list[ContainmentConstraint]:
    """Encode a CFD as denial-shaped CCs.

    Two kinds of violations are forbidden:

    * two tuples matching the LHS pattern, agreeing on ``X`` but disagreeing
      on a wildcard RHS attribute (the FD-like part), and
    * a single tuple matching the LHS pattern whose RHS attribute differs
      from a constant RHS pattern component (the constant part).
    """
    rel_schema = schema[dependency.relation]
    constraints: list[ContainmentConstraint] = []
    lhs_pattern = dict(zip(dependency.lhs, dependency.lhs_pattern))
    rhs_pattern = dict(zip(dependency.rhs, dependency.rhs_pattern))

    def pattern_comparisons(variables: list[Variable]) -> list[Comparison]:
        comparisons = []
        for attribute, pattern_value in lhs_pattern.items():
            if pattern_value != WILDCARD:
                position = rel_schema.position_of(attribute)
                comparisons.append(eq(variables[position], pattern_value))
        return comparisons

    for target in dependency.rhs:
        target_position = rel_schema.position_of(target)
        pattern_value = rhs_pattern[target]
        if pattern_value == WILDCARD:
            first = _fresh_vars("t1", rel_schema)
            second = _fresh_vars("t2", rel_schema)
            comparisons = pattern_comparisons(first) + pattern_comparisons(second)
            for attribute in dependency.lhs:
                position = rel_schema.position_of(attribute)
                comparisons.append(eq(first[position], second[position]))
            comparisons.append(neq(first[target_position], second[target_position]))
            query = ConjunctiveQuery(
                head=(),
                atoms=(
                    RelationAtom(dependency.relation, first),
                    RelationAtom(dependency.relation, second),
                ),
                comparisons=tuple(comparisons),
                name=f"cfd_fd_part_{dependency.relation}_{target}",
            )
        else:
            row = _fresh_vars("t", rel_schema)
            comparisons = pattern_comparisons(row)
            comparisons.append(neq(row[target_position], pattern_value))
            query = ConjunctiveQuery(
                head=(),
                atoms=(RelationAtom(dependency.relation, row),),
                comparisons=tuple(comparisons),
                name=f"cfd_const_part_{dependency.relation}_{target}",
            )
        constraints.append(
            ContainmentConstraint(
                query=query,
                master_query=EmptyRHS(),
                name=f"cfd:{dependency.relation}:{target}",
            )
        )
    return constraints


def ind_to_master_as_cc(
    dependency: InclusionDependency,
    schema: DatabaseSchema,
    master_schema: DatabaseSchema,
) -> ContainmentConstraint:
    """Encode an IND from a database relation into a master relation as a CC.

    The source relation must belong to the database schema and the target to
    the master schema; the resulting CC has the IND shape recognised by
    :meth:`ContainmentConstraint.is_inclusion_dependency`.
    """
    if dependency.source_relation not in schema:
        raise ConstraintError(
            f"IND source {dependency.source_relation!r} is not a database relation"
        )
    if dependency.target_relation not in master_schema:
        raise ConstraintError(
            f"IND target {dependency.target_relation!r} is not a master relation"
        )
    rel_schema = schema[dependency.source_relation]
    variables = _fresh_vars("s", rel_schema)
    head = tuple(
        variables[rel_schema.position_of(a)] for a in dependency.source_attributes
    )
    query = ConjunctiveQuery(
        head=head,
        atoms=(RelationAtom(dependency.source_relation, variables),),
        name=f"proj_{dependency.source_relation}",
    )
    return ContainmentConstraint(
        query=query,
        master_query=ProjectionQuery(
            dependency.target_relation, tuple(dependency.target_attributes)
        ),
        name=f"ind:{dependency.source_relation}⊆{dependency.target_relation}",
    )


def encode_dependencies(
    dependencies: Iterable,
    schema: DatabaseSchema,
    master_schema: DatabaseSchema | None = None,
) -> list[ContainmentConstraint]:
    """Encode a mixed collection of dependencies as CCs.

    FDs, CFDs and denial constraints become denial-shaped CCs; INDs are only
    accepted when a master schema containing their target is supplied.
    """
    constraints: list[ContainmentConstraint] = []
    for dependency in dependencies:
        if isinstance(dependency, FunctionalDependency):
            constraints.extend(fd_as_ccs(dependency, schema))
        elif isinstance(dependency, ConditionalFunctionalDependency):
            constraints.extend(cfd_as_ccs(dependency, schema))
        elif isinstance(dependency, DenialConstraint):
            constraints.append(denial_as_cc(dependency))
        elif isinstance(dependency, InclusionDependency):
            if master_schema is None:
                raise ConstraintError(
                    "INDs can only be encoded as CCs when they point into master "
                    "data (Proposition 3.1 shows general INDs are fatal)"
                )
            constraints.append(ind_to_master_as_cc(dependency, schema, master_schema))
        else:
            raise ConstraintError(f"cannot encode {dependency!r} as a CC")
    return constraints
