"""Classical dependencies: FDs, INDs, CFDs and denial constraints.

Section 3 of the paper discusses the impact of integrity constraints on the
analysis of relative completeness: denial constraints and conditional
functional dependencies (CFDs) can be expressed as containment constraints in
CQ (keeping the analysis decidable), whereas adding inclusion dependencies
(INDs) *as constraints on the database itself* makes RCDP and RCQP
undecidable even for CQ (Proposition 3.1).

This module defines the dependency classes themselves and their satisfaction
over ground instances; :mod:`repro.constraints.encode` translates them into
CCs where the paper does, and :mod:`repro.constraints.integrity` provides the
implication machinery (attribute closure for FDs) used by the Proposition 3.1
reduction tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import ConstraintError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_cq
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance
from repro.relational.schema import DatabaseSchema

#: Wildcard symbol for CFD pattern tuples ("_" in the data-quality literature).
WILDCARD = "_"


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``R: X → Y``."""

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        lhs = tuple(lhs)
        rhs = tuple(rhs)
        if not rhs:
            raise ConstraintError("an FD needs at least one right-hand-side attribute")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def is_satisfied(self, instance: GroundInstance) -> bool:
        """Whether the instance satisfies the FD."""
        rel = instance.relation(self.relation)
        schema = rel.schema
        lhs_pos = [schema.position_of(a) for a in self.lhs]
        rhs_pos = [schema.position_of(a) for a in self.rhs]
        seen: dict[tuple[Constant, ...], tuple[Constant, ...]] = {}
        for row in rel.rows:
            key = tuple(row[p] for p in lhs_pos)
            value = tuple(row[p] for p in rhs_pos)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
        return True

    def violating_pairs(
        self, instance: GroundInstance
    ) -> list[tuple[tuple[Constant, ...], tuple[Constant, ...]]]:
        """Pairs of tuples witnessing a violation of the FD."""
        rel = instance.relation(self.relation)
        schema = rel.schema
        lhs_pos = [schema.position_of(a) for a in self.lhs]
        rhs_pos = [schema.position_of(a) for a in self.rhs]
        rows = list(rel.rows)
        violations = []
        for i, first in enumerate(rows):
            for second in rows[i + 1:]:
                same_lhs = all(first[p] == second[p] for p in lhs_pos)
                same_rhs = all(first[p] == second[p] for p in rhs_pos)
                if same_lhs and not same_rhs:
                    violations.append((first, second))
        return violations

    def __repr__(self) -> str:
        return f"{self.relation}: {','.join(self.lhs) or '∅'} → {','.join(self.rhs)}"


@dataclass(frozen=True)
class InclusionDependency:
    """An inclusion dependency ``R1[X1] ⊆ R2[X2]``."""

    source_relation: str
    source_attributes: tuple[str, ...]
    target_relation: str
    target_attributes: tuple[str, ...]

    def __init__(
        self,
        source_relation: str,
        source_attributes: Sequence[str],
        target_relation: str,
        target_attributes: Sequence[str],
    ) -> None:
        source_attributes = tuple(source_attributes)
        target_attributes = tuple(target_attributes)
        if len(source_attributes) != len(target_attributes):
            raise ConstraintError(
                "an IND needs the same number of attributes on both sides"
            )
        if not source_attributes:
            raise ConstraintError("an IND needs at least one attribute")
        object.__setattr__(self, "source_relation", source_relation)
        object.__setattr__(self, "source_attributes", source_attributes)
        object.__setattr__(self, "target_relation", target_relation)
        object.__setattr__(self, "target_attributes", target_attributes)

    def is_satisfied(self, instance: GroundInstance) -> bool:
        """Whether the instance satisfies the IND (both relations in ``instance``)."""
        source = instance.relation(self.source_relation)
        target = instance.relation(self.target_relation)
        src_pos = [source.schema.position_of(a) for a in self.source_attributes]
        tgt_pos = [target.schema.position_of(a) for a in self.target_attributes]
        target_proj = {tuple(row[p] for p in tgt_pos) for row in target.rows}
        return all(
            tuple(row[p] for p in src_pos) in target_proj for row in source.rows
        )

    def __repr__(self) -> str:
        return (
            f"{self.source_relation}[{','.join(self.source_attributes)}] ⊆ "
            f"{self.target_relation}[{','.join(self.target_attributes)}]"
        )


@dataclass(frozen=True)
class ConditionalFunctionalDependency:
    """A conditional functional dependency ``R: (X → Y, tp)``.

    ``pattern`` assigns to each attribute in ``lhs + rhs`` either a constant
    or the wildcard ``"_"``.  The CFD applies only to tuples matching the
    constants on the left-hand side; matching tuples must agree on ``Y``
    whenever they agree on ``X``, and right-hand-side constants in the pattern
    must be taken literally.
    """

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    pattern: tuple[Constant, ...] = field(default=())

    def __init__(
        self,
        relation: str,
        lhs: Sequence[str],
        rhs: Sequence[str],
        pattern: Sequence[Constant] | None = None,
    ) -> None:
        lhs = tuple(lhs)
        rhs = tuple(rhs)
        if not rhs:
            raise ConstraintError("a CFD needs at least one right-hand-side attribute")
        if pattern is None:
            pattern = tuple(WILDCARD for _ in lhs + rhs)
        pattern = tuple(pattern)
        if len(pattern) != len(lhs) + len(rhs):
            raise ConstraintError(
                "a CFD pattern must cover every LHS and RHS attribute"
            )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "pattern", pattern)

    @property
    def lhs_pattern(self) -> tuple[Constant, ...]:
        """The pattern components for the left-hand-side attributes."""
        return self.pattern[: len(self.lhs)]

    @property
    def rhs_pattern(self) -> tuple[Constant, ...]:
        """The pattern components for the right-hand-side attributes."""
        return self.pattern[len(self.lhs):]

    def _matches_lhs(self, row: tuple[Constant, ...], positions: list[int]) -> bool:
        for value, pattern_value in zip(
            (row[p] for p in positions), self.lhs_pattern
        ):
            if pattern_value != WILDCARD and value != pattern_value:
                return False
        return True

    def is_satisfied(self, instance: GroundInstance) -> bool:
        """Whether the instance satisfies the CFD."""
        rel = instance.relation(self.relation)
        schema = rel.schema
        lhs_pos = [schema.position_of(a) for a in self.lhs]
        rhs_pos = [schema.position_of(a) for a in self.rhs]
        matching = [row for row in rel.rows if self._matches_lhs(row, lhs_pos)]
        # Constant RHS pattern components must hold on every matching tuple.
        for row in matching:
            for value, pattern_value in zip(
                (row[p] for p in rhs_pos), self.rhs_pattern
            ):
                if pattern_value != WILDCARD and value != pattern_value:
                    return False
        # Wildcard RHS components behave like an ordinary FD on the matching tuples.
        seen: dict[tuple[Constant, ...], tuple[Constant, ...]] = {}
        for row in matching:
            key = tuple(row[p] for p in lhs_pos)
            value = tuple(row[p] for p in rhs_pos)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
        return True

    def __repr__(self) -> str:
        return (
            f"{self.relation}: ({','.join(self.lhs) or '∅'} → {','.join(self.rhs)}, "
            f"{self.pattern})"
        )


@dataclass(frozen=True)
class DenialConstraint:
    """A denial constraint: a Boolean CQ that must have an empty answer."""

    query: ConjunctiveQuery
    name: str = ""

    def __post_init__(self) -> None:
        if self.query.arity != 0:
            raise ConstraintError("a denial constraint must wrap a Boolean query")

    def is_satisfied(self, instance: GroundInstance) -> bool:
        """Whether the forbidden pattern has no match in the instance."""
        return not evaluate_cq(self.query, instance)

    def __repr__(self) -> str:
        label = self.name or "denial"
        return f"{label}: ¬{self.query!r}"


#: Any classical dependency supported by the library.
Dependency = "FunctionalDependency | InclusionDependency | ConditionalFunctionalDependency | DenialConstraint"


def fd(relation: str, lhs: Sequence[str] | str, rhs: Sequence[str] | str) -> FunctionalDependency:
    """Shorthand constructor for :class:`FunctionalDependency`.

    Attribute lists may be given as comma/space separated strings.
    """
    return FunctionalDependency(relation, _attrs(lhs), _attrs(rhs))


def ind(
    source_relation: str,
    source_attributes: Sequence[str] | str,
    target_relation: str,
    target_attributes: Sequence[str] | str,
) -> InclusionDependency:
    """Shorthand constructor for :class:`InclusionDependency`."""
    return InclusionDependency(
        source_relation, _attrs(source_attributes), target_relation, _attrs(target_attributes)
    )


def cfd(
    relation: str,
    lhs: Sequence[str] | str,
    rhs: Sequence[str] | str,
    pattern: Sequence[Constant] | None = None,
) -> ConditionalFunctionalDependency:
    """Shorthand constructor for :class:`ConditionalFunctionalDependency`."""
    return ConditionalFunctionalDependency(relation, _attrs(lhs), _attrs(rhs), pattern)


def _attrs(spec: Sequence[str] | str) -> tuple[str, ...]:
    if isinstance(spec, str):
        return tuple(p for p in spec.replace(",", " ").split() if p)
    return tuple(spec)


def satisfies_dependencies(
    instance: GroundInstance, dependencies: Iterable
) -> bool:
    """Whether the instance satisfies every dependency in the collection."""
    return all(dep.is_satisfied(instance) for dep in dependencies)


def schema_has_relation(schema: DatabaseSchema, dependency: Dependency) -> bool:
    """Whether the dependency's relation(s) exist in the schema."""
    if isinstance(dependency, InclusionDependency):
        return (
            dependency.source_relation in schema
            and dependency.target_relation in schema
        )
    if isinstance(dependency, DenialConstraint):
        return all(name in schema for name in dependency.query.relation_names())
    return dependency.relation in schema
