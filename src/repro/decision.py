"""Rich decision results: the :class:`Decision` object every decider returns.

Historically every decision procedure in :mod:`repro.completeness` returned a
bare ``bool``, and callers that wanted more — the witness world refuting
strong completeness, the certain answers behind a weak-completeness verdict,
how much work the world-search engine did — had to call a second,
problem-specific function (``find_*_witness``, ``weak_completeness_report``,
``rcqp_bounded_search``).  :class:`Decision` unifies those surfaces:

* ``holds`` — the verdict; ``__bool__`` returns it, so every old call site
  (``if is_consistent(...)``, ``assert not rcdp(...)``) keeps working;
* ``witness`` — the concrete evidence, when one exists: a possible world for
  consistency, a :class:`~repro.completeness.strong.StrongIncompletenessWitness`
  counterexample for the strong model, a complete ground instance for RCQP;
* ``value`` — the non-boolean payload of counting/report problems (a model
  count, the certain-answer pair of the weak model);
* ``engine_used`` / ``stats`` — which world-search engine ran and what it
  did (search nodes, CNF clauses, worlds enumerated, wall time);
* ``details`` — the legacy report dataclass, where one existed, reachable
  through deprecation-shimmed properties (``.found``,
  ``.certain_over_models``, …) so pre-redesign attribute access still works
  but warns.

Equality is *verdict* equality: two :class:`Decision` objects compare equal
when they answer the same problem the same way, regardless of which engine
produced them or which witness it happened to find first.  This is what lets
differential tests assert ``decide(engine="sat") == decide(engine="naive")``
even though the engines surface different (equally valid) witnesses.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from types import TracebackType
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.completeness.models import CompletenessModel
    from repro.protocols import WorldSearchEngine


def json_safe(value: Any) -> Any:
    """A best-effort JSON-safe projection of an arbitrary payload.

    Scalars pass through, mappings become string-keyed dicts, sequences
    become lists, and sets become deterministically sorted lists; anything
    else (witness worlds, report dataclasses, …) is rendered through
    ``repr`` so the projection never fails.  The result always survives
    ``json.dumps`` — this is the folding :meth:`Decision.to_dict` and the
    service wire format use instead of ad-hoc ``getattr`` chains.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {
            str(key): json_safe(val)
            for key, val in sorted(value.items(), key=lambda item: str(item[0]))
        }
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    return repr(value)


@dataclass(frozen=True)
class DecisionStats:
    """What the engines did while a decision was being computed.

    ``None`` fields mean "not applicable to the engine(s) that ran" — the
    naive scan has no CNF clauses, the SAT engine no search nodes.
    """

    wall_time: float = 0.0
    searches: int = 0
    nodes: int | None = None
    clauses: int | None = None
    worlds: int | None = None
    candidates_examined: int | None = None
    #: whether any engine run joined its delta checks over hash indexes
    #: (:mod:`repro.relational.indexing`); ``None`` when no engine that ran
    #: reports the flag (e.g. SAT or naive enumeration).
    uses_indexes: bool | None = None
    #: whether the decision was served from the :class:`repro.api.Database`
    #: decision cache (no engine ran; the other counters describe the
    #: original run that populated the cache).
    cache_hit: bool = False
    #: whether a SAT run reused the live incremental solver kept across
    #: :meth:`repro.api.Database.update` calls; ``None`` when no engine that
    #: ran reports the flag (non-SAT engines, or a freshly built encoding).
    reused_solver: bool | None = None
    #: counter-example rounds run by lazily encoded (CEGAR) SAT searches;
    #: ``None`` when no lazy encoding ran.
    cegar_rounds: int | None = None
    #: clause-graph components counted independently by the SAT engine's
    #: component-caching counter; ``None`` when that path never ran.
    components: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """The stats as a JSON-serialisable dict (every field, ``None`` kept).

        This is the wire format of :mod:`repro.service`: each response
        carries the full stats record so clients can observe cache hits,
        solver reuse and engine effort per request.
        """
        return asdict(self)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"Decision.{old} is a deprecation shim for the pre-2.0 report "
        f"dataclasses; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True, eq=False)
class Decision:
    """The outcome of one decision procedure, with evidence attached.

    ``bool(decision)`` is the verdict; ``decision == True`` and
    ``decision == other_decision`` compare verdicts (see the module
    docstring), so both old boolean call sites and cross-engine differential
    assertions keep working unchanged.
    """

    holds: bool
    problem: str
    model: "CompletenessModel | None" = None
    witness: Any = None
    value: Any = None
    details: Any = None
    engine_used: str | None = None
    exact: bool = True
    stats: DecisionStats = field(default_factory=DecisionStats)

    # ------------------------------------------------------------------
    # boolean compatibility
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return self.holds

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Decision):
            return self.holds == other.holds and self.value == other.value
        if isinstance(other, bool):
            return self.holds is other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.holds)

    def __repr__(self) -> str:
        parts = [f"holds={self.holds}"]
        if self.model is not None:
            parts.append(f"model={self.model.value}")
        if self.value is not None:
            parts.append(f"value={self.value!r}")
        if not self.exact:
            parts.append("exact=False")
        # The witness and engine are deliberately omitted: equal verdicts
        # from different engines must read identically in differential logs.
        return f"Decision({self.problem}: {', '.join(parts)})"

    def __str__(self) -> str:
        return str(self.holds)

    def with_(self, **changes: Any) -> "Decision":
        """A copy of the decision with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self, *, include_witness: bool = False) -> dict[str, Any]:
        """The decision as a JSON-serialisable dict.

        ``value`` and (when requested) ``witness`` go through
        :func:`json_safe`, so arbitrary payloads — frozensets of rows, a
        witness :class:`~repro.relational.instances.GroundInstance`, the
        weak-model report — degrade to deterministic JSON rather than
        failing ``json.dumps``.  ``details`` (the deprecated pre-2.0 report
        object) is deliberately not serialised; its information is already
        in ``value``/``witness``.  The witness defaults to off because it
        can be large and many callers only want the verdict and stats.
        """
        payload: dict[str, Any] = {
            "holds": self.holds,
            "problem": self.problem,
            "model": None if self.model is None else self.model.value,
            "value": json_safe(self.value),
            "engine_used": self.engine_used,
            "exact": self.exact,
            "stats": self.stats.to_dict(),
        }
        if include_witness:
            payload["witness"] = json_safe(self.witness)
        return payload

    # ------------------------------------------------------------------
    # deprecation shims for the pre-2.0 report dataclasses
    # ------------------------------------------------------------------
    @property
    def found(self) -> bool:
        """Deprecated alias of ``holds`` (was ``RCQPWitness.found``)."""
        _deprecated("found", "Decision.holds")
        return self.holds

    @property
    def instances_examined(self) -> int | None:
        """Deprecated (was ``RCQPWitness.instances_examined``)."""
        _deprecated("instances_examined", "Decision.stats.candidates_examined")
        return self.stats.candidates_examined

    @property
    def is_weakly_complete(self) -> bool:
        """Deprecated alias of ``holds`` (was ``WeakCompletenessReport.is_weakly_complete``)."""
        _deprecated("is_weakly_complete", "Decision.holds")
        return self.holds

    @property
    def certain_over_models(self) -> Any:
        """Deprecated (was ``WeakCompletenessReport.certain_over_models``)."""
        _deprecated("certain_over_models", "Decision.details.certain_over_models")
        return self.details.certain_over_models

    @property
    def certain_over_extensions(self) -> Any:
        """Deprecated (was ``WeakCompletenessReport.certain_over_extensions``)."""
        _deprecated(
            "certain_over_extensions", "Decision.details.certain_over_extensions"
        )
        return self.details.certain_over_extensions

    @property
    def no_world_has_extensions(self) -> bool:
        """Deprecated (was ``WeakCompletenessReport.no_world_has_extensions``)."""
        _deprecated(
            "no_world_has_extensions", "Decision.details.no_world_has_extensions"
        )
        return self.details.no_world_has_extensions


# ---------------------------------------------------------------------------
# recording decider runs
# ---------------------------------------------------------------------------
def aggregate_search_stats(
    searches: "Sequence[WorldSearchEngine]", wall_time: float
) -> DecisionStats:
    """Fold the stats of every engine object a decider created into one record.

    Works across the heterogeneous per-engine stats shapes: ``nodes`` comes
    from the tree-search engines, ``clauses`` from SAT encodings, ``worlds``
    from any engine that enumerated.
    """
    nodes: int | None = None
    clauses: int | None = None
    worlds: int | None = None
    uses_indexes: bool | None = None
    reused_solver: bool | None = None
    cegar_rounds: int | None = None
    components: int | None = None
    for search in searches:
        stats = getattr(search, "stats", None)
        if stats is None:
            continue
        got_nodes = getattr(stats, "nodes", None)
        if got_nodes is not None:
            nodes = (nodes or 0) + got_nodes
        encoding = getattr(stats, "encoding", None)
        if encoding is not None and getattr(encoding, "clauses", None) is not None:
            clauses = (clauses or 0) + encoding.clauses
        if encoding is not None and getattr(encoding, "lazy", False):
            cegar_rounds = (cegar_rounds or 0) + getattr(
                encoding, "cegar_rounds", 0
            )
        got_worlds = getattr(stats, "worlds", None)
        if got_worlds is not None:
            worlds = (worlds or 0) + got_worlds
        got_indexes = getattr(stats, "uses_indexes", None)
        if got_indexes is not None:
            uses_indexes = bool(uses_indexes) or bool(got_indexes)
        got_reused = getattr(stats, "reused_solver", None)
        if got_reused is not None:
            reused_solver = bool(reused_solver) or bool(got_reused)
        got_components = getattr(stats, "components", None)
        if got_components is not None:
            components = (components or 0) + got_components
    return DecisionStats(
        wall_time=wall_time,
        searches=len(searches),
        nodes=nodes,
        clauses=clauses,
        worlds=worlds,
        uses_indexes=uses_indexes,
        reused_solver=reused_solver,
        cegar_rounds=cegar_rounds,
        components=components,
    )


#: Sentinel distinguishing "this decider never consults a world-search
#: engine" (leave the parameter at the default) from "the caller asked for
#: the default engine" (pass ``engine=None`` through).
NO_ENGINE = object()


class DecisionRecorder:
    """Times a decider run and collects the engine objects it creates.

    Used as a context manager around the body of a decision procedure::

        rec = DecisionRecorder("consistency", engine)
        with rec:
            witness = ...        # any engine created inside is recorded
        return rec.decision(witness is not None, witness=witness)

    Engine creation is observed through the registry's ambient collector
    (:func:`repro.search.registry.collect_searches`), so nothing needs to be
    threaded through intermediate calls; nested recorders each see every
    engine created within their own scope.
    """

    def __init__(
        self,
        problem: str,
        engine: Any = NO_ENGINE,
        *,
        model: "CompletenessModel | None" = None,
        exact: bool = True,
    ) -> None:
        from repro.search.registry import resolve_engine_name

        self.problem = problem
        self.model = model
        self.exact = exact
        self.engine_used = (
            None if engine is NO_ENGINE else resolve_engine_name(engine)
        )
        self._searches: "list[WorldSearchEngine]" = []
        self._start = 0.0
        self.wall_time = 0.0
        self._collector: Any = None

    def __enter__(self) -> "DecisionRecorder":
        from repro.search.registry import collect_searches

        self._collector = collect_searches(self._searches)
        self._collector.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.wall_time = time.perf_counter() - self._start
        assert self._collector is not None
        self._collector.__exit__(exc_type, exc, tb)
        self._collector = None

    def decision(
        self,
        holds: bool,
        *,
        witness: Any = None,
        value: Any = None,
        details: Any = None,
        candidates_examined: int | None = None,
    ) -> Decision:
        """Build the :class:`Decision` for the recorded run."""
        stats = aggregate_search_stats(self._searches, self.wall_time)
        if candidates_examined is not None:
            stats = replace(stats, candidates_examined=candidates_examined)
        return Decision(
            holds=bool(holds),
            problem=self.problem,
            model=self.model,
            witness=witness,
            value=value,
            details=details,
            engine_used=self.engine_used,
            exact=self.exact,
            stats=stats,
        )
