"""The Theorem 5.1(3) reduction: ``∃X ∀Y ∃Z ψ`` → RCDPʷ for CQ.

Theorem 5.1 proves Πᵖ₃-hardness of the weak-model relatively complete
database problem by reduction from the complement of ``∃*∀*∃*3SAT``.  Given
``φ = ∃X ∀Y ∃Z ψ`` the construction produces a *ground* instance ``I``
(gadget relations plus an empty relation ``R_Y``), master data, CCs forcing
any extension of ``R_Y`` to be a single valid truth assignment of ``Y``, and
a CQ ``Q`` returning the truth assignments ``μ_X`` of ``X`` for which some
``μ_Z`` makes ψ true (given the ``Y``-assignment stored in ``R_Y``).

Then ``φ`` is **true** iff ``I`` is **not** weakly complete for ``Q``
relative to ``(D_m, V)``: a witness assignment ``μ_X`` belongs to the certain
answer over all partially closed extensions but not to ``Q(I)`` (which is
empty because ``R_Y`` is empty).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.containment import (
    ContainmentConstraint,
    ProjectionQuery,
    cc,
    relation_containment_cc,
)
from repro.exceptions import ReductionError
from repro.queries.atoms import RelationAtom, eq, neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.reductions.gadgets import (
    R_AND,
    R_BOOL,
    R_NOT,
    R_OR,
    RM_AND,
    RM_BOOL,
    RM_EMPTY,
    RM_NOT,
    RM_OR,
    and_relation_schema,
    assignment_atoms,
    bool_relation_schema,
    encode_formula,
    gadget_rows,
    master_gadget_rows,
    not_relation_schema,
    or_relation_schema,
)
from repro.reductions.sat import Quantifier, QuantifiedFormula
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema, RelationSchema

#: Name of the relation holding the (initially missing) truth assignment of Y.
R_Y = "R_Y"


@dataclass(frozen=True)
class WeakRCDPReduction:
    """The output of the Theorem 5.1(3) construction."""

    formula: QuantifiedFormula
    schema: DatabaseSchema
    instance: GroundInstance
    master: MasterData
    constraints: list[ContainmentConstraint]
    query: ConjunctiveQuery

    def formula_is_true(self) -> bool:
        """Brute-force truth value of ``φ``."""
        return self.formula.is_true()


def _validate(formula: QuantifiedFormula) -> tuple[list[int], list[int], list[int]]:
    if len(formula.prefix) != 3:
        raise ReductionError("Theorem 5.1 expects an ∃X ∀Y ∃Z prefix")
    outer, middle, inner = formula.prefix
    if outer.quantifier is not Quantifier.EXISTS:
        raise ReductionError("the outer block must be existential")
    if middle.quantifier is not Quantifier.FORALL:
        raise ReductionError("the middle block must be universal")
    if inner.quantifier is not Quantifier.EXISTS:
        raise ReductionError("the inner block must be existential")
    if not outer.variables or not middle.variables:
        raise ReductionError("the X and Y blocks must be non-empty")
    return list(outer.variables), list(middle.variables), list(inner.variables)


def build_weak_rcdp_reduction(formula: QuantifiedFormula) -> WeakRCDPReduction:
    """Instantiate the Theorem 5.1(3) construction for an ``∃X ∀Y ∃Z ψ`` formula."""
    x_vars, y_vars, z_vars = _validate(formula)
    m = len(y_vars)

    # --- schemas ----------------------------------------------------------
    ry_schema = RelationSchema(R_Y, [f"Y{j}" for j in range(1, m + 1)])
    schema = DatabaseSchema(
        [
            bool_relation_schema(R_BOOL),
            or_relation_schema(R_OR),
            and_relation_schema(R_AND),
            not_relation_schema(R_NOT),
            ry_schema,
        ]
    )
    master_schema = DatabaseSchema(
        [
            bool_relation_schema(RM_BOOL),
            or_relation_schema(RM_OR),
            and_relation_schema(RM_AND),
            not_relation_schema(RM_NOT),
            RelationSchema(RM_EMPTY, ["W", "W2"]),
        ]
    )
    master = MasterData(master_schema, master_gadget_rows())

    # --- the ground instance I (R_Y empty) ---------------------------------
    instance = GroundInstance(schema, gadget_rows())

    # --- containment constraints V -----------------------------------------
    constraints: list[ContainmentConstraint] = [
        relation_containment_cc(R_BOOL, schema, RM_BOOL, name="fix_bool"),
        relation_containment_cc(R_OR, schema, RM_OR, name="fix_or"),
        relation_containment_cc(R_AND, schema, RM_AND, name="fix_and"),
        relation_containment_cc(R_NOT, schema, RM_NOT, name="fix_not"),
    ]
    # φ_j: every column of R_Y holds a Boolean value.
    ry_terms = tuple(Variable(f"ry{j}") for j in range(1, m + 1))
    for index in range(m):
        constraints.append(
            cc(
                ConjunctiveQuery(
                    head=(ry_terms[index],),
                    atoms=(RelationAtom(R_Y, ry_terms),),
                    name=f"ry_col_{index + 1}",
                ),
                ProjectionQuery(RM_BOOL),
                name=f"ry_bool_{index + 1}",
            )
        )
    # φ'_j: R_Y holds at most one truth assignment (no two rows differing in
    # any column).
    ry_terms2 = tuple(Variable(f"ry{j}'") for j in range(1, m + 1))
    for index in range(m):
        constraints.append(
            cc(
                ConjunctiveQuery(
                    head=(ry_terms[index], ry_terms2[index]),
                    atoms=(
                        RelationAtom(R_Y, ry_terms),
                        RelationAtom(R_Y, ry_terms2),
                    ),
                    comparisons=(neq(ry_terms[index], ry_terms2[index]),),
                    name=f"ry_unique_{index + 1}",
                ),
                ProjectionQuery(RM_EMPTY),
                name=f"ry_single_{index + 1}",
            )
        )

    # --- the query Q(x̄) ----------------------------------------------------
    qx_terms = {v: Variable(f"qx{v}") for v in x_vars}
    qy_terms = {v: Variable(f"qy{v}") for v in y_vars}
    qz_terms = {v: Variable(f"qz{v}") for v in z_vars}
    encoding = encode_formula(
        formula.matrix, {**qx_terms, **qy_terms, **qz_terms}, prefix="enc"
    )
    atoms = (
        assignment_atoms(qx_terms, bool_relation=R_BOOL)
        + (RelationAtom(R_Y, tuple(qy_terms[v] for v in y_vars)),)
        + assignment_atoms(qz_terms, bool_relation=R_BOOL)
        + encoding.atoms
    )
    query = ConjunctiveQuery(
        head=tuple(qx_terms[v] for v in x_vars),
        atoms=atoms,
        comparisons=(eq(encoding.output, 1),),
        name="Q_thm51",
    )

    return WeakRCDPReduction(
        formula=formula,
        schema=schema,
        instance=instance,
        master=master,
        constraints=constraints,
        query=query,
    )
