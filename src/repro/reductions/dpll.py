"""A DPLL satisfiability solver with watched-literal propagation.

The lower-bound reductions (:mod:`repro.reductions.sat`) and the SAT-backed
world-search engine (:mod:`repro.search.sat_engine`) both need a propositional
solver that scales past the handful of variables the brute-force
``itertools.product`` scan can enumerate.  :class:`DPLLSolver` is a classic
trail-based DPLL procedure hardened with the standard machinery of modern
solvers:

* **unit propagation via two watched literals** — each clause of length ≥ 2
  watches two of its literals and is only inspected when one of them is
  falsified, so propagation cost is proportional to the clauses that can
  actually become unit, not to the clause database size;
* **conflict-driven clause learning (decision scheme)** — every conflict
  learns the negation of the current decision sequence and backjumps to the
  level where that clause asserts, so no decision prefix is ever explored
  twice, even across restarts;
* **conflict-driven restarts** — after a geometrically growing number of
  conflicts the trail is reset to level zero; the learned clauses (and the
  saved phases and variable activities) carry the progress across the
  restart, so restarts redirect the search without losing completeness;
* **dynamic variable activities with phase saving** — variables involved in
  recent conflicts are branched on first, and unassigned variables remember
  the polarity they last held.

Literals follow the DIMACS convention used by :mod:`repro.reductions.sat`:
a literal is a non-zero integer, ``+v`` for variable ``v`` and ``-v`` for its
negation.  Variable identifiers may be arbitrary (sparse) positive integers.

The solver is incremental in the way the world-search engine needs: clauses
may be added between ``solve()`` calls (e.g. blocking clauses during model
enumeration) and each ``solve()`` restarts the search while keeping the
learned clauses, activities and phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReductionError

#: Activity decay applied after every conflict (MiniSat-style bumping).
_ACTIVITY_INC_FACTOR = 1.0 / 0.95
#: Rescale threshold preventing float overflow of activities.
_ACTIVITY_RESCALE = 1e100
#: First restart after this many conflicts; grows geometrically afterwards.
_RESTART_BASE = 64
_RESTART_FACTOR = 1.5


@dataclass
class SolverStats:
    """Counters describing the work done across all ``solve()`` calls."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    solve_calls: int = 0


class DPLLSolver:
    """Trail-based DPLL with watched literals, learning and restarts."""

    def __init__(self, clauses: Iterable[Sequence[int]] = ()) -> None:
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._units: list[int] = []
        self._vars: set[int] = set()
        self._unsat = False

        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0

        self._phase: dict[int, bool] = {}
        self._activity: dict[int, float] = {}
        self._activity_inc = 1.0

        self.stats = SolverStats()
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # clause database
    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates are merged and tautologies dropped.

        Clauses may be added between ``solve()`` calls (the next call picks
        them up); adding the empty clause marks the instance unsatisfiable.
        """
        seen: set[int] = set()
        unique: list[int] = []
        tautology = False
        for lit in literals:
            if lit == 0:
                raise ReductionError("literal 0 is not allowed (DIMACS convention)")
            self._vars.add(abs(lit))
            if lit in seen:
                continue
            if -lit in seen:
                tautology = True  # always satisfied; still register its variables
                continue
            seen.add(lit)
            unique.append(lit)
        if tautology:
            return
        if not unique:
            self._unsat = True
            return
        if len(unique) == 1:
            self._units.append(unique[0])
            return
        self._attach(unique)

    def _attach(self, clause: list[int]) -> int:
        """Store a (length ≥ 2) clause and watch its first two literals."""
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    @property
    def num_clauses(self) -> int:
        """Clauses in the database (input + learned, excluding units)."""
        return len(self._clauses)

    @property
    def variables(self) -> frozenset[int]:
        """All variable identifiers mentioned by the clause database."""
        return frozenset(self._vars)

    # ------------------------------------------------------------------
    # assignment trail
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> bool | None:
        value = self._assign.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int) -> bool:
        """Assert a literal at the current level; ``False`` on conflict."""
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)
        return True

    def _backtrack(self, target_level: int) -> None:
        """Undo all assignments above ``target_level``, saving phases."""
        if len(self._trail_lim) <= target_level:
            return
        cut = self._trail_lim[target_level]
        for lit in reversed(self._trail[cut:]):
            var = abs(lit)
            self._phase[var] = self._assign.pop(var)
            del self._level[var]
        del self._trail[cut:]
        del self._trail_lim[target_level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # propagation (two watched literals)
    # ------------------------------------------------------------------
    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; return a conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            kept: list[int] = []
            conflict: list[int] | None = None
            for cursor, index in enumerate(watchers):
                clause = self._clauses[index]
                # Normalise: the falsified watch sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value(other) is True:
                    kept.append(index)
                    continue
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(clause[1], []).append(index)
                        break
                else:
                    kept.append(index)
                    if self._value(other) is False:
                        kept.extend(watchers[cursor + 1 :])
                        conflict = clause
                        break
                    self.stats.propagations += 1
                    self._enqueue(other)
            self._watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # heuristics
    # ------------------------------------------------------------------
    def _bump(self, variables: Iterable[int]) -> None:
        for var in variables:
            bumped = self._activity.get(var, 0.0) + self._activity_inc
            self._activity[var] = bumped
            if bumped > _ACTIVITY_RESCALE:
                for key in self._activity:
                    self._activity[key] *= 1.0 / _ACTIVITY_RESCALE
                self._activity_inc *= 1.0 / _ACTIVITY_RESCALE
        self._activity_inc *= _ACTIVITY_INC_FACTOR

    def _pick_branch_variable(self) -> int | None:
        best: int | None = None
        best_activity = -1.0
        for var in self._vars:
            if var in self._assign:
                continue
            activity = self._activity.get(var, 0.0)
            if activity > best_activity or (
                activity == best_activity and (best is None or var < best)
            ):
                best = var
                best_activity = activity
        return best

    # ------------------------------------------------------------------
    # conflict handling (decision learning + backjumping)
    # ------------------------------------------------------------------
    def _decision_literals(self) -> list[int]:
        return [self._trail[position] for position in self._trail_lim]

    def _resolve_conflict(self, conflict: list[int]) -> bool:
        """Learn from a conflict; ``False`` when the instance is refuted."""
        self.stats.conflicts += 1
        self._bump(abs(lit) for lit in conflict)
        decisions = self._decision_literals()
        if not decisions:
            return False  # conflict with no decisions: refuted at level 0
        self._bump(abs(lit) for lit in decisions)
        # Decision learning: no completion of (d_1 ∧ ... ∧ d_k) is a model,
        # so learn (¬d_k ∨ ¬d_{k-1} ∨ ... ∨ ¬d_1).  After backjumping to
        # level k-1 the clause is asserting: ¬d_k propagates immediately.
        learned = [-lit for lit in reversed(decisions)]
        self.stats.learned_clauses += 1
        self._backtrack(len(decisions) - 1)
        if len(learned) == 1:
            self._units.append(learned[0])
        else:
            # Watch the asserting literal and the now-deepest decision
            # negation: positions 0 and 1 after the reversal above.
            self._attach(learned)
        return self._enqueue(learned[0])

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
        """A satisfying assignment of every variable, or ``None`` (UNSAT).

        Each call restarts the search from level 0 (clauses added since the
        previous call are picked up) while keeping learned clauses, variable
        activities and saved phases.

        ``assumptions`` are literals the search must satisfy for *this call
        only*: they are installed as the first decisions (in order), so a
        ``None`` result means "unsatisfiable under the assumptions", not
        necessarily globally.  Because conflict analysis learns the negation
        of the decision sequence, clauses learned under assumptions contain
        the negated assumption literals explicitly and remain globally sound
        — they persist safely into later calls with different assumptions.
        This is what lets one solver outlive a stream of incremental updates
        (:mod:`repro.search.sat_engine`'s guarded re-encoding).
        """
        self.stats.solve_calls += 1
        for lit in assumptions:
            if lit == 0:
                raise ReductionError("literal 0 is not allowed (DIMACS convention)")
            self._vars.add(abs(lit))
        self._backtrack(0)
        # Reset level-0 state: re-assert all unit clauses from scratch so
        # clauses added between solve() calls take effect.
        for var in [abs(lit) for lit in self._trail]:
            self._phase[var] = self._assign.pop(var)
            self._level.pop(var, None)
        self._trail.clear()
        self._qhead = 0
        if self._unsat:
            return None
        for lit in self._units:
            if not self._enqueue(lit):
                return None

        conflicts_until_restart = _RESTART_BASE
        while True:
            conflict = self._propagate()
            if conflict is not None:
                if not self._resolve_conflict(conflict):
                    return None
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    self.stats.restarts += 1
                    self._backtrack(0)
                    conflicts_until_restart = int(
                        _RESTART_BASE
                        * _RESTART_FACTOR ** (self.stats.restarts)
                    )
                continue
            # Assumptions first: install each pending assumption as its own
            # decision level before any heuristic branching.  A falsified
            # assumption (by propagation or a learned clause) means UNSAT
            # under the assumptions.
            pending: int | None = None
            for lit in assumptions:
                value = self._value(lit)
                if value is False:
                    return None
                if value is None:
                    pending = lit
                    break
            if pending is not None:
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(pending)
                continue
            variable = self._pick_branch_variable()
            if variable is None:
                return dict(self._assign)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(variable if self._phase.get(variable, False) else -variable)

    def enumerate_models(
        self, project_onto: Sequence[int] | None = None
    ) -> Iterator[dict[int, bool]]:
        """Enumerate satisfying assignments via blocking clauses.

        With ``project_onto`` given, models are enumerated up to their
        restriction to those variables (each projection appears exactly once);
        otherwise full models are blocked one by one.  The blocking clauses
        stay in the solver, so interleaving with :meth:`add_clause` is safe.
        """
        while True:
            model = self.solve()
            if model is None:
                return
            yield model
            scope = project_onto if project_onto is not None else sorted(model)
            blocking = [-var if model[var] else var for var in scope]
            if not blocking:
                return  # nothing to block: the projection admits one model
            self.add_clause(blocking)


def solve_cnf(clauses: Iterable[Sequence[int]]) -> dict[int, bool] | None:
    """One-shot convenience wrapper: solve a clause list with a fresh solver."""
    return DPLLSolver(clauses).solve()


def brute_force_satisfiable(
    clauses: Sequence[Sequence[int]], assignment_limit: int = 1 << 22
) -> bool:
    """Exhaustive satisfiability check, used to cross-validate the solver.

    Kept deliberately independent of :class:`DPLLSolver` (and of
    :class:`repro.reductions.sat.CNFFormula`) so the two implementations share
    no code paths; refuses instances whose assignment space exceeds
    ``assignment_limit``.
    """
    import itertools

    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    if 2 ** len(variables) > assignment_limit:
        raise ReductionError(
            f"brute-force check over {len(variables)} variables exceeds the "
            "assignment limit; use DPLLSolver instead"
        )
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment: Mapping[int, bool] = dict(zip(variables, values))
        if all(
            any(
                assignment[abs(lit)] == (lit > 0)
                for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False
