"""A DPLL satisfiability solver with watched-literal propagation.

The lower-bound reductions (:mod:`repro.reductions.sat`) and the SAT-backed
world-search engine (:mod:`repro.search.sat_engine`) both need a propositional
solver that scales past the handful of variables the brute-force
``itertools.product`` scan can enumerate.  :class:`DPLLSolver` is a classic
trail-based DPLL procedure hardened with the standard machinery of modern
solvers:

* **unit propagation via two watched literals** — each clause of length ≥ 2
  watches two of its literals and is only inspected when one of them is
  falsified, so propagation cost is proportional to the clauses that can
  actually become unit, not to the clause database size;
* **first-UIP conflict-driven clause learning** — every propagation records
  its reason clause, so a conflict is analysed on the implication graph:
  resolving backwards over the current decision level until one literal of
  that level remains (the first unique implication point) yields an
  asserting clause, which is shrunk further by recursive self-subsumption
  minimisation and installed with a non-chronological backjump to its
  asserting level.  The previous decision-sequence scheme (learn the
  negated decision prefix) is kept behind ``learning="decision"`` for
  differential testing;
* **conflict-driven restarts** — after a geometrically growing number of
  conflicts the trail is reset to level zero; the learned clauses (and the
  saved phases and variable activities) carry the progress across the
  restart, so restarts redirect the search without losing completeness;
* **dynamic variable activities with phase saving** — variables involved in
  recent conflicts are branched on first, and unassigned variables remember
  the polarity they last held.

Literals follow the DIMACS convention used by :mod:`repro.reductions.sat`:
a literal is a non-zero integer, ``+v`` for variable ``v`` and ``-v`` for its
negation.  Variable identifiers may be arbitrary (sparse) positive integers.

The solver is incremental in the way the world-search engine needs: clauses
may be added between ``solve()`` calls (e.g. blocking clauses during model
enumeration) and each ``solve()`` restarts the search while keeping the
learned clauses, activities and phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReductionError

#: Activity decay applied after every conflict (MiniSat-style bumping).
_ACTIVITY_INC_FACTOR = 1.0 / 0.95
#: Rescale threshold preventing float overflow of activities.
_ACTIVITY_RESCALE = 1e100
#: First restart after this many conflicts; grows geometrically afterwards.
_RESTART_BASE = 64
_RESTART_FACTOR = 1.5


@dataclass
class SolverStats:
    """Counters describing the work done across all ``solve()`` calls."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    solve_calls: int = 0


class DPLLSolver:
    """Trail-based DPLL with watched literals, learning and restarts."""

    def __init__(
        self,
        clauses: Iterable[Sequence[int]] = (),
        *,
        learning: str = "first_uip",
        stats: SolverStats | None = None,
    ) -> None:
        if learning not in ("first_uip", "decision"):
            raise ReductionError(
                f"unknown learning scheme {learning!r}; "
                "expected 'first_uip' or 'decision'"
            )
        self._learning = learning
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._units: list[int] = []
        self._vars: set[int] = set()
        self._unsat = False

        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, list[int] | None] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0

        self._phase: dict[int, bool] = {}
        self._activity: dict[int, float] = {}
        self._activity_inc = 1.0

        # A caller-supplied ``stats`` lets several solver instances fold
        # their counters into one ledger (the world-search engines build a
        # fresh solver per enumeration but report one set of totals).
        self.stats = SolverStats() if stats is None else stats
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # clause database
    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates are merged and tautologies dropped.

        Clauses may be added between ``solve()`` calls (the next call picks
        them up); adding the empty clause marks the instance unsatisfiable.
        """
        seen: set[int] = set()
        unique: list[int] = []
        tautology = False
        for lit in literals:
            if lit == 0:
                raise ReductionError("literal 0 is not allowed (DIMACS convention)")
            self._vars.add(abs(lit))
            if lit in seen:
                continue
            if -lit in seen:
                tautology = True  # always satisfied; still register its variables
                continue
            seen.add(lit)
            unique.append(lit)
        if tautology:
            return
        if not unique:
            self._unsat = True
            return
        if len(unique) == 1:
            self._units.append(unique[0])
            return
        self._attach(unique)

    def _attach(self, clause: list[int]) -> int:
        """Store a (length ≥ 2) clause and watch its first two literals."""
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    @property
    def num_clauses(self) -> int:
        """Clauses in the database (input + learned, excluding units)."""
        return len(self._clauses)

    @property
    def variables(self) -> frozenset[int]:
        """All variable identifiers mentioned by the clause database."""
        return frozenset(self._vars)

    # ------------------------------------------------------------------
    # assignment trail
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> bool | None:
        value = self._assign.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: list[int] | None = None) -> bool:
        """Assert a literal at the current level; ``False`` on conflict.

        ``reason`` is the clause that forced the literal (``None`` for
        decisions and assumption installs); first-UIP analysis resolves over
        these antecedents to walk the implication graph.
        """
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _backtrack(self, target_level: int) -> None:
        """Undo all assignments above ``target_level``, saving phases."""
        if len(self._trail_lim) <= target_level:
            return
        cut = self._trail_lim[target_level]
        for lit in reversed(self._trail[cut:]):
            var = abs(lit)
            self._phase[var] = self._assign.pop(var)
            del self._level[var]
            self._reason.pop(var, None)
        del self._trail[cut:]
        del self._trail_lim[target_level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # propagation (two watched literals)
    # ------------------------------------------------------------------
    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; return a conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            kept: list[int] = []
            conflict: list[int] | None = None
            for cursor, index in enumerate(watchers):
                clause = self._clauses[index]
                # Normalise: the falsified watch sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value(other) is True:
                    kept.append(index)
                    continue
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(clause[1], []).append(index)
                        break
                else:
                    kept.append(index)
                    if self._value(other) is False:
                        kept.extend(watchers[cursor + 1 :])
                        conflict = clause
                        break
                    self.stats.propagations += 1
                    self._enqueue(other, clause)
            self._watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # heuristics
    # ------------------------------------------------------------------
    def _bump(self, variables: Iterable[int]) -> None:
        for var in variables:
            bumped = self._activity.get(var, 0.0) + self._activity_inc
            self._activity[var] = bumped
            if bumped > _ACTIVITY_RESCALE:
                for key in self._activity:
                    self._activity[key] *= 1.0 / _ACTIVITY_RESCALE
                self._activity_inc *= 1.0 / _ACTIVITY_RESCALE
        self._activity_inc *= _ACTIVITY_INC_FACTOR

    def _pick_branch_variable(self) -> int | None:
        best: int | None = None
        best_activity = -1.0
        for var in self._vars:
            if var in self._assign:
                continue
            activity = self._activity.get(var, 0.0)
            if activity > best_activity or (
                activity == best_activity and (best is None or var < best)
            ):
                best = var
                best_activity = activity
        return best

    # ------------------------------------------------------------------
    # conflict handling (first-UIP / decision learning + backjumping)
    # ------------------------------------------------------------------
    def _decision_literals(self) -> list[int]:
        return [self._trail[position] for position in self._trail_lim]

    def _resolve_conflict(self, conflict: list[int]) -> bool:
        """Learn from a conflict; ``False`` when the instance is refuted."""
        self.stats.conflicts += 1
        if not self._trail_lim:
            return False  # conflict with no decisions: refuted at level 0
        if self._learning == "decision":
            return self._resolve_conflict_decision(conflict)
        return self._resolve_conflict_first_uip(conflict)

    def _resolve_conflict_decision(self, conflict: list[int]) -> bool:
        self._bump(abs(lit) for lit in conflict)
        decisions = self._decision_literals()
        self._bump(abs(lit) for lit in decisions)
        # Decision learning: no completion of (d_1 ∧ ... ∧ d_k) is a model,
        # so learn (¬d_k ∨ ¬d_{k-1} ∨ ... ∨ ¬d_1).  After backjumping to
        # level k-1 the clause is asserting: ¬d_k propagates immediately.
        learned = [-lit for lit in reversed(decisions)]
        self.stats.learned_clauses += 1
        self._backtrack(len(decisions) - 1)
        if len(learned) == 1:
            self._units.append(learned[0])
        else:
            # Watch the asserting literal and the now-deepest decision
            # negation: positions 0 and 1 after the reversal above.
            self._attach(learned)
        return self._enqueue(learned[0])

    def _resolve_conflict_first_uip(self, conflict: list[int]) -> bool:
        """First-UIP analysis over the implication graph.

        Starting from the conflicting clause, repeatedly resolve out the
        most recently assigned current-level literal against its reason
        clause until exactly one current-level literal remains — the first
        unique implication point.  The resulting clause is resolution-derived
        from the clause database alone, so it is globally entailed even when
        the conflict arose under assumptions.
        """
        current_level = len(self._trail_lim)
        seen: set[int] = set()
        others: list[int] = []  # learned literals below the current level
        to_bump: list[int] = []
        path = 0  # current-level literals still awaiting resolution
        uip = 0
        p = 0  # the trail literal just resolved out (skip it in its reason)
        reason = conflict
        index = len(self._trail) - 1
        while True:
            # Reason clauses alias the (watch-swapped, mutable) clause-DB
            # lists, so the resolved literal is skipped by value, never by
            # position.
            for lit in reason:
                if lit == p:
                    continue
                var = abs(lit)
                if var in seen:
                    continue
                level = self._level.get(var, 0)
                if level == 0:
                    continue  # falsified at level 0: resolved away for free
                seen.add(var)
                to_bump.append(var)
                if level >= current_level:
                    path += 1
                else:
                    others.append(lit)
            while abs(self._trail[index]) not in seen:
                index -= 1
            uip = self._trail[index]
            index -= 1
            seen.discard(abs(uip))
            path -= 1
            if path <= 0:
                break
            antecedent = self._reason.get(abs(uip))
            if antecedent is None:  # pragma: no cover - decisions end the walk
                raise ReductionError(
                    "conflict analysis reached a decision before the UIP"
                )
            reason = antecedent
            p = uip
        self._bump(to_bump)
        # ``seen`` now holds exactly the variables of ``others``; use it to
        # drop literals whose negations are implied by the rest of the clause.
        if others:
            cache: dict[int, bool] = {}
            others = [
                lit
                for lit in others
                if not self._literal_redundant(lit, seen, cache)
            ]
        asserting = -uip
        learned = [asserting, *others]
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            self._units.append(asserting)
            self._backtrack(0)
            return self._enqueue(asserting)
        # Backjump to the asserting level: the deepest level among the other
        # literals.  Put one literal of that level at position 1 so the two
        # watches sit on the two deepest literals of the clause.
        jump = 0
        deepest = 1
        for position in range(1, len(learned)):
            level = self._level[abs(learned[position])]
            if level > jump:
                jump = level
                deepest = position
        learned[1], learned[deepest] = learned[deepest], learned[1]
        self._backtrack(jump)
        self._attach(learned)
        return self._enqueue(asserting, learned)

    def _literal_redundant(
        self, lit: int, clause_vars: set[int], cache: dict[int, bool]
    ) -> bool:
        """Recursive learned-clause minimisation (iterative implementation).

        A learned literal is redundant when every antecedent of its variable
        is, transitively, either fixed at level 0 or another variable of the
        learned clause — then the literal is self-subsumed by the rest of
        the clause.  Implemented with an explicit stack: antecedent chains
        can exceed Python's recursion limit on deep implication graphs.
        """

        def antecedent_vars(var: int) -> list[int] | None:
            reason = self._reason.get(var)
            if reason is None:
                return None  # a decision (or assumption): not derivable
            return [
                abs(q)
                for q in reason
                if abs(q) != var and self._level.get(abs(q), 0) > 0
            ]

        root = abs(lit)
        first = antecedent_vars(root)
        if first is None:
            return False
        work: list[tuple[int, list[int], int]] = [(root, first, 0)]
        while work:
            var, ants, pos = work.pop()
            descended = False
            while pos < len(ants):
                ant = ants[pos]
                pos += 1
                if ant in clause_vars or cache.get(ant) is True:
                    continue
                if cache.get(ant) is False:
                    for frame_var, _ants, _pos in work:
                        cache[frame_var] = False
                    cache[var] = False
                    return False
                child = antecedent_vars(ant)
                if child is None:
                    # Bottoms out in a decision: everything on the stack
                    # (including the root) fails.
                    cache[ant] = False
                    for frame_var, _ants, _pos in work:
                        cache[frame_var] = False
                    cache[var] = False
                    return False
                work.append((var, ants, pos))
                work.append((ant, child, 0))
                descended = True
                break
            if descended:
                continue
            cache[var] = True
        return True

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
        """A satisfying assignment of every variable, or ``None`` (UNSAT).

        Each call restarts the search from level 0 (clauses added since the
        previous call are picked up) while keeping learned clauses, variable
        activities and saved phases.

        ``assumptions`` are literals the search must satisfy for *this call
        only*: they are installed as the first decisions (in order), so a
        ``None`` result means "unsatisfiable under the assumptions", not
        necessarily globally.  Clauses learned under assumptions remain
        globally sound under both learning schemes: first-UIP clauses are
        resolution-derived from the clause database alone (assumptions enter
        only as decisions, never as resolvents), and decision-scheme clauses
        contain the negated assumption literals explicitly.  Either way the
        learned clauses persist safely into later calls with different
        assumptions — this is what lets one solver outlive a stream of
        incremental updates (:mod:`repro.search.sat_engine`'s guarded
        re-encoding).
        """
        self.stats.solve_calls += 1
        for lit in assumptions:
            if lit == 0:
                raise ReductionError("literal 0 is not allowed (DIMACS convention)")
            self._vars.add(abs(lit))
        self._backtrack(0)
        # Reset level-0 state: re-assert all unit clauses from scratch so
        # clauses added between solve() calls take effect.
        for var in [abs(lit) for lit in self._trail]:
            self._phase[var] = self._assign.pop(var)
            self._level.pop(var, None)
        self._trail.clear()
        self._reason.clear()
        self._qhead = 0
        if self._unsat:
            return None
        for lit in self._units:
            if not self._enqueue(lit):
                return None

        conflicts_until_restart = _RESTART_BASE
        while True:
            conflict = self._propagate()
            if conflict is not None:
                if not self._resolve_conflict(conflict):
                    return None
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    self.stats.restarts += 1
                    self._backtrack(0)
                    conflicts_until_restart = int(
                        _RESTART_BASE
                        * _RESTART_FACTOR ** (self.stats.restarts)
                    )
                continue
            # Assumptions first: install each pending assumption as its own
            # decision level before any heuristic branching.  A falsified
            # assumption (by propagation or a learned clause) means UNSAT
            # under the assumptions.
            pending: int | None = None
            for lit in assumptions:
                value = self._value(lit)
                if value is False:
                    return None
                if value is None:
                    pending = lit
                    break
            if pending is not None:
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(pending)
                continue
            variable = self._pick_branch_variable()
            if variable is None:
                return dict(self._assign)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(variable if self._phase.get(variable, False) else -variable)

    def enumerate_models(
        self, project_onto: Sequence[int] | None = None
    ) -> Iterator[dict[int, bool]]:
        """Enumerate satisfying assignments via blocking clauses.

        With ``project_onto`` given, models are enumerated up to their
        restriction to those variables (each projection appears exactly once);
        otherwise full models are blocked one by one.  Projected variables
        the clause database has never seen are don't-care: they contribute no
        blocking literal (and do not appear in the yielded models), so an
        unconstrained selector cannot crash the enumeration.  The blocking
        clauses stay in the solver, so interleaving with :meth:`add_clause`
        is safe.
        """
        while True:
            model = self.solve()
            if model is None:
                return
            yield model
            scope = project_onto if project_onto is not None else sorted(model)
            blocking = [
                -var if model[var] else var for var in scope if var in model
            ]
            if not blocking:
                return  # nothing to block: the projection admits one model
            self.add_clause(blocking)


def solve_cnf(clauses: Iterable[Sequence[int]]) -> dict[int, bool] | None:
    """One-shot convenience wrapper: solve a clause list with a fresh solver."""
    return DPLLSolver(clauses).solve()


def brute_force_satisfiable(
    clauses: Sequence[Sequence[int]], assignment_limit: int = 1 << 22
) -> bool:
    """Exhaustive satisfiability check, used to cross-validate the solver.

    Kept deliberately independent of :class:`DPLLSolver` (and of
    :class:`repro.reductions.sat.CNFFormula`) so the two implementations share
    no code paths; refuses instances whose assignment space exceeds
    ``assignment_limit``.
    """
    import itertools

    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    if 2 ** len(variables) > assignment_limit:
        raise ReductionError(
            f"brute-force check over {len(variables)} variables exceeds the "
            "assignment limit; use DPLLSolver instead"
        )
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment: Mapping[int, bool] = dict(zip(variables, values))
        if all(
            any(
                assignment[abs(lit)] == (lit > 0)
                for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False
