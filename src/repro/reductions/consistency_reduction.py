"""The Proposition 3.3 reduction: ``∀X ∃Y ψ`` → consistency / extensibility.

Proposition 3.3 proves Σᵖ₂-hardness of the consistency and extensibility
problems by reduction from ``∀*∃*3SAT``.  Given ``φ = ∀X ∃Y ψ(X, Y)`` the
construction produces

* a database schema with the Figure 2 gadget relations plus ``R_X(X1..Xn)``,
* a c-instance ``T`` whose gadget tables are fixed and whose ``R_X`` table is
  a single all-variable row (one variable per universally quantified
  propositional variable),
* master data consisting of copies of the gadget relations plus an empty
  relation, and
* CCs fixing the gadget tables, forcing ``R_X`` to encode a truth assignment
  of ``X``, and forbidding (via containment in the empty master relation) any
  assignment of ``X`` for which some assignment of ``Y`` satisfies ψ.

Then ``φ`` is **false** iff ``Mod(T, D_m, V) ≠ ∅`` (consistency), and — with
an empty ``R_X`` ground instance — ``φ`` is **true** iff
``Ext(I₀, D_m, V) = ∅`` (extensibility).  The tests instantiate the
construction on small formulas and check both equivalences against the
brute-force QBF solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.containment import (
    ContainmentConstraint,
    ProjectionQuery,
    cc,
    relation_containment_cc,
)
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.exceptions import ReductionError
from repro.queries.atoms import RelationAtom, eq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.reductions.gadgets import (
    R_AND,
    R_BOOL,
    R_NOT,
    R_OR,
    RM_AND,
    RM_BOOL,
    RM_EMPTY,
    RM_NOT,
    RM_OR,
    and_relation_schema,
    assignment_atoms,
    bool_relation_schema,
    encode_formula,
    gadget_rows,
    master_gadget_rows,
    not_relation_schema,
    or_relation_schema,
)
from repro.reductions.sat import Quantifier, QuantifiedFormula
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema, RelationSchema

#: Name of the relation holding the candidate truth assignment of X.
R_X = "R_X"


@dataclass(frozen=True)
class ConsistencyReduction:
    """The output of the Proposition 3.3 construction."""

    formula: QuantifiedFormula
    schema: DatabaseSchema
    cinstance: CInstance
    empty_rx_instance: GroundInstance
    master: MasterData
    constraints: list[ContainmentConstraint]

    def formula_is_true(self) -> bool:
        """Brute-force truth value of ``φ`` (the reduction's source instance)."""
        return self.formula.is_true()


def _validate(formula: QuantifiedFormula) -> tuple[list[int], list[int]]:
    if len(formula.prefix) != 2:
        raise ReductionError("Proposition 3.3 expects a ∀X ∃Y prefix")
    universal, existential = formula.prefix
    if universal.quantifier is not Quantifier.FORALL:
        raise ReductionError("the outer block must be universally quantified")
    if existential.quantifier is not Quantifier.EXISTS:
        raise ReductionError("the inner block must be existentially quantified")
    if not universal.variables:
        raise ReductionError("the universal block must bind at least one variable")
    return list(universal.variables), list(existential.variables)


def build_consistency_reduction(formula: QuantifiedFormula) -> ConsistencyReduction:
    """Instantiate the Proposition 3.3 construction for a ``∀X ∃Y ψ`` formula."""
    x_vars, y_vars = _validate(formula)
    n = len(x_vars)

    # --- database schema -------------------------------------------------
    rx_schema = RelationSchema(R_X, [f"X{i}" for i in range(1, n + 1)])
    schema = DatabaseSchema(
        [
            bool_relation_schema(R_BOOL),
            or_relation_schema(R_OR),
            and_relation_schema(R_AND),
            not_relation_schema(R_NOT),
            rx_schema,
        ]
    )

    # --- master schema and data ------------------------------------------
    master_schema = DatabaseSchema(
        [
            bool_relation_schema(RM_BOOL),
            or_relation_schema(RM_OR),
            and_relation_schema(RM_AND),
            not_relation_schema(RM_NOT),
            RelationSchema(RM_EMPTY, ["W"]),
        ]
    )
    master = MasterData(master_schema, master_gadget_rows())

    # --- the c-instance T --------------------------------------------------
    tx_variables = tuple(Variable(f"x{i}") for i in x_vars)
    tables = {name: rows for name, rows in gadget_rows().items()}
    cinstance = CInstance(
        schema,
        {
            **tables,
            R_X: CTable(rx_schema, [CTableRow(tx_variables)]),
        },
    )
    empty_rx = GroundInstance(schema, gadget_rows())

    # --- containment constraints V ----------------------------------------
    constraints: list[ContainmentConstraint] = [
        relation_containment_cc(R_BOOL, schema, RM_BOOL, name="fix_bool"),
        relation_containment_cc(R_OR, schema, RM_OR, name="fix_or"),
        relation_containment_cc(R_AND, schema, RM_AND, name="fix_and"),
        relation_containment_cc(R_NOT, schema, RM_NOT, name="fix_not"),
    ]

    # Each column of R_X must hold a Boolean value: ∃x_{-i} R_X(x̄) ⊆ Rm_bool.
    rx_terms = tuple(Variable(f"rx{i}") for i in range(1, n + 1))
    for index in range(n):
        constraints.append(
            cc(
                ConjunctiveQuery(
                    head=(rx_terms[index],),
                    atoms=(RelationAtom(R_X, rx_terms),),
                    name=f"rx_col_{index + 1}",
                ),
                ProjectionQuery(RM_BOOL),
                name=f"rx_bool_{index + 1}",
            )
        )

    # q(w) ⊆ Rm_empty: no assignment of X stored in R_X may admit a satisfying
    # assignment of Y.
    qx_terms = {v: Variable(f"qx{v}") for v in x_vars}
    qy_terms = {v: Variable(f"qy{v}") for v in y_vars}
    encoding = encode_formula(formula.matrix, {**qx_terms, **qy_terms}, prefix="enc")
    witness_atoms = (
        (RelationAtom(R_X, tuple(qx_terms[v] for v in x_vars)),)
        + assignment_atoms(qy_terms, bool_relation=R_BOOL)
        + encoding.atoms
    )
    witness_query = ConjunctiveQuery(
        head=(encoding.output,),
        atoms=witness_atoms,
        comparisons=(eq(encoding.output, 1),),
        name="exists_satisfying_y",
    )
    constraints.append(
        cc(witness_query, ProjectionQuery(RM_EMPTY), name="forbid_satisfiable_x")
    )

    return ConsistencyReduction(
        formula=formula,
        schema=schema,
        cinstance=cinstance,
        empty_rx_instance=empty_rx,
        master=master,
        constraints=constraints,
    )
