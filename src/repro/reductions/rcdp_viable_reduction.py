"""The Theorem 6.1 reduction: ``∃X ∀Y ∃Z ψ`` → RCDPᵛ for CQ.

Theorem 6.1 proves Σᵖ₃-hardness of the viable-model relatively complete
database problem for c-instances by reduction from ``∃*∀*∃*3SAT``.  The
construction shares the schema, master data and CCs of the Theorem 4.8
construction (:mod:`repro.reductions.minp_strong_reduction`); the differences
are that the selector relation ``R_s`` holds only ``{1}`` and the query drops
the ``Q_all`` guard:

    ``Q(ȳ) = ∃x̄, z̄, w (Q_X(x̄) ∧ Q_Y(ȳ) ∧ Q_Z(z̄) ∧ Q_ψ(x̄, ȳ, z̄, w) ∧ R_s(w))``.

Then ``φ`` is **true** iff ``T`` is viably complete for ``Q`` relative to
``(D_m, V)``: instantiating the missing ``X`` values with a witness
assignment makes ``Q`` return *every* truth assignment of ``Y`` (a maximal
answer that no extension can enlarge), whereas when ``φ`` is false every
world misses some ``Y`` assignment that the extension adding ``0`` to
``R_s`` reveals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.reductions.gadgets import gadget_rows
from repro.reductions.minp_strong_reduction import (
    R_S,
    R_X,
    _formula_query,
    _shared_constraints,
    _shared_master,
    _shared_schema,
    _validate,
)
from repro.reductions.sat import QuantifiedFormula
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema


@dataclass(frozen=True)
class ViableRCDPReduction:
    """The output of the Theorem 6.1 construction."""

    formula: QuantifiedFormula
    schema: DatabaseSchema
    cinstance: CInstance
    master: MasterData
    constraints: list[ContainmentConstraint]
    query: ConjunctiveQuery

    def formula_is_true(self) -> bool:
        """Brute-force truth value of ``φ``."""
        return self.formula.is_true()


def build_viable_rcdp_reduction(formula: QuantifiedFormula) -> ViableRCDPReduction:
    """Instantiate the Theorem 6.1 construction for an ``∃X ∀Y ∃Z ψ`` formula."""
    x_vars, y_vars, z_vars = _validate(formula)

    schema, rx_schema, rs_schema = _shared_schema(len(x_vars))
    master = _shared_master()
    constraints = _shared_constraints(schema)

    rx_rows = [
        CTableRow((index + 1, Variable(f"x{v}")))
        for index, v in enumerate(x_vars)
    ]
    cinstance = CInstance(
        schema,
        {
            **dict(gadget_rows()),
            R_X: CTable(rx_schema, rx_rows),
            R_S: CTable(rs_schema, [CTableRow((1,))]),
        },
    )

    query = _formula_query(
        formula, x_vars, y_vars, z_vars, include_guard=False, name="Q_thm61"
    )
    return ViableRCDPReduction(
        formula=formula,
        schema=schema,
        cinstance=cinstance,
        master=master,
        constraints=constraints,
        query=query,
    )
