"""The Boolean gadget relations of Figure 2 and the CQ encoding of 3CNF formulas.

Every lower-bound proof of the paper re-uses the same finite-model gadget:
four constant relations encoding the Boolean domain and the truth tables of
disjunction, conjunction and negation,

    ``I_(0,1)(X)``, ``I_∨(A1, A2, B)``, ``I_∧(A1, A2, B)``, ``I_¬(A, Ā)``,

together with a conjunctive query ``Q_ψ`` that evaluates a 3CNF formula ψ by
joining through those relations: each literal is looked up (possibly through
``R_¬``), each clause is the ``∨`` of its three literals, and the clauses are
chained with ``∧``; a designated output variable carries the truth value of
ψ.  This module builds the relations (Figure 2) and the encoding, which the
reduction modules then assemble into c-instances, CCs and queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ReductionError
from repro.queries.atoms import RelationAtom
from repro.queries.terms import Term, Variable
from repro.reductions.sat import CNFFormula
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import Relation
from repro.relational.schema import RelationSchema

#: Canonical names of the gadget relations in the *database* schema.
R_BOOL = "R_bool"
R_OR = "R_or"
R_AND = "R_and"
R_NOT = "R_not"

#: Canonical names of their master-data copies.
RM_BOOL = "Rm_bool"
RM_OR = "Rm_or"
RM_AND = "Rm_and"
RM_NOT = "Rm_not"
RM_EMPTY = "Rm_empty"


def bool_relation_schema(name: str = R_BOOL) -> RelationSchema:
    """Schema of the Boolean-domain relation ``R_(0,1)(X)``."""
    return RelationSchema(name, [("X", BOOLEAN_DOMAIN)])


def or_relation_schema(name: str = R_OR) -> RelationSchema:
    """Schema of the disjunction relation ``R_∨(A1, A2, B)``."""
    return RelationSchema(
        name, [("A1", BOOLEAN_DOMAIN), ("A2", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)]
    )


def and_relation_schema(name: str = R_AND) -> RelationSchema:
    """Schema of the conjunction relation ``R_∧(A1, A2, B)``."""
    return RelationSchema(
        name, [("A1", BOOLEAN_DOMAIN), ("A2", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)]
    )


def not_relation_schema(name: str = R_NOT) -> RelationSchema:
    """Schema of the negation relation ``R_¬(A, Ā)``."""
    return RelationSchema(name, [("A", BOOLEAN_DOMAIN), ("NotA", BOOLEAN_DOMAIN)])


def bool_rows() -> list[tuple[int, ...]]:
    """The rows of ``I_(0,1)`` (Figure 2)."""
    return [(1,), (0,)]


def or_rows() -> list[tuple[int, ...]]:
    """The rows of ``I_∨`` (Figure 2)."""
    return [(a, b, int(bool(a) or bool(b))) for a, b in itertools.product((0, 1), repeat=2)]


def and_rows() -> list[tuple[int, ...]]:
    """The rows of ``I_∧`` (Figure 2)."""
    return [(a, b, int(bool(a) and bool(b))) for a, b in itertools.product((0, 1), repeat=2)]


def not_rows() -> list[tuple[int, ...]]:
    """The rows of ``I_¬`` (Figure 2)."""
    return [(0, 1), (1, 0)]


def gadget_relation(name: str, kind: str) -> Relation:
    """A populated gadget relation of the given kind (``bool``/``or``/``and``/``not``)."""
    builders = {
        "bool": (bool_relation_schema, bool_rows),
        "or": (or_relation_schema, or_rows),
        "and": (and_relation_schema, and_rows),
        "not": (not_relation_schema, not_rows),
    }
    if kind not in builders:
        raise ReductionError(f"unknown gadget relation kind {kind!r}")
    schema_builder, rows_builder = builders[kind]
    return Relation(schema_builder(name), rows_builder())


def gadget_rows() -> dict[str, list[tuple[int, ...]]]:
    """Rows of all four gadget relations keyed by their canonical database names."""
    return {
        R_BOOL: bool_rows(),
        R_OR: or_rows(),
        R_AND: and_rows(),
        R_NOT: not_rows(),
    }


def master_gadget_rows() -> dict[str, list[tuple[int, ...]]]:
    """Rows of the master copies of the gadget relations (plus the empty relation)."""
    return {
        RM_BOOL: bool_rows(),
        RM_OR: or_rows(),
        RM_AND: and_rows(),
        RM_NOT: not_rows(),
        RM_EMPTY: [],
    }


@dataclass(frozen=True)
class FormulaEncoding:
    """The CQ encoding ``Q_ψ`` of a 3CNF formula.

    ``atoms`` are relation atoms over the gadget relations; ``output`` is the
    term carrying the truth value of ψ; ``auxiliary_variables`` are the fresh
    variables introduced for intermediate literal/clause values.
    """

    atoms: tuple[RelationAtom, ...]
    output: Term
    auxiliary_variables: tuple[Variable, ...]


def encode_formula(
    formula: CNFFormula,
    variable_terms: Mapping[int, Term],
    prefix: str = "ψ",
    bool_relation: str = R_BOOL,
    or_relation: str = R_OR,
    and_relation: str = R_AND,
    not_relation: str = R_NOT,
) -> FormulaEncoding:
    """Encode ``ψ(x̄)`` as a conjunction of gadget atoms (the query ``Q_ψ``).

    ``variable_terms`` maps each propositional variable index to the term
    (query variable or constant) holding its truth value.  The returned atoms
    compute, via joins with ``R_¬``, ``R_∨`` and ``R_∧``, a term ``output``
    that equals 1 iff ψ is satisfied by the values of the variable terms.
    """
    missing = formula.variables() - set(variable_terms)
    if missing:
        raise ReductionError(
            f"variable_terms does not cover propositional variables {sorted(missing)}"
        )
    atoms: list[RelationAtom] = []
    auxiliary: list[Variable] = []
    counter = itertools.count(1)

    def fresh(hint: str) -> Variable:
        variable = Variable(f"{prefix}_{hint}_{next(counter)}")
        auxiliary.append(variable)
        return variable

    def literal_term(literal: int) -> Term:
        base = variable_terms[abs(literal)]
        if literal > 0:
            return base
        negated = fresh(f"not{abs(literal)}")
        atoms.append(RelationAtom(not_relation, (base, negated)))
        return negated

    clause_outputs: list[Term] = []
    for clause_index, clause in enumerate(formula.clauses):
        literal_values = [literal_term(lit) for lit in clause.literals]
        # Fold the clause's literals with R_∨.
        current = literal_values[0]
        for position, value in enumerate(literal_values[1:], start=1):
            result = fresh(f"c{clause_index}_or{position}")
            atoms.append(RelationAtom(or_relation, (current, value, result)))
            current = result
        clause_outputs.append(current)

    # Fold the clause outputs with R_∧.
    output = clause_outputs[0]
    for position, value in enumerate(clause_outputs[1:], start=1):
        result = fresh(f"and{position}")
        atoms.append(RelationAtom(and_relation, (output, value, result)))
        output = result

    # A single-clause, single-positive-literal formula produces no atoms; the
    # output is then just the variable term itself, which is fine.
    return FormulaEncoding(
        atoms=tuple(atoms),
        output=output,
        auxiliary_variables=tuple(auxiliary),
    )


def assignment_atoms(
    variable_terms: Mapping[int, Term], bool_relation: str = R_BOOL
) -> tuple[RelationAtom, ...]:
    """Atoms asserting that each variable term carries a Boolean value.

    This is the query ``Q_Y(ȳ) = R_(0,1)(y1) ∧ ... ∧ R_(0,1)(ym)`` used by the
    reductions to range over all truth assignments of a block of variables.
    """
    return tuple(
        RelationAtom(bool_relation, (variable_terms[index],))
        for index in sorted(variable_terms)
    )


def evaluate_encoding_sanity(formula: CNFFormula, assignment: Mapping[int, bool]) -> int:
    """Reference truth value (0/1) of ψ under an assignment (for tests)."""
    return int(formula.evaluate(assignment))
