"""The Proposition 3.1 reduction: FD + IND implication → RCDP / RCQP.

Proposition 3.1 shows that if a class of integrity constraints as powerful as
FDs + INDs is imposed *on the database itself* (instead of being encoded as
CCs into master data), then RCDP and RCQP become undecidable even for CQ —
by reduction from the (undecidable) implication problem for FDs and INDs.

This module implements the construction: given an implication instance
``(Θ, φ)`` with ``Θ`` a set of FDs and INDs over a schema ``R`` and ``φ`` an
FD ``X → A`` over a relation ``R ∈ R``, it builds the Boolean CQ

    ``Q() = ∃ x̄, ȳ1, ȳ2, w, w' ( R(x̄, w, ȳ1) ∧ R(x̄, w', ȳ2) ∧ w ≠ w' )``

that detects a violation of ``φ``, with empty master data and CCs, such that
``Θ |= φ`` iff the empty instance ``I_∅`` is complete for ``Q`` relative to
``(D_m, V, Θ)``.

Because FD + IND implication is undecidable there is no terminating exact
check of the right-hand side; the tests validate the reduction on the
decidable FD-only fragment (via attribute closure) and on bounded-chase
verdicts, exercising :func:`rcdp_with_dependencies_bounded` — a completeness
check that additionally requires extensions to satisfy ``Θ``, as defined in
Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.completeness.extensions import candidate_rows
from repro.completeness.ground import ground_active_domain
from repro.constraints.containment import ContainmentConstraint, satisfies_all
from repro.constraints.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    satisfies_dependencies,
)
from repro.exceptions import ReductionError
from repro.queries.atoms import RelationAtom, neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import Query, evaluate
from repro.queries.terms import Variable
from repro.relational.instance import GroundInstance, empty_instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import DatabaseSchema, RelationSchema


@dataclass(frozen=True)
class ImplicationReduction:
    """The output of the Proposition 3.1 construction."""

    schema: DatabaseSchema
    query: ConjunctiveQuery
    master: MasterData
    constraints: list[ContainmentConstraint]
    dependencies: list["FunctionalDependency | InclusionDependency"]
    candidate: FunctionalDependency
    empty_db: GroundInstance


def build_implication_reduction(
    schema: DatabaseSchema,
    dependencies: Sequence["FunctionalDependency | InclusionDependency"],
    candidate: FunctionalDependency,
) -> ImplicationReduction:
    """Instantiate the Proposition 3.1 construction for ``(Θ, φ)``.

    ``candidate`` is the FD ``φ : X → A`` whose implication is being encoded;
    it must have a single right-hand-side attribute (w.l.o.g., as FDs with
    several RHS attributes decompose).
    """
    if len(candidate.rhs) != 1:
        raise ReductionError(
            "the Proposition 3.1 construction expects an FD with a single RHS attribute"
        )
    if candidate.relation not in schema:
        raise ReductionError(f"relation {candidate.relation!r} is not in the schema")
    rel_schema: RelationSchema = schema[candidate.relation]
    target = candidate.rhs[0]

    first = [Variable(f"t1_{a}") for a in rel_schema.attribute_names]
    second = [Variable(f"t2_{a}") for a in rel_schema.attribute_names]
    comparisons = []
    # Identify the X attributes of the two atoms by sharing variables.
    for attribute in candidate.lhs:
        position = rel_schema.position_of(attribute)
        second[position] = first[position]
    target_position = rel_schema.position_of(target)
    comparisons.append(neq(first[target_position], second[target_position]))

    query = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom(candidate.relation, tuple(first)),
            RelationAtom(candidate.relation, tuple(second)),
        ),
        comparisons=tuple(comparisons),
        name="violates_candidate_fd",
    )
    master_schema = DatabaseSchema([RelationSchema("M_empty", ["W"])])
    return ImplicationReduction(
        schema=schema,
        query=query,
        master=empty_master(master_schema),
        constraints=[],
        dependencies=list(dependencies),
        candidate=candidate,
        empty_db=empty_instance(schema),
    )


def rcdp_with_dependencies_bounded(
    instance: GroundInstance,
    query: Query,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    dependencies: Sequence,
    max_new_tuples: int = 2,
    limit: int | None = 500_000,
) -> bool:
    """Bounded RCDP in the presence of additional integrity constraints ``Θ``.

    Section 3 defines completeness relative to ``(D_m, V, Θ)``: extensions
    must satisfy the CCs *and* the dependencies.  The general problem is
    undecidable (Proposition 3.1), so this check only explores extensions by
    at most ``max_new_tuples`` Adom tuples; a ``False`` verdict is definitive,
    a ``True`` verdict means "no counterexample within the bound".
    """
    if not satisfies_all(instance, master, constraints):
        raise ReductionError("the instance is not partially closed")
    if not satisfies_dependencies(instance, dependencies):
        raise ReductionError("the instance violates the integrity constraints Θ")
    adom = ground_active_domain(instance, query, master, constraints)
    base_answer = evaluate(query, instance)

    frontier = [instance]
    seen = {instance}
    inspected = 0
    for _ in range(max_new_tuples):
        next_frontier = []
        for current in frontier:
            for relation in current.schema:
                existing = current.relation(relation.name).rows
                for row in candidate_rows(relation, adom):
                    inspected += 1
                    if limit is not None and inspected > limit:
                        return True
                    if row in existing:
                        continue
                    extended = current.with_tuple(relation.name, row)
                    if extended in seen:
                        continue
                    seen.add(extended)
                    if not satisfies_all(extended, master, constraints):
                        continue
                    if not satisfies_dependencies(extended, dependencies):
                        continue
                    if evaluate(query, extended) != base_answer:
                        return False
                    next_frontier.append(extended)
        frontier = next_frontier
    return True
