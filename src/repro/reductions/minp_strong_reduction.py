"""The Theorem 4.8 reduction: ``∃X ∀Y ∃Z ψ`` → MINPˢ for CQ.

Theorem 4.8 proves Πᵖ₃-hardness of the strong-model minimality problem for
c-instances by reduction from the complement of ``∃*∀*∃*3SAT``.  Given
``φ = ∃X ∀Y ∃Z ψ`` the construction produces

* a schema with the Figure 2 gadget relations plus ``R_X(id, X)`` (one row
  per propositional variable of ``X``, its truth value missing) and a unary
  selector relation ``R_s(W)``,
* the c-instance ``T`` whose gadget tables are fixed, whose ``R_X`` rows are
  ``(i, x_i)`` with ``x_i`` a variable, and whose ``R_s`` table holds ``{0, 1}``,
* master data with gadget copies, a Boolean bound and an empty relation, and
* CCs fixing the gadgets, forcing ``R_X`` to encode a single truth assignment
  of ``X`` (Boolean values, ``id`` a key) and bounding ``R_s`` by the Boolean
  master relation,
* a CQ ``Q(ȳ)`` returning the truth assignments of ``Y`` for which
  ``ψ`` evaluates — via the gadget joins — to a value stored in ``R_s``,
  guarded by ``Q_all`` (all gadget tuples and the selector ``1`` must be
  present, so removing them empties the answer).

Then ``φ`` is **false** iff ``T`` is a *minimal* strongly complete c-instance
for ``Q`` relative to ``(D_m, V)`` (the paper's Theorem 4.8 lower-bound
equivalence).  The tests instantiate the construction on small formulas and
check the equivalence against the brute-force QBF solver and the library's
MINPˢ decider.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.containment import (
    ContainmentConstraint,
    ProjectionQuery,
    cc,
    relation_containment_cc,
)
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.exceptions import ReductionError
from repro.queries.atoms import RelationAtom, eq, neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.reductions.gadgets import (
    R_AND,
    R_BOOL,
    R_NOT,
    R_OR,
    RM_AND,
    RM_BOOL,
    RM_EMPTY,
    RM_NOT,
    RM_OR,
    and_relation_schema,
    and_rows,
    assignment_atoms,
    bool_relation_schema,
    bool_rows,
    encode_formula,
    gadget_rows,
    master_gadget_rows,
    not_relation_schema,
    not_rows,
    or_relation_schema,
    or_rows,
)
from repro.reductions.sat import Quantifier, QuantifiedFormula
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema, RelationSchema

#: Name of the relation holding the candidate truth assignment of X.
R_X = "R_X"
#: Name of the unary selector relation of the Theorem 4.8 / 6.1 constructions.
R_S = "R_s"


@dataclass(frozen=True)
class StrongMINPReduction:
    """The output of the Theorem 4.8 construction."""

    formula: QuantifiedFormula
    schema: DatabaseSchema
    cinstance: CInstance
    master: MasterData
    constraints: list[ContainmentConstraint]
    query: ConjunctiveQuery

    def formula_is_true(self) -> bool:
        """Brute-force truth value of ``φ``."""
        return self.formula.is_true()


def _validate(formula: QuantifiedFormula) -> tuple[list[int], list[int], list[int]]:
    if len(formula.prefix) != 3:
        raise ReductionError("Theorem 4.8 expects an ∃X ∀Y ∃Z prefix")
    outer, middle, inner = formula.prefix
    if outer.quantifier is not Quantifier.EXISTS:
        raise ReductionError("the outer block must be existential")
    if middle.quantifier is not Quantifier.FORALL:
        raise ReductionError("the middle block must be universal")
    if inner.quantifier is not Quantifier.EXISTS:
        raise ReductionError("the inner block must be existential")
    if not outer.variables or not middle.variables:
        raise ReductionError("the X and Y blocks must be non-empty")
    return list(outer.variables), list(middle.variables), list(inner.variables)


def _shared_schema(x_count: int) -> tuple[DatabaseSchema, RelationSchema, RelationSchema]:
    """The database schema shared by the Theorem 4.8 and 6.1 constructions."""
    rx_schema = RelationSchema(R_X, ["id", ("X", BOOLEAN_DOMAIN)])
    rs_schema = RelationSchema(R_S, [("W", BOOLEAN_DOMAIN)])
    schema = DatabaseSchema(
        [
            bool_relation_schema(R_BOOL),
            or_relation_schema(R_OR),
            and_relation_schema(R_AND),
            not_relation_schema(R_NOT),
            rx_schema,
            rs_schema,
        ]
    )
    return schema, rx_schema, rs_schema


def _shared_master() -> MasterData:
    """Master data shared by the Theorem 4.8 and 6.1 constructions."""
    master_schema = DatabaseSchema(
        [
            bool_relation_schema(RM_BOOL),
            or_relation_schema(RM_OR),
            and_relation_schema(RM_AND),
            not_relation_schema(RM_NOT),
            RelationSchema(RM_EMPTY, ["W"]),
        ]
    )
    return MasterData(master_schema, master_gadget_rows())


def _shared_constraints(schema: DatabaseSchema) -> list[ContainmentConstraint]:
    """The CCs shared by the Theorem 4.8 and 6.1 constructions.

    They fix the gadget relations, bound ``R_s`` by the Boolean master
    relation, force every ``X`` value of ``R_X`` to be Boolean and make ``id``
    a key of ``R_X`` (so any instance of ``R_X`` encodes a partial truth
    assignment of the ``X`` variables).
    """
    constraints: list[ContainmentConstraint] = [
        relation_containment_cc(R_BOOL, schema, RM_BOOL, name="fix_bool"),
        relation_containment_cc(R_OR, schema, RM_OR, name="fix_or"),
        relation_containment_cc(R_AND, schema, RM_AND, name="fix_and"),
        relation_containment_cc(R_NOT, schema, RM_NOT, name="fix_not"),
        relation_containment_cc(R_S, schema, RM_BOOL, name="rs_bool"),
    ]
    rid, rx, rx2 = Variable("rid"), Variable("rx"), Variable("rx2")
    constraints.append(
        cc(
            ConjunctiveQuery(
                head=(rx,),
                atoms=(RelationAtom(R_X, (rid, rx)),),
                name="rx_values",
            ),
            ProjectionQuery(RM_BOOL),
            name="rx_bool",
        )
    )
    constraints.append(
        cc(
            ConjunctiveQuery(
                head=(rid,),
                atoms=(RelationAtom(R_X, (rid, rx)), RelationAtom(R_X, (rid, rx2))),
                comparisons=(neq(rx, rx2),),
                name="rx_key_violation",
            ),
            ProjectionQuery(RM_EMPTY),
            name="rx_id_key",
        )
    )
    return constraints


def _gadget_guard_atoms(require_selector_one: bool) -> tuple[RelationAtom, ...]:
    """The ``Q_all`` guard: every gadget tuple (and optionally ``R_s(1)``) is present."""
    atoms: list[RelationAtom] = []
    for row in bool_rows():
        atoms.append(RelationAtom(R_BOOL, row))
    for row in or_rows():
        atoms.append(RelationAtom(R_OR, row))
    for row in and_rows():
        atoms.append(RelationAtom(R_AND, row))
    for row in not_rows():
        atoms.append(RelationAtom(R_NOT, row))
    if require_selector_one:
        atoms.append(RelationAtom(R_S, (1,)))
    return tuple(atoms)


def _formula_query(
    formula: QuantifiedFormula,
    x_vars: list[int],
    y_vars: list[int],
    z_vars: list[int],
    include_guard: bool,
    name: str,
) -> ConjunctiveQuery:
    """The query ``Q(ȳ)`` of the Theorem 4.8 / 6.1 constructions."""
    qx_terms = {v: Variable(f"qx{v}") for v in x_vars}
    qy_terms = {v: Variable(f"qy{v}") for v in y_vars}
    qz_terms = {v: Variable(f"qz{v}") for v in z_vars}
    encoding = encode_formula(
        formula.matrix, {**qx_terms, **qy_terms, **qz_terms}, prefix="enc"
    )
    selector = Variable("w_sel")
    atoms = (
        tuple(
            RelationAtom(R_X, (index + 1, qx_terms[v]))
            for index, v in enumerate(x_vars)
        )
        + assignment_atoms(qy_terms, bool_relation=R_BOOL)
        + assignment_atoms(qz_terms, bool_relation=R_BOOL)
        + encoding.atoms
        + (RelationAtom(R_S, (selector,)),)
        + (_gadget_guard_atoms(require_selector_one=True) if include_guard else ())
    )
    return ConjunctiveQuery(
        head=tuple(qy_terms[v] for v in y_vars),
        atoms=atoms,
        comparisons=(eq(encoding.output, selector),),
        name=name,
    )


def build_strong_minp_reduction(formula: QuantifiedFormula) -> StrongMINPReduction:
    """Instantiate the Theorem 4.8 construction for an ``∃X ∀Y ∃Z ψ`` formula."""
    x_vars, y_vars, z_vars = _validate(formula)

    schema, rx_schema, rs_schema = _shared_schema(len(x_vars))
    master = _shared_master()
    constraints = _shared_constraints(schema)

    rx_rows = [
        CTableRow((index + 1, Variable(f"x{v}")))
        for index, v in enumerate(x_vars)
    ]
    tables = dict(gadget_rows())
    cinstance = CInstance(
        schema,
        {
            **tables,
            R_X: CTable(rx_schema, rx_rows),
            R_S: CTable(rs_schema, [CTableRow((0,)), CTableRow((1,))]),
        },
    )

    query = _formula_query(
        formula, x_vars, y_vars, z_vars, include_guard=True, name="Q_thm48"
    )
    return StrongMINPReduction(
        formula=formula,
        schema=schema,
        cinstance=cinstance,
        master=master,
        constraints=constraints,
        query=query,
    )
