"""Executable lower-bound reductions from the paper's proofs.

Each module reproduces a construction used in a hardness proof:

* :mod:`repro.reductions.sat` — 3CNF / quantified Boolean formulas and a
  brute-force solver (the source problems of the reductions);
* :mod:`repro.reductions.gadgets` — the Figure 2 gadget relations and the CQ
  encoding of 3CNF formulas;
* :mod:`repro.reductions.consistency_reduction` — Proposition 3.3
  (consistency and extensibility are Σᵖ₂-hard);
* :mod:`repro.reductions.rcdp_weak_reduction` — Theorem 5.1(3) (weak-model
  RCDP is Πᵖ₃-hard for CQ);
* :mod:`repro.reductions.minp_strong_reduction` — Theorem 4.8 (strong-model
  MINP is Πᵖ₃-hard for c-instances);
* :mod:`repro.reductions.rcdp_viable_reduction` — Theorem 6.1 (viable-model
  RCDP is Σᵖ₃-hard for c-instances);
* :mod:`repro.reductions.implication` — Proposition 3.1 (FD + IND constraints
  on the database make RCDP/RCQP undecidable).

The tests instantiate every construction on small formulas and cross-check
the claimed equivalence against the brute-force solver and the library's
decision procedures.
"""

from repro.reductions.consistency_reduction import (
    ConsistencyReduction,
    build_consistency_reduction,
)
from repro.reductions.gadgets import (
    FormulaEncoding,
    and_rows,
    assignment_atoms,
    bool_rows,
    encode_formula,
    gadget_relation,
    gadget_rows,
    master_gadget_rows,
    not_rows,
    or_rows,
)
from repro.reductions.implication import (
    ImplicationReduction,
    build_implication_reduction,
    rcdp_with_dependencies_bounded,
)
from repro.reductions.minp_strong_reduction import (
    StrongMINPReduction,
    build_strong_minp_reduction,
)
from repro.reductions.rcdp_viable_reduction import (
    ViableRCDPReduction,
    build_viable_rcdp_reduction,
)
from repro.reductions.rcdp_weak_reduction import (
    WeakRCDPReduction,
    build_weak_rcdp_reduction,
)
from repro.reductions.sat import (
    Clause,
    CNFFormula,
    QuantifiedFormula,
    Quantifier,
    QuantifierBlock,
    exists_forall_exists_3sat,
    forall_exists_3sat,
    random_3cnf,
    random_exists_forall_exists_instance,
    random_forall_exists_instance,
)

__all__ = [
    "CNFFormula",
    "Clause",
    "ConsistencyReduction",
    "FormulaEncoding",
    "ImplicationReduction",
    "QuantifiedFormula",
    "Quantifier",
    "QuantifierBlock",
    "StrongMINPReduction",
    "ViableRCDPReduction",
    "WeakRCDPReduction",
    "and_rows",
    "assignment_atoms",
    "bool_rows",
    "build_consistency_reduction",
    "build_implication_reduction",
    "build_strong_minp_reduction",
    "build_viable_rcdp_reduction",
    "build_weak_rcdp_reduction",
    "encode_formula",
    "exists_forall_exists_3sat",
    "forall_exists_3sat",
    "gadget_relation",
    "gadget_rows",
    "master_gadget_rows",
    "not_rows",
    "or_rows",
    "random_3cnf",
    "random_exists_forall_exists_instance",
    "random_forall_exists_instance",
    "rcdp_with_dependencies_bounded",
]
