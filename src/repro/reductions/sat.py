"""Propositional structures used by the paper's lower-bound reductions.

The lower bounds of the paper are established by reductions from quantified
Boolean satisfiability problems:

* ``∀*∃*3SAT`` (Πᵖ₂-complete) — Proposition 3.3;
* ``∃*∀*∃*3SAT`` (Σᵖ₃-complete) — Theorems 4.8, 5.1, 6.1;
* ``∀*∃*∀*∃*3SAT`` (Πᵖ₄-complete) — Theorem 5.6;
* ``SAT-UNSAT`` (DP-complete) and ``∃*∀*3DNF-∀*∃*3CNF`` (Dᵖ₂-complete).

This module provides 3CNF formulas, quantified Boolean formulas with an
arbitrary quantifier prefix, a brute-force evaluator (fine for the tiny
instances used to validate the reductions), and generators of random small
instances for the benchmark harness.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

from repro.exceptions import ReductionError

#: A literal is a non-zero integer: ``+i`` stands for variable ``x_i`` and
#: ``-i`` for its negation (DIMACS convention).
Literal = int


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals (typically three, for 3SAT)."""

    literals: tuple[Literal, ...]

    def __init__(self, literals: Sequence[Literal]) -> None:
        literals = tuple(literals)
        if not literals:
            raise ReductionError("a clause must contain at least one literal")
        if any(lit == 0 for lit in literals):
            raise ReductionError("literal 0 is not allowed (DIMACS convention)")
        object.__setattr__(self, "literals", literals)

    def variables(self) -> set[int]:
        """Indices of the variables occurring in the clause."""
        return {abs(lit) for lit in self.literals}

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Whether the clause is satisfied under a (total enough) assignment."""
        for lit in self.literals:
            try:
                value = assignment[abs(lit)]
            except KeyError as exc:
                raise ReductionError(
                    f"assignment does not cover variable x{abs(lit)}"
                ) from exc
            if value == (lit > 0):
                return True
        return False

    def __repr__(self) -> str:
        def show(lit: Literal) -> str:
            return f"x{lit}" if lit > 0 else f"¬x{-lit}"

        return "(" + " ∨ ".join(show(lit) for lit in self.literals) + ")"


@dataclass(frozen=True)
class CNFFormula:
    """A conjunction of clauses."""

    clauses: tuple[Clause, ...]

    def __init__(self, clauses: Sequence[Clause | Sequence[Literal]]) -> None:
        normalised = tuple(
            clause if isinstance(clause, Clause) else Clause(clause)
            for clause in clauses
        )
        if not normalised:
            raise ReductionError("a CNF formula must contain at least one clause")
        object.__setattr__(self, "clauses", normalised)

    def variables(self) -> set[int]:
        """Indices of all variables in the formula."""
        result: set[int] = set()
        for clause in self.clauses:
            result |= clause.variables()
        return result

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Whether the formula holds under the assignment."""
        return all(clause.evaluate(assignment) for clause in self.clauses)

    def is_satisfiable(self) -> bool:
        """Satisfiability via the DPLL solver of :mod:`repro.reductions.dpll`.

        The reduction validators call this on every instance they build;
        routing it through the watched-literal solver keeps them polynomial
        in practice instead of exponential by construction.  The old
        exhaustive scan survives as :meth:`is_satisfiable_brute_force`, the
        cross-check oracle for small instances.
        """
        from repro.reductions.dpll import DPLLSolver

        solver = DPLLSolver(clause.literals for clause in self.clauses)
        return solver.solve() is not None

    def satisfying_assignment(self) -> dict[int, bool] | None:
        """A satisfying assignment of all variables, or ``None`` (UNSAT)."""
        from repro.reductions.dpll import DPLLSolver

        solver = DPLLSolver(clause.literals for clause in self.clauses)
        model = solver.solve()
        if model is None:
            return None
        # The solver only assigns variables that occur in clauses, which for
        # a CNFFormula is all of them.
        return {variable: model[variable] for variable in self.variables()}

    def is_satisfiable_brute_force(self, max_variables: int = 12) -> bool:
        """Exhaustive satisfiability check (cross-check oracle).

        Refuses instances beyond ``max_variables`` variables: anything larger
        belongs to :meth:`is_satisfiable`.
        """
        variables = sorted(self.variables())
        if len(variables) > max_variables:
            raise ReductionError(
                f"brute-force satisfiability over {len(variables)} variables "
                f"exceeds the {max_variables}-variable cross-check bound; "
                "use is_satisfiable() (DPLL) instead"
            )
        for values in itertools.product((False, True), repeat=len(variables)):
            if self.evaluate(dict(zip(variables, values))):
                return True
        return False

    def __repr__(self) -> str:
        return " ∧ ".join(repr(clause) for clause in self.clauses)


class Quantifier(str, Enum):
    """A quantifier of a QBF prefix block."""

    EXISTS = "∃"
    FORALL = "∀"


@dataclass(frozen=True)
class QuantifierBlock:
    """A maximal block of identically quantified variables."""

    quantifier: Quantifier
    variables: tuple[int, ...]

    def __init__(self, quantifier: Quantifier, variables: Sequence[int]) -> None:
        variables = tuple(variables)
        object.__setattr__(self, "quantifier", quantifier)
        object.__setattr__(self, "variables", variables)


@dataclass(frozen=True)
class QuantifiedFormula:
    """A quantified Boolean formula with a 3CNF matrix.

    The quantifier prefix is a sequence of blocks; variables not mentioned in
    the prefix are implicitly existentially quantified innermost (this never
    happens for well-formed reduction inputs but keeps evaluation total).
    """

    prefix: tuple[QuantifierBlock, ...]
    matrix: CNFFormula

    def __init__(
        self,
        prefix: Sequence[QuantifierBlock | tuple[Quantifier, Sequence[int]]],
        matrix: CNFFormula,
    ) -> None:
        blocks = []
        for block in prefix:
            if isinstance(block, QuantifierBlock):
                blocks.append(block)
            else:
                quantifier, variables = block
                blocks.append(QuantifierBlock(quantifier, tuple(variables)))
        object.__setattr__(self, "prefix", tuple(blocks))
        object.__setattr__(self, "matrix", matrix)

    def prefix_variables(self) -> set[int]:
        """Variables bound by the prefix."""
        result: set[int] = set()
        for block in self.prefix:
            result |= set(block.variables)
        return result

    def is_true(self) -> bool:
        """Brute-force evaluation of the QBF (exponential, for tiny instances)."""
        free = sorted(self.matrix.variables() - self.prefix_variables())
        blocks = list(self.prefix)
        if free:
            blocks.append(QuantifierBlock(Quantifier.EXISTS, tuple(free)))

        def recurse(index: int, assignment: dict[int, bool]) -> bool:
            if index == len(blocks):
                return self.matrix.evaluate(assignment)
            block = blocks[index]
            outcomes = []
            for values in itertools.product((False, True), repeat=len(block.variables)):
                extended = dict(assignment)
                extended.update(zip(block.variables, values))
                outcomes.append(recurse(index + 1, extended))
                # Short-circuit where possible.
                if block.quantifier is Quantifier.EXISTS and outcomes[-1]:
                    return True
                if block.quantifier is Quantifier.FORALL and not outcomes[-1]:
                    return False
            if block.quantifier is Quantifier.EXISTS:
                return any(outcomes)
            return all(outcomes)

        return recurse(0, {})

    def __repr__(self) -> str:
        prefix = " ".join(
            f"{block.quantifier.value}{{{', '.join(f'x{v}' for v in block.variables)}}}"
            for block in self.prefix
        )
        return f"{prefix}. {self.matrix!r}"


# ---------------------------------------------------------------------------
# constructors matching the paper's problem names
# ---------------------------------------------------------------------------
def forall_exists_3sat(
    universal: Sequence[int], existential: Sequence[int], clauses: Sequence[Sequence[Literal]]
) -> QuantifiedFormula:
    """A ``∀X ∃Y ψ`` instance (the Πᵖ₂-complete problem of Proposition 3.3)."""
    return QuantifiedFormula(
        prefix=[
            (Quantifier.FORALL, universal),
            (Quantifier.EXISTS, existential),
        ],
        matrix=CNFFormula(clauses),
    )


def exists_forall_exists_3sat(
    outer: Sequence[int],
    universal: Sequence[int],
    inner: Sequence[int],
    clauses: Sequence[Sequence[Literal]],
) -> QuantifiedFormula:
    """A ``∃X ∀Y ∃Z ψ`` instance (Σᵖ₃-complete; Theorems 4.8, 5.1, 6.1)."""
    return QuantifiedFormula(
        prefix=[
            (Quantifier.EXISTS, outer),
            (Quantifier.FORALL, universal),
            (Quantifier.EXISTS, inner),
        ],
        matrix=CNFFormula(clauses),
    )


def random_3cnf(
    variables: Sequence[int], clause_count: int, rng: random.Random
) -> CNFFormula:
    """A random 3CNF formula over the given variables."""
    if not variables:
        raise ReductionError("need at least one variable for a random 3CNF")
    clauses = []
    for _ in range(clause_count):
        chosen = [rng.choice(list(variables)) for _ in range(3)]
        literals = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        clauses.append(Clause(literals))
    return CNFFormula(clauses)


def random_forall_exists_instance(
    universal_count: int,
    existential_count: int,
    clause_count: int,
    seed: int = 0,
) -> QuantifiedFormula:
    """A random ``∀X ∃Y ψ`` instance with the given dimensions."""
    rng = random.Random(seed)
    universal = list(range(1, universal_count + 1))
    existential = list(
        range(universal_count + 1, universal_count + existential_count + 1)
    )
    matrix = random_3cnf(universal + existential, clause_count, rng)
    return QuantifiedFormula(
        prefix=[(Quantifier.FORALL, universal), (Quantifier.EXISTS, existential)],
        matrix=matrix,
    )


def random_exists_forall_exists_instance(
    outer_count: int,
    universal_count: int,
    inner_count: int,
    clause_count: int,
    seed: int = 0,
) -> QuantifiedFormula:
    """A random ``∃X ∀Y ∃Z ψ`` instance with the given dimensions."""
    rng = random.Random(seed)
    outer = list(range(1, outer_count + 1))
    universal = list(range(outer_count + 1, outer_count + universal_count + 1))
    inner_start = outer_count + universal_count + 1
    inner = list(range(inner_start, inner_start + inner_count))
    matrix = random_3cnf(outer + universal + inner, clause_count, rng)
    return QuantifiedFormula(
        prefix=[
            (Quantifier.EXISTS, outer),
            (Quantifier.FORALL, universal),
            (Quantifier.EXISTS, inner),
        ],
        matrix=matrix,
    )
