"""Enumeration helpers used by the decision procedures.

The deciders of the paper enumerate valuations over the active domain
``Adom`` and subsets of tuples.  Those enumerations are intrinsically
exponential; the helpers here make the exponential loops explicit, bounded
and testable.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, TypeVar

from repro.exceptions import BoundExceededError

T = TypeVar("T")


def powerset(items: Sequence[T], include_empty: bool = True) -> Iterator[tuple[T, ...]]:
    """All subsets of ``items``, smallest first.

    Used by the weak-model minimality check (Theorem 5.6 upper bound), which
    must inspect every non-empty ``Δ ⊆ T``.
    """
    start = 0 if include_empty else 1
    for size in range(start, len(items) + 1):
        yield from itertools.combinations(items, size)


def bounded_product(
    pools: Sequence[Sequence[T]], limit: int | None = None
) -> Iterator[tuple[T, ...]]:
    """Cartesian product of ``pools`` with an optional hard limit.

    Raises
    ------
    BoundExceededError
        If ``limit`` combinations have been produced and more remain.
    """
    count = 0
    for combo in itertools.product(*pools):
        if limit is not None and count >= limit:
            raise BoundExceededError(
                f"enumeration exceeded the configured limit of {limit} combinations"
            )
        count += 1
        yield combo


def limited(iterable: Iterable[T], limit: int | None) -> Iterator[T]:
    """Yield from ``iterable``, raising if more than ``limit`` items appear."""
    count = 0
    for item in iterable:
        if limit is not None and count >= limit:
            raise BoundExceededError(
                f"enumeration exceeded the configured limit of {limit} items"
            )
        count += 1
        yield item


def product_size(pools: Sequence[Sequence[T]]) -> int:
    """Number of combinations a cartesian product would produce."""
    size = 1
    for pool in pools:
        size *= len(pool)
    return size
