"""Small shared utilities (bounded enumeration, fresh-name supply)."""

from repro.utils.itertools_ext import bounded_product, limited, powerset
from repro.utils.naming import FreshNameSupply, fresh_constants

__all__ = [
    "FreshNameSupply",
    "bounded_product",
    "fresh_constants",
    "limited",
    "powerset",
]
