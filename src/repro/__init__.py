"""repro — relative information completeness for partially closed databases.

A reproduction of *"Capturing Missing Tuples and Missing Values"* (Ting Deng,
Wenfei Fan, Floris Geerts; PODS 2010, extended version ACM TODS 41(2), 2016).

The library models databases from which both **tuples** and **attribute
values** may be missing (conditional tables / c-instances) and that are
*partially closed* — bounded by master data through containment constraints.
It implements the paper's three relative-completeness models (strong, weak,
viable), the decision problems RCDP / RCQP / MINP, the consistency and
extensibility analyses, the tractable data-complexity cases of Section 7, and
executable versions of the lower-bound reductions.

Subpackages
-----------
``repro.relational``
    Schemas, domains, ground instances and master data.
``repro.queries``
    CQ, UCQ, ∃FO⁺, FO and FP query ASTs with exact evaluation and tableau
    tooling.
``repro.ctables``
    Conditional tables, c-instances, valuations, the ``Adom`` construction
    and possible-world enumeration.
``repro.constraints``
    Containment constraints plus classical dependencies (FDs, INDs, CFDs,
    denial constraints) and their encodings as CCs.
``repro.completeness``
    The paper's core contribution: the three completeness models and the
    deciders for RCDP, RCQP and MINP.
``repro.reductions``
    Executable lower-bound constructions (3SAT / QBF gadgets, FD+IND
    implication, succinct-circuit tautology).
``repro.workloads``
    The paper's patient MDM scenario and synthetic workload generators used
    by the benchmark harness.

Quickstart
----------
>>> from repro import Database, build_patient_scenario, STRONG
>>> s = build_patient_scenario()
>>> db = Database(s.figure1, s.master, s.constraints)
>>> bool(db.complete(s.q1, STRONG))
True

The :class:`Database` facade caches the ``Adom`` and the constraint checker
across calls and returns rich :class:`Decision` objects; the functional API
(``is_relatively_complete`` and friends) remains available and returns the
same :class:`Decision` objects (truthy like the old booleans).  World-search
engines are pluggable through :func:`register_engine` and selected with
:class:`EngineConfig` (or a plain name string) everywhere an ``engine=``
keyword is accepted.
"""

from __future__ import annotations

from repro.api import Database
from repro.decision import Decision, DecisionStats
from repro.incremental import UpdateBatch, UpdateResult
from repro.completeness import (
    STRONG,
    VIABLE,
    WEAK,
    CompletenessModel,
    certain_answer_over_extensions,
    certain_answer_over_models,
    is_consistent,
    is_extensible,
    is_ground_complete,
    is_minimal_complete,
    is_relatively_complete,
    is_strongly_complete,
    is_viably_complete,
    is_weakly_complete,
    minp,
    rcdp,
    rcqp,
    weak_completeness_report,
)
from repro.constraints import (
    ContainmentConstraint,
    cc,
    denial_cc,
    fd,
    fd_as_ccs,
    ind,
    projection,
    relation_containment_cc,
    satisfies_all,
)
from repro.ctables import (
    CInstance,
    CTable,
    CTableRow,
    Condition,
    build_active_domain,
    cinstance,
    condition,
    models,
    var_eq,
    var_neq,
)
from repro.exceptions import InconsistentUpdateError, ReproError, UpdateError
from repro.search import (
    EngineCapabilities,
    EngineConfig,
    SearchStats,
    WorldSearch,
    engine_names,
    register_engine,
    unregister_engine,
)
from repro.queries import (
    ConjunctiveQuery,
    FixpointQuery,
    UnionOfConjunctiveQueries,
    atom,
    boolean_cq,
    cq,
    eq,
    evaluate,
    fixpoint_query,
    fo,
    neq,
    rule,
    ucq,
    var,
    variables,
)
from repro.relational import (
    BOOLEAN_DOMAIN,
    DatabaseSchema,
    GroundInstance,
    MasterData,
    RelationSchema,
    database_schema,
    empty_instance,
    empty_master,
    finite_domain,
    infinite_domain,
    instance,
    schema,
)
from repro.workloads import build_patient_scenario, registry_workload

__version__ = "2.0.0"

__all__ = [
    "BOOLEAN_DOMAIN",
    "CInstance",
    "CTable",
    "CTableRow",
    "CompletenessModel",
    "Condition",
    "ConjunctiveQuery",
    "ContainmentConstraint",
    "Database",
    "DatabaseSchema",
    "Decision",
    "DecisionStats",
    "EngineCapabilities",
    "EngineConfig",
    "FixpointQuery",
    "GroundInstance",
    "InconsistentUpdateError",
    "MasterData",
    "RelationSchema",
    "ReproError",
    "STRONG",
    "SearchStats",
    "UpdateBatch",
    "UpdateError",
    "UpdateResult",
    "WorldSearch",
    "UnionOfConjunctiveQueries",
    "VIABLE",
    "WEAK",
    "__version__",
    "atom",
    "boolean_cq",
    "build_active_domain",
    "build_patient_scenario",
    "cc",
    "certain_answer_over_extensions",
    "certain_answer_over_models",
    "cinstance",
    "condition",
    "cq",
    "database_schema",
    "denial_cc",
    "empty_instance",
    "empty_master",
    "engine_names",
    "eq",
    "evaluate",
    "fd",
    "fd_as_ccs",
    "finite_domain",
    "fixpoint_query",
    "fo",
    "ind",
    "infinite_domain",
    "instance",
    "is_consistent",
    "is_extensible",
    "is_ground_complete",
    "is_minimal_complete",
    "is_relatively_complete",
    "is_strongly_complete",
    "is_viably_complete",
    "is_weakly_complete",
    "minp",
    "models",
    "neq",
    "projection",
    "rcdp",
    "rcqp",
    "register_engine",
    "registry_workload",
    "relation_containment_cc",
    "rule",
    "satisfies_all",
    "schema",
    "ucq",
    "unregister_engine",
    "var",
    "var_eq",
    "var_neq",
    "variables",
    "weak_completeness_report",
]
