"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single base class.  Sub-classes mirror the major subsystems:
schema/data-model errors, query construction/evaluation errors, c-table
errors, constraint errors and decision-procedure errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation violates a schema."""


class DomainError(SchemaError):
    """A constant does not belong to the declared attribute domain."""


class ArityError(SchemaError):
    """A tuple, atom or query result has the wrong number of components."""


class UnknownRelationError(SchemaError):
    """A relation name is not declared in the schema in scope."""


class QueryError(ReproError):
    """A query is malformed (unsafe, ill-typed, unknown relation, ...)."""


class UnsafeQueryError(QueryError):
    """A query is not range restricted / not safe for evaluation."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. fixpoint did not converge in bounds)."""


class CTableError(ReproError):
    """A c-table or c-instance is malformed."""


class ConditionError(CTableError):
    """A local condition is malformed or refers to unknown variables."""


class ValuationError(CTableError):
    """A valuation is not well defined for the c-table it is applied to."""


class ConstraintError(ReproError):
    """A containment constraint or classical dependency is malformed."""


class CompletenessError(ReproError):
    """A relative-completeness decision procedure was invoked incorrectly."""


class InconsistentCInstanceError(CompletenessError):
    """Raised when ``Mod(T, D_m, V)`` is empty but a non-empty set is required."""


class BoundExceededError(ReproError):
    """A bounded search exhausted its configured budget without an answer."""


class SearchError(ReproError):
    """A world-search engine was selected or configured incorrectly."""


class SearchCancelledError(SearchError):
    """A cooperative world search was cancelled via its ``stop_check`` hook.

    Raised by :class:`repro.search.engine.WorldSearch` when the caller-supplied
    ``stop_check`` callable reports ``True`` mid-search.  The parallel engine
    uses it to abort outstanding shards once another shard has found a model.
    """


class ReductionError(ReproError):
    """A lower-bound reduction was given malformed input."""


class UpdateError(ReproError):
    """An incremental update of a :class:`repro.api.Database` is malformed.

    Raised for updates that reference unknown relations, drop rows that are
    not present, or add rows violating the schema (the underlying
    :class:`~repro.exceptions.CTableError` is chained as the cause).
    """


class InconsistentUpdateError(UpdateError):
    """An :class:`repro.api.UpdateBatch` left ``Mod(T, D_m, V)`` empty.

    The batch is rolled back to the state at ``batch()`` entry before this is
    raised, so the database never remains in the inconsistent state.
    """


class ServiceError(ReproError):
    """A :mod:`repro.service` request or configuration is invalid.

    Carries the HTTP status the service maps the failure to (400 for
    malformed requests, 404 for unknown sessions, 409 for conflicts, ...),
    so the server layer can translate without pattern-matching messages.
    """

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
