"""Structural typing contracts for the engine, checker and query layers.

This module centralises the :class:`typing.Protocol` classes that describe
how the major subsystems plug into each other, so that type checkers (the
``mypy --strict`` gate) and human readers share one written contract:

* :class:`WorldSearchEngine` — what a registered world-search engine
  factory must produce (the registry's ``WorldSearchLike`` is an alias);
* :class:`SupportsCheckerSessions` / :class:`CheckerSessionProtocol` — the
  incremental constraint-checking channel engines consume;
* :class:`SearchSink` — the collector fed by
  :func:`repro.search.registry.collect_searches`;
* :class:`QueryProtocol` (re-exported from
  :mod:`repro.queries.evaluation`) — the structural contract every query
  representation satisfies.

None of these names are part of the stable public API surface locked by
``tests/api/public_api_snapshot.json`` — they are typing aids, importable
as ``repro.protocols`` but free to grow new optional members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Protocol, runtime_checkable

from repro.queries.evaluation import QueryProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.constraints.containment import ContainmentConstraint
    from repro.ctables.valuation import Valuation
    from repro.relational.instance import GroundInstance, Row

__all__ = [
    "CheckerSessionProtocol",
    "QueryProtocol",
    "SearchSink",
    "SupportsCheckerSessions",
    "WorldSearchEngine",
]


@runtime_checkable
class WorldSearchEngine(Protocol):
    """The object shape every registered engine factory must produce.

    The four built-in engines (propagating, sat, parallel, naive) all
    satisfy this protocol, and the registry's
    :data:`~repro.search.registry.EngineFactory` is typed to return it.
    ``stats`` is deliberately loose (``Any``): the per-engine stats shapes
    are heterogeneous (tree-search node counts, CNF clause counts, shard
    merge counters) and are folded together duck-typed by
    :func:`repro.decision.aggregate_search_stats`.
    """

    stats: Any

    def search(self) -> Iterator[tuple[Valuation, GroundInstance]]:
        """Enumerate ``(valuation, world)`` pairs of ``Mod_Adom(T, D_m, V)``."""
        ...

    def worlds(self, deduplicate: bool = True) -> Iterator[GroundInstance]:
        """Enumerate the possible worlds, optionally deduplicated."""
        ...

    def has_world(self) -> bool:
        """Whether at least one possible world exists (existence fast path)."""
        ...

    def count_worlds(self) -> int:
        """The number of distinct possible worlds."""
        ...


@runtime_checkable
class CheckerSessionProtocol(Protocol):
    """An incremental constraint-checking session (push/pop trail).

    The contract engines rely on: :meth:`push` asserts one fact and reports
    whether all containment constraints still hold; :meth:`pop` retracts the
    most recent fact; :meth:`mark` / :meth:`pop_to` bracket a subtree so an
    engine can unwind a whole branch (including across exceptions — lint
    rule R002 enforces the balanced-unwind discipline on implementations
    and callers alike).
    """

    @property
    def depth(self) -> int:
        """The number of facts currently pushed."""
        ...

    @property
    def is_satisfied(self) -> bool:
        """Whether every constraint holds for the pushed facts."""
        ...

    def push(self, relation: str, row: Row) -> bool:
        """Assert one fact; returns whether all constraints still hold."""
        ...

    def pop(self) -> None:
        """Retract the most recently pushed fact."""
        ...

    def mark(self) -> int:
        """The current trail position, for a later :meth:`pop_to`."""
        ...

    def pop_to(self, mark: int) -> None:
        """Retract every fact pushed after ``mark`` was taken."""
        ...


@runtime_checkable
class SupportsCheckerSessions(Protocol):
    """The checker channel: a factory of incremental checking sessions.

    :class:`repro.search.propagation.ConstraintChecker` is the canonical
    implementation; engines that accept a prebuilt checker (capability
    ``accepts_checker``) receive one through this interface, either as an
    explicit ``checker=`` argument or ambiently via
    :func:`repro.search.registry.use_checker`.
    """

    @property
    def constraints(self) -> list[ContainmentConstraint]:
        """The containment constraints the checker enforces."""
        ...

    def session(self, relation_names: Iterable[str] = ()) -> CheckerSessionProtocol:
        """A fresh session seeded with empty relations of the given names."""
        ...


class SearchSink(Protocol):
    """Anything :func:`repro.search.registry.collect_searches` can feed.

    A plain ``list`` satisfies this; :class:`repro.decision.DecisionRecorder`
    uses one to attribute engine work to the Decision it builds.
    """

    def append(self, search: WorldSearchEngine, /) -> None:
        """Receive one engine object at its creation."""
        ...
