"""Conditional tables (c-tables).

A c-table of a relation schema ``R`` is a pair ``(T, ξ)`` where ``T`` is a
tableau — tuples whose components are constants or variables — and ``ξ``
associates a local condition with each tuple (Section 2.2).  Variables of an
attribute ``A`` range over ``dom(A)``; constants and variables never mix
(enforced by the library through distinct Python types).

A :class:`CTable` is immutable.  Its rows are :class:`CTableRow` objects
pairing a tuple of terms with a :class:`~repro.ctables.conditions.Condition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import CTableError, ValuationError
from repro.ctables.conditions import TRUE, Condition
from repro.queries.terms import ConstantTerm, Term, Variable, is_variable
from repro.relational.domains import Constant
from repro.relational.instance import Relation, Row
from repro.relational.schema import RelationSchema


@dataclass(frozen=True)
class CTableRow:
    """A row of a c-table: a tuple of terms plus a local condition."""

    terms: tuple[Term, ...]
    condition: Condition

    def __init__(self, terms: Sequence[Term], condition: Condition = TRUE) -> None:
        object.__setattr__(self, "terms", tuple(terms))
        object.__setattr__(self, "condition", condition)

    @property
    def arity(self) -> int:
        """Number of components of the row."""
        return len(self.terms)

    def variables(self) -> set[Variable]:
        """Variables of the row's terms and of its condition."""
        result = {t for t in self.terms if is_variable(t)}
        result |= self.condition.variables()
        return result

    def term_variables(self) -> set[Variable]:
        """Variables occurring in the row's terms only."""
        return {t for t in self.terms if is_variable(t)}

    def constants(self) -> set[ConstantTerm]:
        """Constants of the row's terms and of its condition."""
        result = {t for t in self.terms if not is_variable(t)}
        result |= self.condition.constants()
        return result

    def is_ground(self) -> bool:
        """Whether the row contains no variables and has the trivial condition."""
        return not self.variables() and self.condition.is_true

    def apply(self, valuation: Mapping[Variable, Constant]) -> Row | None:
        """Instantiate the row under a valuation.

        Returns the resulting ground tuple, or ``None`` if the row's local
        condition evaluates to false under the valuation.
        """
        if not self.condition.evaluate(valuation):
            return None
        values: list[Constant] = []
        for term in self.terms:
            if is_variable(term):
                if term not in valuation:
                    raise ValuationError(
                        f"valuation does not cover variable {term!r}"
                    )
                values.append(valuation[term])
            else:
                values.append(term)
        return tuple(values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        if self.condition.is_true:
            return f"({inner})"
        return f"({inner}) if {self.condition!r}"


class CTable:
    """A c-table ``(T, ξ)`` over a relation schema."""

    __slots__ = ("_schema", "_rows")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[CTableRow | Sequence[Term]] = (),
    ) -> None:
        normalised: list[CTableRow] = []
        for row in rows:
            if not isinstance(row, CTableRow):
                row = CTableRow(row)
            if row.arity != schema.arity:
                raise CTableError(
                    f"row {row!r} has arity {row.arity}, schema {schema.name!r} "
                    f"expects {schema.arity}"
                )
            self._check_finite_domains(schema, row)
            normalised.append(row)
        self._schema = schema
        self._rows = tuple(normalised)

    @staticmethod
    def _check_finite_domains(schema: RelationSchema, row: CTableRow) -> None:
        for attribute, term in zip(schema.attributes, row.terms):
            if not is_variable(term) and attribute.domain.is_finite:
                if term not in attribute.domain:
                    raise CTableError(
                        f"constant {term!r} is outside the finite domain of "
                        f"{schema.name}.{attribute.name}"
                    )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation schema of the c-table."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def rows(self) -> tuple[CTableRow, ...]:
        """The rows of the c-table, in insertion order."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[CTableRow]:
        return iter(self._rows)

    def is_empty(self) -> bool:
        """Whether the c-table has no rows."""
        return not self._rows

    def is_ground(self) -> bool:
        """Whether every row is ground (no variables, trivial conditions)."""
        return all(row.is_ground() for row in self._rows)

    def variables(self) -> set[Variable]:
        """All variables of the c-table (rows and conditions)."""
        result: set[Variable] = set()
        for row in self._rows:
            result |= row.variables()
        return result

    def constants(self) -> set[ConstantTerm]:
        """All constants of the c-table (rows and conditions)."""
        result: set[ConstantTerm] = set()
        for row in self._rows:
            result |= row.constants()
        return result

    def variable_positions(self) -> dict[Variable, set[tuple[str, str]]]:
        """For each term variable, the set of ``(relation, attribute)`` positions."""
        result: dict[Variable, set[tuple[str, str]]] = {}
        for row in self._rows:
            for attribute, term in zip(self._schema.attributes, row.terms):
                if is_variable(term):
                    result.setdefault(term, set()).add((self.name, attribute.name))
        return result

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def add_row(
        self, terms: Sequence[Term], condition: Condition = TRUE
    ) -> "CTable":
        """A new c-table with one row appended."""
        return CTable(self._schema, list(self._rows) + [CTableRow(terms, condition)])

    def remove_row(self, index: int) -> "CTable":
        """A new c-table with the row at ``index`` removed."""
        if not 0 <= index < len(self._rows):
            raise CTableError(f"row index {index} out of range")
        remaining = list(self._rows)
        del remaining[index]
        return CTable(self._schema, remaining)

    def restrict(self, indices: Iterable[int]) -> "CTable":
        """A new c-table containing only the rows at the given indices."""
        keep = sorted(set(indices))
        for index in keep:
            if not 0 <= index < len(self._rows):
                raise CTableError(f"row index {index} out of range")
        return CTable(self._schema, [self._rows[i] for i in keep])

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def apply(self, valuation: Mapping[Variable, Constant]) -> Relation:
        """The ground relation ``µ(T)`` induced by a valuation.

        Rows whose condition is violated are dropped, as per the definition
        of ``µ(T)`` in Section 2.2.
        """
        rows: set[Row] = set()
        for row in self._rows:
            ground = row.apply(valuation)
            if ground is not None:
                rows.add(ground)
        return Relation(self._schema, rows)

    @classmethod
    def from_relation(cls, relation: Relation) -> "CTable":
        """View a ground relation as a c-table without variables or conditions."""
        return cls(relation.schema, [CTableRow(row) for row in relation])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CTable):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTable({self.name}, {len(self._rows)} rows, {len(self.variables())} vars)"
