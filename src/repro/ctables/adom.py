"""The active domain construction ``Adom``.

The decision procedures of the paper never need to consider arbitrary
valuations of a c-instance: Proposition 3.3 (consistency/extensibility),
Lemma 4.2/4.3 (strong model) and Lemma 5.2 (weak model) show that it suffices
to instantiate variables with values from

    ``Adom = S ∪ New ∪ df``

where

* ``S`` is the set of constants occurring in the c-instance ``T``, the master
  data ``D_m``, the CCs ``V`` and (where relevant) the query ``Q``,
* ``New`` contains one *fresh* constant per variable of ``T`` (and of ``V`` /
  ``Q`` where relevant), distinct from everything in ``S``, and
* ``df`` collects all values of the finite attribute domains of the schema.

Variables occurring in a finite-domain attribute position must be valuated
within that finite domain; all other variables range over the whole of
``Adom``.  :class:`ActiveDomain` packages the constant pool together with the
fresh values so that callers can build per-variable candidate pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.ctables.cinstance import CInstance
from repro.queries.terms import Variable
from repro.relational.domains import Constant, Domain
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema
from repro.utils.naming import FreshNameSupply


@dataclass(frozen=True)
class ActiveDomain:
    """The active domain used by the Adom-restricted decision procedures."""

    constants: frozenset[Constant]
    fresh_values: tuple[Constant, ...]
    finite_domain_values: frozenset[Constant]

    def __contains__(self, value: Constant) -> bool:
        return value in self.constants

    def __len__(self) -> int:
        return len(self.constants)

    def ordered(self) -> list[Constant]:
        """The constants in a deterministic order."""
        return sorted(self.constants, key=repr)

    def pool_for(self, restriction: Domain | None = None) -> list[Constant]:
        """Candidate values for a variable.

        ``restriction`` is the finite attribute domain constraining the
        variable, if any; unrestricted variables range over all of ``Adom``.
        """
        if restriction is not None and restriction.is_finite:
            return sorted(restriction.values, key=repr)  # type: ignore[arg-type]
        return self.ordered()

    def extend(self, extra: Iterable[Constant]) -> "ActiveDomain":
        """A new active domain with additional constants added."""
        return ActiveDomain(
            constants=self.constants | frozenset(extra),
            fresh_values=self.fresh_values,
            finite_domain_values=self.finite_domain_values,
        )

    def diff(self, other: "ActiveDomain") -> tuple[frozenset[Constant], frozenset[Constant]]:
        """``(gained, lost)`` constants relative to another active domain.

        Used by :meth:`repro.api.Database.update` to report the Adom delta
        an update induced (constants entering or leaving ``S``, or a change
        in the fresh-value supply when rows with variables come and go).
        """
        return (
            self.constants - other.constants,
            other.constants - self.constants,
        )


def finite_domain_values(schema: DatabaseSchema) -> frozenset[Constant]:
    """All values of finite attribute domains in a database schema (``df``)."""
    values: set[Constant] = set()
    for relation in schema:
        for attribute in relation.attributes:
            if attribute.domain.is_finite:
                values |= set(attribute.domain.values or ())
    return frozenset(values)


def build_active_domain(
    cinstance: CInstance | None = None,
    master: MasterData | None = None,
    constraint_constants: Iterable[Constant] = (),
    query_constants: Iterable[Constant] = (),
    extra_constants: Iterable[Constant] = (),
    extra_variables: Iterable[Variable] = (),
    schema: DatabaseSchema | None = None,
    fresh_supply: FreshNameSupply | None = None,
) -> ActiveDomain:
    """Build ``Adom`` for a decision-procedure input.

    Parameters
    ----------
    cinstance:
        The c-instance ``T`` whose constants and variables seed ``S`` and
        ``New``.  May be ``None`` when only a ground instance is involved
        (pass its constants through ``extra_constants``).
    master:
        The master data ``D_m``.
    constraint_constants / query_constants / extra_constants:
        Constants contributed by the CCs ``V``, the query ``Q``, and any other
        source (e.g. a ground instance ``I``).
    extra_variables:
        Variables beyond those of ``T`` that also need a fresh value each
        (e.g. the variables of a query tableau in Lemma 4.2, or of the CCs).
    schema:
        The database schema whose finite attribute domains populate ``df``;
        defaults to the c-instance's schema when available.
    fresh_supply:
        Optional supply used to generate the ``New`` values (deterministic by
        default).
    """
    supply = fresh_supply or FreshNameSupply()
    base: set[Constant] = set()
    variables: set[Variable] = set(extra_variables)

    if cinstance is not None:
        base |= set(cinstance.constants())
        variables |= cinstance.variables()
        if schema is None:
            schema = cinstance.schema
    if master is not None:
        base |= set(master.constants())
    base |= set(constraint_constants)
    base |= set(query_constants)
    base |= set(extra_constants)

    def next_fresh(hint: str) -> Constant:
        # Fresh values must be genuinely new: they may not collide with any
        # constant of the input (previously generated fresh values can end up
        # as ordinary constants of a derived instance, e.g. an RCQP witness).
        candidate = supply.next(hint)
        while candidate in base:
            candidate = supply.next(hint)
        return candidate

    fresh: list[Constant] = []
    for variable in sorted(variables, key=lambda v: v.name):
        fresh.append(next_fresh(variable.name))
    if not fresh:
        # Degenerate inputs (no variables anywhere) would otherwise leave the
        # active domain empty, making e.g. an unconstrained empty instance
        # look non-extensible.  One generic fresh value keeps Adom non-empty
        # and is harmless: the paper's restriction arguments hold for any
        # superset of the prescribed Adom.
        fresh.append(next_fresh("adom"))

    df = finite_domain_values(schema) if schema is not None else frozenset()

    constants = frozenset(base) | frozenset(fresh) | df
    return ActiveDomain(
        constants=constants,
        fresh_values=tuple(fresh),
        finite_domain_values=df,
    )


def variable_pools(
    variables: Iterable[Variable],
    adom: ActiveDomain,
    restrictions: Mapping[Variable, Domain] | None = None,
) -> dict[Variable, list[Constant]]:
    """Per-variable candidate pools over the active domain.

    ``restrictions`` maps variables to the finite attribute domains they occur
    in (see :meth:`CInstance.variable_domains`).
    """
    restrictions = restrictions or {}
    pools: dict[Variable, list[Constant]] = {}
    for variable in sorted(set(variables), key=lambda v: v.name):
        pools[variable] = adom.pool_for(restrictions.get(variable))
    return pools


def pool_sizes(pools: Mapping[Variable, Sequence[Constant]]) -> int:
    """The number of valuations a pool assignment induces."""
    total = 1
    for values in pools.values():
        total *= len(values)
    return total
