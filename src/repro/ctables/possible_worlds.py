"""Possible worlds of a partially closed c-instance.

``Mod(T, D_m, V)`` is the set of ground instances ``µ(T)`` obtained from
valuations ``µ`` such that ``(µ(T), D_m) |= V`` (Section 2.2).  The set is
infinite in general (variables range over infinite domains), but by
Proposition 3.3 it suffices to consider valuations over the active domain
``Adom``; the paper writes the restricted set ``Mod_Adom(T, D_m, V)``.

This module enumerates ``Mod_Adom``.  The enumeration is backed by
interchangeable engines resolved through the registry of
:mod:`repro.search.registry`; every function here (and every decider in
:mod:`repro.completeness`) accepts an ``engine`` keyword naming one —
a string, an :class:`~repro.search.registry.EngineConfig`, or ``None`` for
the default.  The built-in engines:

* ``engine="propagating"`` (the default) — the backtracking search of
  :mod:`repro.search`: variables are assigned one at a time, containment
  constraints are checked on partially grounded worlds so dead branches are
  pruned before their exponentially many completions are materialised, fresh
  Adom values are symmetry-reduced for pure existence checks, and duplicate
  worlds are suppressed via a canonical form;
* ``engine="sat"`` — membership in ``Mod_Adom(T, D_m, V)`` is compiled to
  CNF (:mod:`repro.search.cnf_encoding`) and handed to the DPLL solver of
  :mod:`repro.reductions.dpll`; existence checks are a single SAT call and
  enumeration uses selector-projected blocking clauses.  Conditions and
  (in)equality-heavy constraints are evaluated once, at encoding time, which
  is the regime where this engine overtakes the propagating one;
* ``engine="parallel"`` — the sharded process-parallel engine of
  :mod:`repro.search.parallel`: the propagating search tree is partitioned by
  the first ordered variable's pool values (pairs of the first two variables
  when the first pool is small) and the shards are farmed to a process pool,
  with results merged in shard order so the enumeration is order-identical
  to the serial propagating engine.  The ``workers`` keyword (default: one
  per available CPU) sizes the pool; small searches silently fall back to
  the serial path; and
* ``engine="naive"`` — the original cross-product enumeration
  (:class:`~repro.search.naive.NaiveWorldSearch`), kept as the reference
  implementation the engines are parity-tested against.

Additional engines registered through
:func:`repro.search.registry.register_engine` are selectable here without
any change to this module.  All engines produce the same set of valuations
and worlds (only the enumeration order may differ; engines whose
capabilities declare ``order_identical`` reproduce the ``"propagating"``
order exactly).  The higher-level decision procedures (consistency, RCDP,
RCQP, MINP) are built on top of this module in :mod:`repro.completeness`.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterator, Mapping, Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation
from repro.queries.evaluation import Query, query_constants, query_variables
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.propagation import ConstraintChecker
from repro.search.registry import (
    DEFAULT_ENGINE,
    EngineConfig,
    EngineSpec,
    WorldSearchLike,
)

__all__ = [
    "DEFAULT_ENGINE",
    "default_active_domain",
    "has_model",
    "model_count",
    "models",
    "models_with_valuations",
    "resolve_engine",
]

def resolve_engine(engine: EngineConfig | str | None) -> str:
    """Deprecated: normalise an ``engine`` keyword to a validated name.

    Kept as a shim for pre-registry callers; use
    :func:`repro.search.registry.resolve_engine_name` (or pass the selection
    straight through — every ``engine=`` keyword now coerces it) instead.
    """
    warnings.warn(
        "resolve_engine is deprecated; use "
        "repro.search.registry.resolve_engine_name",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.search.registry import resolve_engine_name

    return resolve_engine_name(engine)


def _engine_plan(
    engine: EngineConfig | str | None, workers: int | None
) -> tuple[EngineSpec, int | None, Mapping[str, Any]]:
    """Resolve an engine selection to ``(spec, workers, factory options)``.

    An explicit ``workers=`` argument wins over the config's ``workers``
    field (the keyword is the more local declaration).
    """
    config = EngineConfig.coerce(engine)
    spec = config.spec()
    return spec, workers if workers is not None else config.workers, config.options


def _make_search(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None,
    engine: EngineConfig | str | None,
    workers: int | None,
    *,
    existence: bool = False,
    checker: "ConstraintChecker | None" = None,
) -> WorldSearchLike:
    spec, workers, options = _engine_plan(engine, workers)
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    return spec.create(
        cinstance,
        master,
        constraints,
        adom,
        workers=workers,
        checker=checker,
        break_symmetry=existence and spec.capabilities.symmetry_breaking,
        options=options,
    )


def default_active_domain(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    query: Query | None = None,
) -> ActiveDomain:
    """The ``Adom`` of Proposition 3.3 / Theorem 4.1 for the given input.

    Constants come from the c-instance, the master data, the CCs and (when
    supplied) the query; fresh values are added for the variables of the
    c-instance and of the CCs (and of the query when supplied, per the
    explicit ``variables()`` contract of the query protocol).
    """
    query_consts = query_constants(query) if query is not None else frozenset()
    query_vars = set(query_variables(query)) if query is not None else set()
    return build_active_domain(
        cinstance=cinstance,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        query_constants=query_consts,
        extra_variables=constraint_set_variables(constraints) | query_vars,
    )


def models_with_valuations(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    checker: "ConstraintChecker | None" = None,
    *,
    break_symmetry: bool = False,
) -> Iterator[tuple[Valuation, GroundInstance]]:
    """Enumerate ``(µ, µ(T))`` pairs with ``µ(T) ∈ Mod_Adom(T, D_m, V)``.

    ``workers`` sizes the worker pool of engines that support one (default:
    one worker per available CPU); the other engines ignore it.  ``checker``
    optionally shares a prebuilt
    :class:`~repro.search.propagation.ConstraintChecker` with
    checker-accepting engines — pass it explicitly for generator consumers
    (the ambient :func:`repro.search.registry.use_checker` channel must not
    be held open across generator suspension).

    ``break_symmetry=True`` asks engines that support it for fresh-value
    symmetry reduction (value precedence over the interchangeable fresh Adom
    values): the enumeration then yields exactly one representative per
    orbit of the fresh-value permutation group instead of the full set of
    valuations.  That is *not* the ``Mod_Adom`` multiset — only existence
    probes whose acceptance predicate is invariant under fresh-value
    permutation (e.g. the strict-extension filter of
    :func:`repro.completeness.extensions.has_partially_closed_extension`)
    may use it.  Engines without the capability ignore the flag, which is
    sound: they enumerate a superset of the representatives.
    """
    yield from _make_search(
        cinstance, master, constraints, adom, engine, workers,
        existence=break_symmetry, checker=checker,
    ).search()


def models(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    deduplicate: bool = True,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    checker: "ConstraintChecker | None" = None,
) -> Iterator[GroundInstance]:
    """Enumerate ``Mod_Adom(T, D_m, V)``.

    Distinct valuations may induce the same ground instance; by default the
    duplicates are suppressed so callers iterate over the set of worlds.
    ``workers`` sizes the worker pool of engines that support one;
    ``checker`` shares a prebuilt constraint checker (see
    :func:`models_with_valuations`).
    """
    yield from _make_search(
        cinstance, master, constraints, adom, engine, workers, checker=checker
    ).worlds(deduplicate=deduplicate)


def has_model(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    checker: "ConstraintChecker | None" = None,
) -> bool:
    """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency property).

    By the correctness argument of Proposition 3.3, emptiness over ``Adom``
    coincides with emptiness over all valuations.  Engines whose
    capabilities declare ``symmetry_breaking`` are asked to apply fresh-value
    symmetry reduction here, which preserves (non-)emptiness but not the
    world multiset — existence is all this function reports.  Engines with
    ``supports_cancellation`` abandon in-flight work as soon as an answer is
    known (the parallel engine races its shards and cancels the losers).
    """
    return _make_search(
        cinstance, master, constraints, adom, engine, workers,
        existence=True, checker=checker,
    ).has_world()


def model_count(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: EngineConfig | str | None = None,
    workers: int | None = None,
    checker: "ConstraintChecker | None" = None,
) -> int:
    """The number of distinct worlds in ``Mod_Adom(T, D_m, V)``.

    Engines whose capabilities declare ``counts_natively`` count without
    materialising the worlds through :func:`models` — the SAT engine counts
    canonical forms over its blocking-clause valuation enumeration, the
    parallel engine merges per-shard world-key sets — which is both faster
    and lighter on memory for wide instances.
    """
    spec, resolved_workers, _options = _engine_plan(engine, workers)
    search = _make_search(
        cinstance, master, constraints, adom, engine, resolved_workers,
        checker=checker,
    )
    if spec.capabilities.counts_natively:
        return search.count_worlds()
    return sum(1 for _ in search.worlds(deduplicate=True))
