"""Possible worlds of a partially closed c-instance.

``Mod(T, D_m, V)`` is the set of ground instances ``µ(T)`` obtained from
valuations ``µ`` such that ``(µ(T), D_m) |= V`` (Section 2.2).  The set is
infinite in general (variables range over infinite domains), but by
Proposition 3.3 it suffices to consider valuations over the active domain
``Adom``; the paper writes the restricted set ``Mod_Adom(T, D_m, V)``.

This module enumerates ``Mod_Adom``.  Four interchangeable engines back the
enumeration, selected with the ``engine`` keyword accepted by every function
here (and threaded through the deciders in :mod:`repro.completeness`):

* ``engine="propagating"`` (the default) — the backtracking search of
  :mod:`repro.search`: variables are assigned one at a time, containment
  constraints are checked on partially grounded worlds so dead branches are
  pruned before their exponentially many completions are materialised, fresh
  Adom values are symmetry-reduced for pure existence checks, and duplicate
  worlds are suppressed via a canonical form;
* ``engine="sat"`` — membership in ``Mod_Adom(T, D_m, V)`` is compiled to
  CNF (:mod:`repro.search.cnf_encoding`) and handed to the DPLL solver of
  :mod:`repro.reductions.dpll`; existence checks are a single SAT call and
  enumeration uses selector-projected blocking clauses.  Conditions and
  (in)equality-heavy constraints are evaluated once, at encoding time, which
  is the regime where this engine overtakes the propagating one;
* ``engine="parallel"`` — the sharded process-parallel engine of
  :mod:`repro.search.parallel`: the propagating search tree is partitioned by
  the first ordered variable's pool values (pairs of the first two variables
  when the first pool is small) and the shards are farmed to a process pool,
  with results merged in shard order so the enumeration is order-identical
  to the serial propagating engine.  The ``workers`` keyword (default: one
  per available CPU) sizes the pool; small searches silently fall back to
  the serial path; and
* ``engine="naive"`` — the original cross-product enumeration
  (``itertools.product`` over the variable pools, constraints checked on
  complete worlds only), kept as the reference implementation the engines
  are parity-tested against.

All engines produce the same set of valuations and worlds (only the
enumeration order may differ; ``"parallel"`` even reproduces the
``"propagating"`` order exactly).  The higher-level decision procedures
(consistency, RCDP, RCQP, MINP) are built on top of this module in
:mod:`repro.completeness`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
    satisfies_all,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation, enumerate_valuations
from repro.exceptions import SearchError
from repro.queries.evaluation import Query, query_constants
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData
from repro.search.engine import WorldSearch
from repro.search.parallel import ParallelWorldSearch
from repro.search.sat_engine import SATWorldSearch

#: Engine used when callers do not request one explicitly.
DEFAULT_ENGINE = "propagating"

_ENGINE_NAMES = ("propagating", "sat", "parallel", "naive")


def resolve_engine(engine: str | None) -> str:
    """Normalise an ``engine`` keyword; ``None`` means :data:`DEFAULT_ENGINE`."""
    resolved = DEFAULT_ENGINE if engine is None else engine
    if resolved not in _ENGINE_NAMES:
        raise SearchError(
            f"unknown world-search engine {engine!r}; expected one of {_ENGINE_NAMES}"
        )
    return resolved


def default_active_domain(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    query: Query | None = None,
) -> ActiveDomain:
    """The ``Adom`` of Proposition 3.3 / Theorem 4.1 for the given input.

    Constants come from the c-instance, the master data, the CCs and (when
    supplied) the query; fresh values are added for the variables of the
    c-instance and of the CCs (and of the query when supplied).
    """
    query_consts = query_constants(query) if query is not None else frozenset()
    query_vars = set()
    if query is not None and hasattr(query, "variables"):
        query_vars = set(query.variables())
    return build_active_domain(
        cinstance=cinstance,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        query_constants=query_consts,
        extra_variables=constraint_set_variables(constraints) | query_vars,
    )


def models_with_valuations(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> Iterator[tuple[Valuation, GroundInstance]]:
    """Enumerate ``(µ, µ(T))`` pairs with ``µ(T) ∈ Mod_Adom(T, D_m, V)``.

    ``workers`` sizes the process pool of ``engine="parallel"`` (default: one
    worker per available CPU); the other engines ignore it.
    """
    engine = resolve_engine(engine)
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    if engine == "naive":
        for valuation in enumerate_valuations(cinstance, adom):
            world = cinstance.apply(valuation)
            if satisfies_all(world, master, constraints):
                yield valuation, world
        return
    if engine == "sat":
        yield from SATWorldSearch(cinstance, master, constraints, adom).search()
        return
    if engine == "parallel":
        yield from ParallelWorldSearch(
            cinstance, master, constraints, adom, workers=workers
        ).search()
        return
    yield from WorldSearch(cinstance, master, constraints, adom).search()


def models(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    deduplicate: bool = True,
    engine: str | None = None,
    workers: int | None = None,
) -> Iterator[GroundInstance]:
    """Enumerate ``Mod_Adom(T, D_m, V)``.

    Distinct valuations may induce the same ground instance; by default the
    duplicates are suppressed so callers iterate over the set of worlds.
    ``workers`` sizes the process pool of ``engine="parallel"``.
    """
    engine = resolve_engine(engine)
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    if engine == "naive":
        seen: set[GroundInstance] = set()
        for _valuation, world in models_with_valuations(
            cinstance, master, constraints, adom, engine="naive"
        ):
            if deduplicate:
                if world in seen:
                    continue
                seen.add(world)
            yield world
        return
    if engine == "sat":
        yield from SATWorldSearch(cinstance, master, constraints, adom).worlds(
            deduplicate=deduplicate
        )
        return
    if engine == "parallel":
        yield from ParallelWorldSearch(
            cinstance, master, constraints, adom, workers=workers
        ).worlds(deduplicate=deduplicate)
        return
    yield from WorldSearch(cinstance, master, constraints, adom).worlds(
        deduplicate=deduplicate
    )


def has_model(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> bool:
    """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency property).

    By the correctness argument of Proposition 3.3, emptiness over ``Adom``
    coincides with emptiness over all valuations.  The propagating engine
    additionally applies fresh-value symmetry breaking here, which preserves
    (non-)emptiness but not the world multiset — existence is all this
    function reports.  The parallel engine races its shards and cancels the
    losers as soon as one shard reports a model.
    """
    engine = resolve_engine(engine)
    if engine == "naive":
        for _ in models_with_valuations(
            cinstance, master, constraints, adom, engine="naive"
        ):
            return True
        return False
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    if engine == "sat":
        return SATWorldSearch(cinstance, master, constraints, adom).has_world()
    if engine == "parallel":
        return ParallelWorldSearch(
            cinstance, master, constraints, adom, workers=workers
        ).has_world()
    return WorldSearch(
        cinstance, master, constraints, adom, break_symmetry=True
    ).has_world()


def model_count(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    engine: str | None = None,
    workers: int | None = None,
) -> int:
    """The number of distinct worlds in ``Mod_Adom(T, D_m, V)``."""
    return sum(
        1
        for _ in models(
            cinstance, master, constraints, adom, engine=engine, workers=workers
        )
    )
