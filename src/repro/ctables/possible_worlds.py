"""Possible worlds of a partially closed c-instance.

``Mod(T, D_m, V)`` is the set of ground instances ``µ(T)`` obtained from
valuations ``µ`` such that ``(µ(T), D_m) |= V`` (Section 2.2).  The set is
infinite in general (variables range over infinite domains), but by
Proposition 3.3 it suffices to consider valuations over the active domain
``Adom``; the paper writes the restricted set ``Mod_Adom(T, D_m, V)``.

This module enumerates ``Mod_Adom``.  The higher-level decision procedures
(consistency, RCDP, RCQP, MINP) are built on top of it in
:mod:`repro.completeness`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    constraint_set_constants,
    constraint_set_variables,
    satisfies_all,
)
from repro.ctables.adom import ActiveDomain, build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.valuation import Valuation, enumerate_valuations
from repro.queries.evaluation import Query, query_constants
from repro.relational.instance import GroundInstance
from repro.relational.master import MasterData


def default_active_domain(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    query: Query | None = None,
) -> ActiveDomain:
    """The ``Adom`` of Proposition 3.3 / Theorem 4.1 for the given input.

    Constants come from the c-instance, the master data, the CCs and (when
    supplied) the query; fresh values are added for the variables of the
    c-instance and of the CCs (and of the query when supplied).
    """
    query_consts = query_constants(query) if query is not None else frozenset()
    query_vars = set()
    if query is not None and hasattr(query, "variables"):
        query_vars = set(query.variables())
    return build_active_domain(
        cinstance=cinstance,
        master=master,
        constraint_constants=constraint_set_constants(constraints),
        query_constants=query_consts,
        extra_variables=constraint_set_variables(constraints) | query_vars,
    )


def models_with_valuations(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
) -> Iterator[tuple[Valuation, GroundInstance]]:
    """Enumerate ``(µ, µ(T))`` pairs with ``µ(T) ∈ Mod_Adom(T, D_m, V)``."""
    if adom is None:
        adom = default_active_domain(cinstance, master, constraints)
    for valuation in enumerate_valuations(cinstance, adom):
        world = cinstance.apply(valuation)
        if satisfies_all(world, master, constraints):
            yield valuation, world


def models(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
    deduplicate: bool = True,
) -> Iterator[GroundInstance]:
    """Enumerate ``Mod_Adom(T, D_m, V)``.

    Distinct valuations may induce the same ground instance; by default the
    duplicates are suppressed so callers iterate over the set of worlds.
    """
    seen: set[GroundInstance] = set()
    for _valuation, world in models_with_valuations(cinstance, master, constraints, adom):
        if deduplicate:
            if world in seen:
                continue
            seen.add(world)
        yield world


def has_model(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
) -> bool:
    """Whether ``Mod(T, D_m, V)`` is non-empty (the consistency property).

    By the correctness argument of Proposition 3.3, emptiness over ``Adom``
    coincides with emptiness over all valuations.
    """
    for _ in models_with_valuations(cinstance, master, constraints, adom):
        return True
    return False


def model_count(
    cinstance: CInstance,
    master: MasterData,
    constraints: Sequence[ContainmentConstraint],
    adom: ActiveDomain | None = None,
) -> int:
    """The number of distinct worlds in ``Mod_Adom(T, D_m, V)``."""
    return sum(1 for _ in models(cinstance, master, constraints, adom))
