"""Valuations of c-instances and their enumeration over the active domain.

A valuation ``µ`` maps every variable of a c-instance to a constant of the
appropriate domain (Section 2.2).  The decision procedures only need
valuations drawing values from the active domain ``Adom``
(:mod:`repro.ctables.adom`); this module enumerates them.

Valuations are plain dictionaries ``{Variable: Constant}``; the helpers here
create, combine and enumerate them.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ValuationError
from repro.ctables.adom import ActiveDomain, variable_pools
from repro.ctables.cinstance import CInstance
from repro.queries.terms import Variable
from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance

#: A valuation is a total mapping from variables to constants.
Valuation = dict[Variable, Constant]


def check_total(valuation: Mapping[Variable, Constant], variables: Iterable[Variable]) -> None:
    """Raise unless the valuation covers every given variable."""
    missing = sorted(v.name for v in set(variables) - set(valuation))
    if missing:
        raise ValuationError(f"valuation does not cover variables {missing}")


def enumerate_assignments(
    pools: Mapping[Variable, Sequence[Constant]],
) -> Iterator[Valuation]:
    """All assignments choosing one value per variable from its pool.

    Variables are processed in name order, so the enumeration is
    deterministic.  An empty pool for any variable yields no assignments.
    """
    variables = sorted(pools, key=lambda v: v.name)
    value_lists = [list(pools[v]) for v in variables]
    for values in itertools.product(*value_lists):
        yield dict(zip(variables, values))


def enumerate_valuations(
    cinstance: CInstance,
    adom: ActiveDomain,
    fixed: Mapping[Variable, Constant] | None = None,
) -> Iterator[Valuation]:
    """All valuations of a c-instance over the active domain.

    Finite-domain attribute positions restrict the pools of the variables
    occurring in them (Section 3).  ``fixed`` pins chosen variables to given
    values (used when a caller has already guessed part of a valuation).
    """
    fixed = dict(fixed or {})
    restrictions = cinstance.variable_domains()
    free_variables = cinstance.variables() - set(fixed)
    pools = variable_pools(free_variables, adom, restrictions)
    for partial in enumerate_assignments(pools):
        valuation = dict(fixed)
        valuation.update(partial)
        yield valuation


def count_valuations(
    cinstance: CInstance,
    adom: ActiveDomain,
    fixed: Mapping[Variable, Constant] | None = None,
) -> int:
    """The number of valuations :func:`enumerate_valuations` would produce.

    ``fixed`` pins variables exactly as in :func:`enumerate_valuations`:
    pinned variables contribute no factor, only the pools of the remaining
    free variables are multiplied.
    """
    fixed = dict(fixed or {})
    restrictions = cinstance.variable_domains()
    free_variables = cinstance.variables() - set(fixed)
    pools = variable_pools(free_variables, adom, restrictions)
    total = 1
    for values in pools.values():
        total *= len(values)
    return total


def apply_valuation(
    cinstance: CInstance, valuation: Mapping[Variable, Constant]
) -> GroundInstance:
    """``µ(T)`` — alias of :meth:`CInstance.apply` with a totality check."""
    check_total(valuation, cinstance.variables())
    return cinstance.apply(valuation)


def identity_on_constants(valuation: Mapping[Variable, Constant]) -> Valuation:
    """Return a copy of the valuation (valuations are identity on constants)."""
    return dict(valuation)
