"""c-instances: one c-table per relation of a database schema.

A c-instance ``T = (T1, ..., Tn)`` of a database schema collects one c-table
per relation (Section 2.2).  A valuation of the c-instance instantiates every
variable with a constant and yields a ground instance ``µ(T)``; the set of
ground instances obtained from valuations that respect the containment
constraints is ``Mod(T, D_m, V)`` (see
:mod:`repro.ctables.possible_worlds`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import CTableError
from repro.ctables.conditions import TRUE, Condition
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.terms import ConstantTerm, Term, Variable, is_variable
from repro.relational.domains import Constant, Domain
from repro.relational.instance import GroundInstance
from repro.relational.schema import DatabaseSchema


class CInstance:
    """A c-instance: a c-table for every relation of a database schema."""

    __slots__ = ("_schema", "_tables")

    def __init__(
        self,
        schema: DatabaseSchema,
        tables: Mapping[str, CTable | Iterable[CTableRow | Sequence[Term]]] | None = None,
    ) -> None:
        tables = tables or {}
        for name in tables:
            if name not in schema:
                raise CTableError(f"c-instance mentions unknown relation {name!r}")
        built: dict[str, CTable] = {}
        for rel_schema in schema:
            supplied = tables.get(rel_schema.name, ())
            if isinstance(supplied, CTable):
                if supplied.schema != rel_schema:
                    raise CTableError(
                        f"c-table for {rel_schema.name!r} has a different schema"
                    )
                built[rel_schema.name] = supplied
            else:
                built[rel_schema.name] = CTable(rel_schema, supplied)
        self._schema = schema
        self._tables = built

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        """The database schema of the c-instance."""
        return self._schema

    def table(self, name: str) -> CTable:
        """The c-table stored under ``name``."""
        if name not in self._tables:
            raise CTableError(f"no c-table {name!r} in this c-instance")
        return self._tables[name]

    def __getitem__(self, name: str) -> CTable:
        return self.table(name)

    def tables(self) -> Mapping[str, CTable]:
        """Read-only view of the name → c-table mapping."""
        return dict(self._tables)

    def __iter__(self) -> Iterator[CTable]:
        return iter(self._tables.values())

    @property
    def size(self) -> int:
        """Total number of rows across all c-tables (``|T|``)."""
        return sum(len(t) for t in self._tables.values())

    def is_empty(self) -> bool:
        """Whether every c-table is empty."""
        return self.size == 0

    def is_ground(self) -> bool:
        """Whether the c-instance contains no variables or conditions."""
        return all(t.is_ground() for t in self._tables.values())

    def variables(self) -> set[Variable]:
        """All variables of the c-instance."""
        result: set[Variable] = set()
        for t in self._tables.values():
            result |= t.variables()
        return result

    def constants(self) -> set[ConstantTerm]:
        """All constants of the c-instance."""
        result: set[ConstantTerm] = set()
        for t in self._tables.values():
            result |= t.constants()
        return result

    def rows(self) -> Iterator[tuple[str, int, CTableRow]]:
        """Iterate over ``(relation name, row index, row)`` triples."""
        for name in self._schema.relation_names:
            for index, row in enumerate(self._tables[name].rows):
                yield name, index, row

    def variable_domains(self) -> dict[Variable, Domain]:
        """The finite attribute domain constraining each variable, if any.

        A variable that occurs in a finite-domain attribute position must be
        instantiated within that finite domain (Section 3, definition of
        valuations on ``Adom``).  If a variable occurs in several positions
        with finite domains, the intersection applies; occurrences in
        infinite-domain positions impose no restriction.
        """
        result: dict[Variable, Domain] = {}
        for name, table in self._tables.items():
            rel_schema = self._schema[name]
            for row in table.rows:
                for attribute, term in zip(rel_schema.attributes, row.terms):
                    if not is_variable(term) or attribute.domain.is_infinite:
                        continue
                    current = result.get(term)
                    if current is None:
                        result[term] = attribute.domain
                    else:
                        merged = frozenset(current.values or ()) & frozenset(
                            attribute.domain.values or ()
                        )
                        result[term] = Domain(
                            name=f"{current.name}∩{attribute.domain.name}",
                            values=merged,
                        )
        return result

    def relation_fingerprints(self) -> dict[str, int]:
        """An order-insensitive content fingerprint per relation.

        Two c-tables with the same *set* of rows get the same fingerprint
        even when their insertion orders differ: row order never affects the
        possible-world semantics, so a drop followed by a re-add restores the
        fingerprint.  The incremental-update layer
        (:meth:`repro.api.Database.update`) keys its decision cache on these
        values and invalidates exactly the entries whose dependency relations
        changed.
        """
        return {
            name: hash((name, frozenset(table.rows)))
            for name, table in self._tables.items()
        }

    def ground_tuples(self) -> dict[str, frozenset[tuple[Constant, ...]]]:
        """The definite ground tuples per relation (rows with no variables).

        These are the tuples present in *every* world.  The update layer
        diffs them across an update to drive the incremental SAT session's
        guard assumptions and the baseline checker session.
        """
        result: dict[str, set[tuple[Constant, ...]]] = {
            name: set() for name in self._schema.relation_names
        }
        for name, table in self._tables.items():
            for row in table.rows:
                if row.variables():
                    continue
                ground = row.apply({})
                if ground is not None:
                    result[name].add(ground)
        return {name: frozenset(rows) for name, rows in result.items()}

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_row(
        self, relation: str, terms: Sequence[Term], condition: Condition = TRUE
    ) -> "CInstance":
        """A new c-instance with one row appended to the named c-table."""
        updated = dict(self._tables)
        updated[relation] = self.table(relation).add_row(terms, condition)
        return CInstance(self._schema, updated)

    def without_row(self, relation: str, index: int) -> "CInstance":
        """A new c-instance with one row removed from the named c-table."""
        updated = dict(self._tables)
        updated[relation] = self.table(relation).remove_row(index)
        return CInstance(self._schema, updated)

    def with_table(self, table: CTable) -> "CInstance":
        """A new c-instance with one c-table replaced."""
        updated = dict(self._tables)
        updated[table.name] = table
        return CInstance(self._schema, updated)

    def proper_subinstances(self) -> Iterator["CInstance"]:
        """All c-instances obtained by removing exactly one row."""
        for name, index, _row in self.rows():
            yield self.without_row(name, index)

    def strict_subinstances(self) -> Iterator["CInstance"]:
        """All c-instances obtained by removing a non-empty set of rows.

        The weak-model minimality check (Theorem 5.6) must consider every
        ``T' ⊊ T``, not only single-row removals (Example 5.5); hence this
        exponential enumeration, smallest removals first.
        """
        from repro.utils.itertools_ext import powerset

        positions = [(name, index) for name, index, _row in self.rows()]
        for removal in powerset(positions, include_empty=False):
            removal_by_relation: dict[str, set[int]] = {}
            for name, index in removal:
                removal_by_relation.setdefault(name, set()).add(index)
            updated: dict[str, CTable] = {}
            for name, table in self._tables.items():
                drop = removal_by_relation.get(name, set())
                keep = [i for i in range(len(table)) if i not in drop]
                updated[name] = table.restrict(keep)
            yield CInstance(self._schema, updated)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def apply(self, valuation: Mapping[Variable, Constant]) -> GroundInstance:
        """The ground instance ``µ(T)`` induced by a valuation."""
        relations = {name: table.apply(valuation) for name, table in self._tables.items()}
        return GroundInstance(self._schema, relations)

    @classmethod
    def from_ground_instance(cls, instance: GroundInstance) -> "CInstance":
        """View a ground instance as a c-instance without variables."""
        tables = {
            name: CTable.from_relation(rel)
            for name, rel in instance.relations().items()
        }
        return cls(instance.schema, tables)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CInstance):
            return NotImplemented
        return self._schema == other._schema and self._tables == other._tables

    def __hash__(self) -> int:
        per_table = sorted(self._tables.items(), key=lambda item: item[0])
        return hash((self._schema, tuple(per_table)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}:{len(t)}" for name, t in self._tables.items())
        return f"CInstance({parts})"


def cinstance(
    schema: DatabaseSchema,
    **tables: CTable | Iterable[CTableRow | Sequence[Term]],
) -> CInstance:
    """Keyword-argument convenience constructor for c-instances."""
    return CInstance(schema, tables)
