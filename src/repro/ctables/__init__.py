"""Conditional tables (c-tables), c-instances and their possible worlds.

The paper represents databases with missing values as c-instances: one
c-table per relation, constrained by master data through containment
constraints.  This package implements the representation (conditions,
c-tables, c-instances), valuations, the active-domain construction ``Adom``
and the enumeration of possible worlds ``Mod(T, D_m, V)``.
"""

from repro.ctables.adom import (
    ActiveDomain,
    build_active_domain,
    finite_domain_values,
    variable_pools,
)
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.conditions import TRUE, Condition, condition, var_eq, var_neq
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import (
    DEFAULT_ENGINE,
    default_active_domain,
    has_model,
    model_count,
    models,
    models_with_valuations,
    resolve_engine,
)
from repro.ctables.valuation import (
    Valuation,
    apply_valuation,
    count_valuations,
    enumerate_assignments,
    enumerate_valuations,
)

__all__ = [
    "ActiveDomain",
    "CInstance",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "CTable",
    "CTableRow",
    "Condition",
    "TRUE",
    "Valuation",
    "apply_valuation",
    "build_active_domain",
    "cinstance",
    "condition",
    "count_valuations",
    "default_active_domain",
    "enumerate_assignments",
    "enumerate_valuations",
    "finite_domain_values",
    "has_model",
    "model_count",
    "models",
    "models_with_valuations",
    "variable_pools",
    "var_eq",
    "var_neq",
]
