"""Local conditions of c-tables.

Following Imieliński & Lipski and Grahne (and Section 2.2 of the paper), the
condition ``ξ(t)`` attached to a tuple ``t`` of a c-table is a conjunction of
atomic conditions of the forms ``x = y``, ``x ≠ y``, ``x = c`` and ``x ≠ c``,
where ``x, y`` are variables and ``c`` is a constant.  We reuse the
:class:`~repro.queries.atoms.Comparison` atoms of the query layer for the
conjuncts, so conditions and query comparisons share one representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ConditionError
from repro.queries.atoms import Comparison, eq, neq
from repro.queries.terms import ConstantTerm, Term, Variable, is_variable


@dataclass(frozen=True)
class Condition:
    """A conjunction of atomic (in)equality conditions."""

    conjuncts: tuple[Comparison, ...]

    def __init__(self, conjuncts: Sequence[Comparison] = ()) -> None:
        conjuncts = tuple(conjuncts)
        for conjunct in conjuncts:
            if not isinstance(conjunct, Comparison):
                raise ConditionError(
                    f"condition conjuncts must be comparisons, got {conjunct!r}"
                )
            if not conjunct.variables():
                # Constant-only conjuncts are legal but suspicious; they are
                # either trivially true or make the condition unsatisfiable.
                continue
        object.__setattr__(self, "conjuncts", conjuncts)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def is_true(self) -> bool:
        """Whether this is the trivial condition (no conjuncts)."""
        return not self.conjuncts

    def variables(self) -> set[Variable]:
        """Variables mentioned by the condition."""
        result: set[Variable] = set()
        for conjunct in self.conjuncts:
            result |= conjunct.variables()
        return result

    def constants(self) -> set[ConstantTerm]:
        """Constants mentioned by the condition."""
        result: set[ConstantTerm] = set()
        for conjunct in self.conjuncts:
            result |= conjunct.constants()
        return result

    # ------------------------------------------------------------------
    # evaluation and combination
    # ------------------------------------------------------------------
    def evaluate(self, valuation: Mapping[Variable, ConstantTerm]) -> bool:
        """Evaluate the condition under a valuation of (at least) its variables.

        Raises
        ------
        ConditionError
            If a variable of the condition is not covered by the valuation.
        """
        for conjunct in self.conjuncts:
            grounded = conjunct.substitute(valuation)
            if grounded.variables():
                missing = sorted(v.name for v in grounded.variables())
                raise ConditionError(
                    f"valuation does not cover condition variables {missing}"
                )
            if not grounded.evaluate_ground():
                return False
        return True

    def conjoin(self, other: "Condition") -> "Condition":
        """The conjunction of two conditions."""
        return Condition(self.conjuncts + other.conjuncts)

    def with_conjunct(self, *comparisons: Comparison) -> "Condition":
        """A new condition with extra conjuncts appended."""
        return Condition(self.conjuncts + tuple(comparisons))

    def rename(self, renaming: Mapping[Variable, Variable]) -> "Condition":
        """The condition with variables renamed."""
        return Condition(tuple(c.rename(renaming) for c in self.conjuncts))

    def substitute(self, assignment: Mapping[Variable, ConstantTerm]) -> "Condition":
        """The condition with constants substituted for some variables.

        Conjuncts that become ground and true are dropped; ground false
        conjuncts are kept (making the condition unsatisfiable), so that the
        result is still a syntactically valid condition.
        """
        remaining: list[Comparison] = []
        for conjunct in self.conjuncts:
            grounded = conjunct.substitute(assignment)
            if not grounded.variables() and grounded.evaluate_ground():
                continue
            remaining.append(grounded)
        return Condition(tuple(remaining))

    def is_satisfiable_over(self, candidates: Iterable[ConstantTerm]) -> bool:
        """Whether some assignment of its variables from ``candidates`` satisfies it.

        A brute-force check used by sanity tests and by the consistency
        analysis of degenerate c-tables; the candidate pool is typically the
        active domain.
        """
        import itertools

        variables = sorted(self.variables(), key=lambda v: v.name)
        pool = list(candidates)
        if not variables:
            return self.evaluate({})
        for values in itertools.product(pool, repeat=len(variables)):
            if self.evaluate(dict(zip(variables, values))):
                return True
        return False

    def __repr__(self) -> str:
        if self.is_true:
            return "true"
        return " ∧ ".join(repr(c) for c in self.conjuncts)


#: The trivial (always true) condition.
TRUE = Condition(())


def condition(*conjuncts: Comparison) -> Condition:
    """Shorthand constructor for :class:`Condition`."""
    return Condition(conjuncts)


def var_eq(variable: Variable, value: Term) -> Comparison:
    """Atomic condition ``x = t`` (``t`` a constant or variable)."""
    if not is_variable(variable):
        raise ConditionError("the left-hand side of a condition atom must be a variable")
    return eq(variable, value)


def var_neq(variable: Variable, value: Term) -> Comparison:
    """Atomic condition ``x ≠ t`` (``t`` a constant or variable)."""
    if not is_variable(variable):
        raise ConditionError("the left-hand side of a condition atom must be a variable")
    return neq(variable, value)
