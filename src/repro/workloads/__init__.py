"""Workloads: the paper's patient MDM scenario and synthetic generators."""

from repro.workloads.generator import (
    InequalityChainWorkload,
    RegistryWorkload,
    UpdateStep,
    UpdateStreamWorkload,
    chain_fp_query,
    inequality_chain_workload,
    point_queries_for_keys,
    random_cinstance,
    registry_workload,
    update_stream_workload,
)
from repro.workloads.patients import (
    ABSENT_NHS,
    BOB_NHS,
    JOHN_NHS,
    PatientScenario,
    build_patient_scenario,
    display_figure1_cinstance,
    display_schema,
)

__all__ = [
    "ABSENT_NHS",
    "BOB_NHS",
    "InequalityChainWorkload",
    "JOHN_NHS",
    "PatientScenario",
    "RegistryWorkload",
    "UpdateStep",
    "UpdateStreamWorkload",
    "build_patient_scenario",
    "chain_fp_query",
    "display_figure1_cinstance",
    "display_schema",
    "inequality_chain_workload",
    "point_queries_for_keys",
    "random_cinstance",
    "registry_workload",
    "update_stream_workload",
]
