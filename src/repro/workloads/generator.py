"""Synthetic workload generators for the benchmark harness.

The paper has no datasets: its "experiments" are complexity claims.  The
benchmark harness therefore needs *parameterised families* of inputs whose
size can be swept:

* :func:`registry_workload` — a generic MDM-style workload: a database
  relation bounded by a master registry through an IND-shaped CC, with a
  configurable number of master rows, database rows, missing values
  (variables) and query shape.  Growing the master registry grows the active
  domain, which is the lever the Table-I benchmarks sweep.
* :func:`random_cinstance` — random c-instances with a controlled number of
  rows and variables over a given schema.
* :func:`chain_fp_query` — FP reachability queries of growing arity for the
  weak-model FP benchmarks.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    cc,
    denial_cc,
    projection,
)
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.atoms import RelationAtom, atom, eq, neq
from repro.queries.cq import ConjunctiveQuery, boolean_cq, cq
from repro.queries.fp import FixpointQuery, fixpoint_query, rule
from repro.queries.terms import Variable, var
from repro.queries.ucq import UnionOfConjunctiveQueries, ucq_from
from repro.relational.instance import GroundInstance, instance
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema, database_schema, schema


@dataclass(frozen=True)
class RegistryWorkload:
    """A generated MDM-style workload (database bounded by a master registry)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    ground_db: GroundInstance
    point_query: ConjunctiveQuery
    full_query: ConjunctiveQuery
    union_query: UnionOfConjunctiveQueries
    master_size: int
    variable_count: int


def registry_workload(
    master_size: int = 4,
    db_rows: int = 2,
    variable_count: int = 1,
    with_fd: bool = True,
    seed: int = 0,
) -> RegistryWorkload:
    """Build a registry workload of the requested size.

    The schema is ``Record(key, value)`` bounded by the master registry
    ``Registry(key, value)`` of ``master_size`` rows; the generated database
    holds ``db_rows`` rows of which ``variable_count`` have a missing value.
    The queries ask for the value of a specific key (``point_query``), for
    all registered values (``full_query``) and for their union
    (``union_query``).
    """
    rng = random.Random(seed)
    db_schema = database_schema(schema("Record", "key", "value"))
    master_schema = database_schema(schema("Registry", "key", "value"))

    master_rows = [(f"k{i}", f"v{i}") for i in range(master_size)]
    master = MasterData(master_schema, {"Registry": master_rows})

    k, v, v2 = var("k"), var("v"), var("v2")
    bound = cc(
        cq("all_records", [k, v], atoms=[atom("Record", k, v)]),
        projection("Registry", "key", "value"),
        name="record⊆registry",
    )
    constraints = [bound]
    if with_fd:
        constraints.append(
            denial_cc(
                boolean_cq(
                    "fd_key_value",
                    atoms=[atom("Record", k, v), atom("Record", k, v2)],
                    comparisons=[neq(v, v2)],
                ),
                name="fd:key→value",
            )
        )

    rows: list[CTableRow] = []
    chosen = rng.sample(range(master_size), k=min(db_rows, master_size))
    for index, master_index in enumerate(chosen):
        key, value = master_rows[master_index]
        if index < variable_count:
            rows.append(CTableRow((key, Variable(f"m{index}"))))
        else:
            rows.append(CTableRow((key, value)))
    cinstance = CInstance(db_schema, {"Record": CTable(db_schema["Record"], rows)})
    ground_rows = [master_rows[i] for i in chosen]
    ground_db = instance(db_schema, Record=ground_rows)

    target_key = master_rows[chosen[0]][0] if chosen else "k0"
    point_query = cq("PointQ", [v], atoms=[atom("Record", target_key, v)])
    full_query = cq("FullQ", [k, v], atoms=[atom("Record", k, v)])
    union_query = ucq_from(
        [
            cq("U1", [v], atoms=[atom("Record", target_key, v)]),
            cq("U2", [v], atoms=[atom("Record", k, v)], comparisons=[eq(k, "k1")]),
        ],
        name="UnionQ",
    )

    return RegistryWorkload(
        schema=db_schema,
        master=master,
        constraints=constraints,
        cinstance=cinstance,
        ground_db=ground_db,
        point_query=point_query,
        full_query=full_query,
        union_query=union_query,
        master_size=master_size,
        variable_count=variable_count,
    )


def random_cinstance(
    db_schema: DatabaseSchema,
    relation: str,
    rows: int,
    variable_count: int,
    constant_pool: Sequence,
    seed: int = 0,
) -> CInstance:
    """A random c-instance with the requested number of rows and variables."""
    rng = random.Random(seed)
    rel_schema = db_schema[relation]
    built_rows: list[CTableRow] = []
    variables_remaining = variable_count
    for row_index in range(rows):
        terms: list = []
        for position in range(rel_schema.arity):
            if variables_remaining > 0 and rng.random() < 0.5:
                terms.append(Variable(f"v{row_index}_{position}"))
                variables_remaining -= 1
            else:
                terms.append(rng.choice(list(constant_pool)))
        built_rows.append(CTableRow(tuple(terms)))
    # Force any leftover variables into the last rows deterministically.
    row_cursor = 0
    while variables_remaining > 0 and built_rows:
        row = built_rows[row_cursor % len(built_rows)]
        terms = list(row.terms)
        terms[0] = Variable(f"extra{variables_remaining}")
        built_rows[row_cursor % len(built_rows)] = CTableRow(tuple(terms), row.condition)
        variables_remaining -= 1
        row_cursor += 1
    return CInstance(db_schema, {relation: CTable(rel_schema, built_rows)})


def chain_fp_query(length: int = 2, relation: str = "Record") -> FixpointQuery:
    """An FP query following ``length`` joins of the relation's key/value graph.

    Used by the weak-model FP benchmarks: the fixpoint closes the binary
    relation transitively and returns all reachable pairs.
    """
    x, y, z = var("x"), var("y"), var("z")
    rules = [
        rule(RelationAtom("Path", (x, y)), RelationAtom(relation, (x, y))),
        rule(
            RelationAtom("Path", (x, z)),
            RelationAtom("Path", (x, y)),
            RelationAtom(relation, (y, z)),
        ),
    ]
    query = fixpoint_query(f"Chain{length}", output="Path", rules=rules)
    return query


def point_queries_for_keys(keys: Sequence[str]) -> list[ConjunctiveQuery]:
    """One point query per key (used to build fixed query workloads)."""
    v = var("v")
    return [
        cq(f"Point_{key}", [v], atoms=[atom("Record", key, v)]) for key in keys
    ]
