"""Synthetic workload generators for the benchmark harness.

The paper has no datasets: its "experiments" are complexity claims.  The
benchmark harness therefore needs *parameterised families* of inputs whose
size can be swept:

* :func:`registry_workload` — a generic MDM-style workload: a database
  relation bounded by a master registry through an IND-shaped CC, with a
  configurable number of master rows, database rows, missing values
  (variables) and query shape.  Growing the master registry grows the active
  domain, which is the lever the Table-I benchmarks sweep.
* :func:`random_cinstance` — random c-instances with a controlled number of
  rows and variables over a given schema.
* :func:`chain_fp_query` — FP reachability queries of growing arity for the
  weak-model FP benchmarks.
* :func:`inequality_chain_workload` — the inequality-heavy family targeted
  by the SAT engine: FD-forced equalities plus a ≠-chain of denial CCs over
  a Boolean value column, closable into an (odd ⇒ inconsistent) cycle.
* :func:`skewed_join_workload` — a hub-skewed graph family targeted by the
  *indexed* delta checker: a three-hop chain constraint over an ``Edge``
  relation whose rows pile into one hot source bucket, so a linear scan
  touches every row per join step while a hash index touches one bucket
  (often a projected or empty one).

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Sequence

from repro.constraints.containment import (
    ContainmentConstraint,
    cc,
    denial_cc,
    projection,
)
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.atoms import RelationAtom, atom, eq, neq
from repro.queries.cq import ConjunctiveQuery, boolean_cq, cq
from repro.queries.fp import FixpointQuery, fixpoint_query, rule
from repro.queries.terms import Term, Variable, var
from repro.queries.ucq import UnionOfConjunctiveQueries, ucq_from
from repro.relational.domains import BOOLEAN_DOMAIN, Constant, Domain
from repro.relational.instance import GroundInstance, instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import DatabaseSchema, RelationSchema, database_schema, schema


@dataclass(frozen=True)
class RegistryWorkload:
    """A generated MDM-style workload (database bounded by a master registry)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    ground_db: GroundInstance
    point_query: ConjunctiveQuery
    full_query: ConjunctiveQuery
    union_query: UnionOfConjunctiveQueries
    master_size: int
    variable_count: int


def registry_workload(
    master_size: int = 4,
    db_rows: int = 2,
    variable_count: int = 1,
    with_fd: bool = True,
    seed: int = 0,
) -> RegistryWorkload:
    """Build a registry workload of the requested size.

    The schema is ``Record(key, value)`` bounded by the master registry
    ``Registry(key, value)`` of ``master_size`` rows; the generated database
    holds ``db_rows`` rows of which ``variable_count`` have a missing value.
    The queries ask for the value of a specific key (``point_query``), for
    all registered values (``full_query``) and for their union
    (``union_query``).
    """
    rng = random.Random(seed)
    db_schema = database_schema(schema("Record", "key", "value"))
    master_schema = database_schema(schema("Registry", "key", "value"))

    master_rows = [(f"k{i}", f"v{i}") for i in range(master_size)]
    master = MasterData(master_schema, {"Registry": master_rows})

    k, v, v2 = var("k"), var("v"), var("v2")
    bound = cc(
        cq("all_records", [k, v], atoms=[atom("Record", k, v)]),
        projection("Registry", "key", "value"),
        name="record⊆registry",
    )
    constraints = [bound]
    if with_fd:
        constraints.append(
            denial_cc(
                boolean_cq(
                    "fd_key_value",
                    atoms=[atom("Record", k, v), atom("Record", k, v2)],
                    comparisons=[neq(v, v2)],
                ),
                name="fd:key→value",
            )
        )

    rows: list[CTableRow] = []
    chosen = rng.sample(range(master_size), k=min(db_rows, master_size))
    for index, master_index in enumerate(chosen):
        key, value = master_rows[master_index]
        if index < variable_count:
            rows.append(CTableRow((key, Variable(f"m{index}"))))
        else:
            rows.append(CTableRow((key, value)))
    cinstance = CInstance(db_schema, {"Record": CTable(db_schema["Record"], rows)})
    ground_rows = [master_rows[i] for i in chosen]
    ground_db = instance(db_schema, Record=ground_rows)

    target_key = master_rows[chosen[0]][0] if chosen else "k0"
    point_query = cq("PointQ", [v], atoms=[atom("Record", target_key, v)])
    full_query = cq("FullQ", [k, v], atoms=[atom("Record", k, v)])
    union_query = ucq_from(
        [
            cq("U1", [v], atoms=[atom("Record", target_key, v)]),
            cq("U2", [v], atoms=[atom("Record", k, v)], comparisons=[eq(k, "k1")]),
        ],
        name="UnionQ",
    )

    return RegistryWorkload(
        schema=db_schema,
        master=master,
        constraints=constraints,
        cinstance=cinstance,
        ground_db=ground_db,
        point_query=point_query,
        full_query=full_query,
        union_query=union_query,
        master_size=master_size,
        variable_count=variable_count,
    )


def random_cinstance(
    db_schema: DatabaseSchema,
    relation: str,
    rows: int,
    variable_count: int,
    constant_pool: Sequence,
    seed: int = 0,
) -> CInstance:
    """A random c-instance with the requested number of rows and variables."""
    rng = random.Random(seed)
    rel_schema = db_schema[relation]
    built_rows: list[CTableRow] = []
    variables_remaining = variable_count
    for row_index in range(rows):
        terms: list[Term] = []
        for position in range(rel_schema.arity):
            if variables_remaining > 0 and rng.random() < 0.5:
                terms.append(Variable(f"v{row_index}_{position}"))
                variables_remaining -= 1
            else:
                terms.append(rng.choice(list(constant_pool)))
        built_rows.append(CTableRow(tuple(terms)))
    # Force any leftover variables into the last rows deterministically.
    row_cursor = 0
    while variables_remaining > 0 and built_rows:
        row = built_rows[row_cursor % len(built_rows)]
        terms = list(row.terms)
        terms[0] = Variable(f"extra{variables_remaining}")
        built_rows[row_cursor % len(built_rows)] = CTableRow(tuple(terms), row.condition)
        variables_remaining -= 1
        row_cursor += 1
    return CInstance(db_schema, {relation: CTable(rel_schema, built_rows)})


def chain_fp_query(length: int = 2, relation: str = "Record") -> FixpointQuery:
    """An FP query following ``length`` joins of the relation's key/value graph.

    Used by the weak-model FP benchmarks: the fixpoint closes the binary
    relation transitively and returns all reachable pairs.
    """
    x, y, z = var("x"), var("y"), var("z")
    rules = [
        rule(RelationAtom("Path", (x, y)), RelationAtom(relation, (x, y))),
        rule(
            RelationAtom("Path", (x, z)),
            RelationAtom("Path", (x, y)),
            RelationAtom(relation, (y, z)),
        ),
    ]
    return fixpoint_query(f"Chain{length}", output="Path", rules=rules)


@dataclass(frozen=True)
class InequalityChainWorkload:
    """An inequality-heavy workload (FD + ≠-chained denial constraints)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    pair_count: int
    cycle: bool


def inequality_chain_workload(
    pair_count: int, close_cycle: bool = True
) -> InequalityChainWorkload:
    """Build the inequality-heavy chain family of size ``pair_count``.

    The schema is ``Record(key, value)`` with a Boolean value column.  For
    each ``i < pair_count`` the c-instance holds two rows ``(kᵢ, aᵢ)`` and
    ``(kᵢ, bᵢ)`` with fresh variables; the constraints are

    * an FD-style denial CC (``Record(k,v) ∧ Record(k,v') ∧ v ≠ v' ⊆ ∅``)
      forcing ``aᵢ = bᵢ``, and
    * one denial CC per chain link (``Record(kᵢ,v) ∧ Record(kᵢ₊₁,v') ∧
      v = v' ⊆ ∅``) forcing consecutive keys to carry *different* values.

    With ``close_cycle`` the last key links back to the first, so an odd
    ``pair_count`` makes the instance inconsistent (a proper 2-colouring of
    an odd cycle cannot exist) while an even one stays consistent.  Every
    constraint turns on an (in)equality comparison, which is the regime the
    SAT engine handles natively and the monotone-CC pruner cannot prune
    early; the benchmark harness sweeps this family for the
    naive/propagating/sat comparison.
    """
    db_schema = database_schema(
        RelationSchema("Record", ["key", ("value", BOOLEAN_DOMAIN)])
    )
    master = empty_master(database_schema(schema("M", "A")))
    k, v, v2 = var("k"), var("v"), var("v2")
    constraints = [
        denial_cc(
            boolean_cq(
                "fd_key_value",
                atoms=[atom("Record", k, v), atom("Record", k, v2)],
                comparisons=[neq(v, v2)],
            ),
            name="fd:key→value",
        )
    ]
    links = [(i, i + 1) for i in range(pair_count - 1)]
    if close_cycle:
        links.append((pair_count - 1, 0))
    for a, b in links:
        constraints.append(
            denial_cc(
                boolean_cq(
                    f"link_{a}_{b}",
                    atoms=[atom("Record", f"k{a}", v), atom("Record", f"k{b}", v2)],
                    comparisons=[eq(v, v2)],
                ),
                name=f"neq:k{a},k{b}",
            )
        )
    rows: list[CTableRow] = []
    for index in range(pair_count):
        rows.append(CTableRow((f"k{index}", Variable(f"a{index}"))))
        rows.append(CTableRow((f"k{index}", Variable(f"b{index}"))))
    cinst = CInstance(db_schema, {"Record": CTable(db_schema["Record"], rows)})
    return InequalityChainWorkload(
        schema=db_schema,
        master=master,
        constraints=constraints,
        cinstance=cinst,
        pair_count=pair_count,
        cycle=close_cycle,
    )


@dataclass(frozen=True)
class WidePoolWorkload:
    """A wide-first-pool workload (the parallel engine's target regime)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    rows: int
    values_per_key: int
    consistent: bool


def wide_pool_workload(rows: int, values_per_key: int) -> WidePoolWorkload:
    """Build the wide-pool family targeted by ``engine="parallel"``.

    The schema is ``Record(key, value)`` bounded by the master registry
    ``Registry(key, value)``, which holds every pair ``(kᵢ, vⱼ)`` for
    ``i < rows`` and ``j < values_per_key`` — each key may carry any of the
    shared values.  The c-instance has one row ``(kᵢ, wᵢ)`` per key with a
    fresh variable ``wᵢ``, and the constraints are

    * the registry bound (``Record ⊆ π_{key,value}(Registry)``), restricting
      each ``wᵢ`` to the ``values_per_key`` shared values, and
    * an all-distinct denial CC (``Record(k,v) ∧ Record(k',v') ∧ k ≠ k' ∧
      v = v' ⊆ ∅``), forbidding two keys from carrying the same value.

    By pigeonhole the instance is consistent iff ``rows ≤ values_per_key``;
    in the inconsistent regime every decider must exhaust the whole search
    tree.  Every variable's candidate pool is the full active domain
    (``rows + values_per_key`` registry constants plus one fresh value per
    variable), so the tree is *wide at the root* — the regime where sharding
    the first variable's pool across worker processes pays off — while the
    per-node pruning work (a join of the all-distinct CC over the grounded
    rows) is heavy enough to dominate process-pool overhead.
    """
    db_schema = database_schema(schema("Record", "key", "value"))
    master_schema = database_schema(schema("Registry", "key", "value"))
    master_rows = [
        (f"k{i}", f"v{j}") for i in range(rows) for j in range(values_per_key)
    ]
    master = MasterData(master_schema, {"Registry": master_rows})

    k, v, k2, v2 = var("k"), var("v"), var("k2"), var("v2")
    constraints = [
        cc(
            cq("all_records", [k, v], atoms=[atom("Record", k, v)]),
            projection("Registry", "key", "value"),
            name="record⊆registry",
        ),
        denial_cc(
            boolean_cq(
                "all_distinct",
                atoms=[atom("Record", k, v), atom("Record", k2, v2)],
                comparisons=[neq(k, k2), eq(v, v2)],
            ),
            name="all-distinct:value",
        ),
    ]
    table_rows = [
        CTableRow((f"k{i}", Variable(f"w{i}"))) for i in range(rows)
    ]
    cinst = CInstance(db_schema, {"Record": CTable(db_schema["Record"], table_rows)})
    return WidePoolWorkload(
        schema=db_schema,
        master=master,
        constraints=constraints,
        cinstance=cinst,
        rows=rows,
        values_per_key=values_per_key,
        consistent=rows <= values_per_key,
    )


def point_queries_for_keys(keys: Sequence[str]) -> list[ConjunctiveQuery]:
    """One point query per key (used to build fixed query workloads)."""
    v = var("v")
    return [
        cq(f"Point_{key}", [v], atoms=[atom("Record", key, v)]) for key in keys
    ]


@dataclass(frozen=True)
class WideConstraintWorkload:
    """A wide-LHS constraint workload (the delta checker's target regime)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    ground_rows: int
    variable_rows: int
    width: int
    values: int


def wide_constraint_workload(
    ground_rows: int = 18,
    variable_rows: int = 3,
    width: int = 3,
    values: int = 3,
) -> WideConstraintWorkload:
    """Build the wide-constraint family targeted by the delta checker.

    The schema is ``Record(key, value)`` with a finite ``values``-element
    value domain; the c-instance holds ``ground_rows`` ground rows (one per
    key, values cycling) plus ``variable_rows`` rows ``(kᵢ, wᵢ)`` with fresh
    variables, and the single constraint is a **wide** containment

        ``q(v₁, …, v_w) :- Record(x₁, v₁), …, Record(x_w, v_w)
        ⊆ π(Allowed)``

    whose ``Allowed`` master relation holds the full ``values^width`` value
    combinations — the constraint never fires, so every engine walks the
    same (small) search tree, but *checking* it on every new tuple is the
    per-node cost the benchmark measures.  Re-evaluating the whole LHS per
    grounded tuple joins ``|Record|^width`` atom combinations; the delta
    checker seeds each of the ``width`` atoms with the new tuple and joins
    only the remaining ``width - 1`` outward, an ``O(|Record|/width)``
    per-node advantage that grows with the instance.  The benchmark gates
    (`bench_engine.py`) require the indexed delta mode to be ≥ 3x faster per
    node than ``mode="full"`` at ``width=3``, and ≥ 3x faster than the
    linear-scan delta baseline (``indexed=False``) at ``width=4``, where the
    remaining-atom join is deep enough for the hash-join planner to dominate
    the shared per-node search overhead.
    """
    value_domain = Domain(
        name=f"values{values}", values=frozenset(f"v{j}" for j in range(values))
    )
    db_schema = database_schema(
        RelationSchema("Record", ["key", ("value", value_domain)])
    )
    allowed_attrs = [f"V{i}" for i in range(width)]
    master_schema = database_schema(schema("Allowed", *allowed_attrs))
    combos = [
        tuple(f"v{j}" for j in combo)
        for combo in itertools.product(range(values), repeat=width)
    ]
    master = MasterData(master_schema, {"Allowed": combos})

    value_vars = [var(f"v{i}") for i in range(width)]
    key_vars = [var(f"x{i}") for i in range(width)]
    wide = cc(
        cq(
            "wide_values",
            value_vars,
            atoms=[
                atom("Record", key_vars[i], value_vars[i]) for i in range(width)
            ],
        ),
        projection("Allowed", *allowed_attrs),
        name=f"width-{width}-values",
    )

    rows: list[CTableRow] = [
        CTableRow((f"k{i}", f"v{i % values}")) for i in range(ground_rows)
    ]
    rows += [
        CTableRow((f"k{ground_rows + j}", Variable(f"w{j}")))
        for j in range(variable_rows)
    ]
    cinst = CInstance(db_schema, {"Record": CTable(db_schema["Record"], rows)})
    return WideConstraintWorkload(
        schema=db_schema,
        master=master,
        constraints=[wide],
        cinstance=cinst,
        ground_rows=ground_rows,
        variable_rows=variable_rows,
        width=width,
        values=values,
    )


@dataclass(frozen=True)
class SkewedJoinWorkload:
    """A hub-skewed join workload (the indexed delta checker's target regime)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    hub_degree: int
    medium_degree: int
    variable_rows: int
    values: int


def skewed_join_workload(
    hub_degree: int = 24,
    variable_rows: int = 3,
    values: int = 3,
    medium_degree: int = 4,
) -> SkewedJoinWorkload:
    """Build the skew family that punishes linear constraint-check scans.

    The schema is a graph relation ``Edge(src, tag, dst)`` whose ``dst``
    column ranges over the finite domain ``{d0, …, d_{values-1}}``, and the
    single constraint is a three-hop chain containment

        ``q(x0, x3) :- Edge(x0, t1, x1), Edge(x1, t2, x2), Edge(x2, t3, x3)
        ⊆ π(Reach)``

    whose ``Reach`` master relation holds every source/destination pair, so
    the constraint never fires and every checker walks the identical search
    tree while doing maximal join work per pushed tuple.  The ground rows
    are deliberately *skewed*:

    * ``hub_degree`` rows fan out of the hot hub ``d0`` (destinations
      cycling over the domain),
    * ``medium_degree`` rows point from ``d1`` back to the hub, and
    * ``d2, …`` have **no** outgoing edges at all.

    Each ``tag`` value is unique to its row and appears nowhere else in the
    constraint, so the hash indexes of :mod:`repro.relational.indexing`
    project it away: the hot bucket collapses from ``hub_degree`` rows to at
    most ``values`` distinct ``(dst,)`` continuations, an empty ``d2``
    bucket refutes a join step in one dict lookup, and seeding the chain's
    middle atom with a fresh ``gⱼ`` vertex dead-ends immediately because no
    edge *enters* ``gⱼ``.  A linear scan re-walks all ``hub_degree +
    medium_degree + variable_rows`` rows at every join step in all of those
    situations, which is exactly the per-node gap the
    ``REQUIRED_INDEX_SPEEDUP`` gate in ``bench_engine.py`` measures.

    The c-instance adds ``variable_rows`` rows ``(gⱼ, tⱼ, wⱼ)`` with fresh
    source vertices and a missing destination each, giving the search
    ``values^variable_rows`` leaves with one delta check per node.
    """
    dst_domain = Domain(
        name=f"dst{values}", values=frozenset(f"d{j}" for j in range(values))
    )
    db_schema = database_schema(
        RelationSchema("Edge", ["src", "tag", ("dst", dst_domain)])
    )
    master_schema = database_schema(schema("Reach", "src", "dst"))
    sources = [f"d{j}" for j in range(values)] + [
        f"g{j}" for j in range(variable_rows)
    ]
    destinations = [f"d{j}" for j in range(values)]
    master = MasterData(
        master_schema,
        {"Reach": [(a, b) for a in sources for b in destinations]},
    )

    x0, x1, x2, x3 = var("x0"), var("x1"), var("x2"), var("x3")
    t1, t2, t3 = var("t1"), var("t2"), var("t3")
    chain = cc(
        cq(
            "three_hop",
            [x0, x3],
            atoms=[
                atom("Edge", x0, t1, x1),
                atom("Edge", x1, t2, x2),
                atom("Edge", x2, t3, x3),
            ],
        ),
        projection("Reach", "src", "dst"),
        name="three-hop⊆reach",
    )

    rows: list[CTableRow] = [
        CTableRow(("d0", f"e{i}", f"d{i % values}")) for i in range(hub_degree)
    ]
    rows += [CTableRow(("d1", f"f{i}", "d0")) for i in range(medium_degree)]
    rows += [
        CTableRow((f"g{j}", f"t{j}", Variable(f"w{j}")))
        for j in range(variable_rows)
    ]
    cinst = CInstance(db_schema, {"Edge": CTable(db_schema["Edge"], rows)})
    return SkewedJoinWorkload(
        schema=db_schema,
        master=master,
        constraints=[chain],
        cinstance=cinst,
        hub_degree=hub_degree,
        medium_degree=medium_degree,
        variable_rows=variable_rows,
        values=values,
    )


@dataclass(frozen=True)
class DisconnectedComponentsWorkload:
    """A workload of independent sub-instances (the component counter's regime)."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    cinstance: CInstance
    components: int
    rows_per_component: int
    values: int
    row_width: int
    #: the exact number of distinct worlds: ``values ** (row_width * components)``
    world_count: int


def disconnected_components_workload(
    components: int = 3,
    rows_per_component: int = 3,
    values: int = 4,
    row_width: int = 1,
) -> DisconnectedComponentsWorkload:
    """Build the disconnected-components family for the gen-2 SAT stack.

    The schema is ``Record(key, v0, …, v_{row_width-1})`` with every value
    column ranging over the shared finite domain ``{v0, …, v_{values-1}}``.
    Component ``i`` contributes ``rows_per_component`` rows, all carrying the
    component key ``cᵢ`` and fresh variables in every value column; one
    FD-style denial CC per value column (``Record(k,…,u,…) ∧ Record(k,…,t,…)
    ∧ u ≠ t ⊆ ∅``, joined on the key) forces the whole component to agree on
    each column.  Constraint matches join on the key, so they never cross
    components — the CNF clause graph splits into ``components`` independent
    parts, one per key.

    Every component therefore collapses to a single tuple ``(cᵢ, v⃗)`` with
    ``values ** row_width`` choices of ``v⃗``, making the world count exactly
    ``values ** (row_width * components)`` — which blocking-clause
    enumeration pays in full while component-caching counting pays
    ``components · values ** row_width`` (less, with isomorphic components
    cached).  Widening ``row_width`` blows up the eager violation join
    (``values ** (2·row_width)`` matches per column per component), the
    regime where the CEGAR lazy encoding wins existence checks.
    """
    value_domain = Domain(
        name=f"val{values}", values=frozenset(f"v{j}" for j in range(values))
    )
    db_schema = database_schema(
        RelationSchema(
            "Record",
            ["key"] + [(f"v{c}", value_domain) for c in range(row_width)],
        )
    )
    master = empty_master(database_schema(schema("M", "A")))

    k = var("k")
    constraints: list[ContainmentConstraint] = []
    for column in range(row_width):
        left = [var(f"u{c}") for c in range(row_width)]
        right = [var(f"t{c}") for c in range(row_width)]
        constraints.append(
            denial_cc(
                boolean_cq(
                    f"fd_key_v{column}",
                    atoms=[
                        atom("Record", k, *left),
                        atom("Record", k, *right),
                    ],
                    comparisons=[neq(left[column], right[column])],
                ),
                name=f"fd:key→v{column}",
            )
        )

    rows: list[CTableRow] = []
    for i in range(components):
        for j in range(rows_per_component):
            rows.append(
                CTableRow(
                    (f"c{i}",)
                    + tuple(
                        Variable(f"x{i}_{j}_{c}") for c in range(row_width)
                    )
                )
            )
    cinst = CInstance(db_schema, {"Record": CTable(db_schema["Record"], rows)})
    return DisconnectedComponentsWorkload(
        schema=db_schema,
        master=master,
        constraints=constraints,
        cinstance=cinst,
        components=components,
        rows_per_component=rows_per_component,
        values=values,
        row_width=row_width,
        world_count=values ** (row_width * components),
    )


# ---------------------------------------------------------------------------
# update-stream workloads (incremental Database.update benchmarks/tests)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateStep:
    """One scripted update: add or drop one ground row of a relation."""

    kind: str  # "add" | "drop"
    relation: str
    row: tuple[Constant, ...]


@dataclass(frozen=True)
class UpdateStreamWorkload:
    """A registry workload plus a deterministic ground add/drop script.

    The script only ever adds tuples built from the master registry's
    constants, so the Prop. 3.3 active domain never changes across the
    stream: the incremental SAT session of :class:`repro.api.Database` can
    keep its encoding and live solver for the whole script (the property the
    ``update_stream`` benchmark family measures).
    """

    base: RegistryWorkload
    script: tuple[UpdateStep, ...]


def update_stream_workload(
    steps: int = 50,
    master_size: int = 6,
    db_rows: int = 3,
    variable_count: int = 1,
    with_fd: bool = True,
    include_violations: bool = False,
    seed: int = 0,
) -> UpdateStreamWorkload:
    """A registry workload with a ``steps``-long ground add/drop script.

    Each step drops one currently present ground row (if any remain) or adds
    one registry pair not currently present.  With ``include_violations`` the
    script occasionally adds an off-registry pair — a ground row that
    certainly violates the IND-shaped CC, driving the database through
    inconsistent states (useful for differential fuzzing; the benchmark
    keeps the default consistent stream).  Deterministic given ``seed``.
    """
    base = registry_workload(
        master_size=master_size,
        db_rows=db_rows,
        variable_count=variable_count,
        with_fd=with_fd,
        seed=seed,
    )
    rng = random.Random(f"update-stream:{seed}")
    registry_pairs = sorted(base.master.relation("Registry").rows)
    off_registry = [
        (key, "v-off") for key, _value in registry_pairs
    ]  # value absent from the registry: certain CC violation once added
    present: list[tuple[Constant, ...]] = sorted(
        row.terms
        for row in base.cinstance.table("Record").rows
        if not row.variables()
    )
    script: list[UpdateStep] = []
    for _step in range(steps):
        can_drop = bool(present)
        absent = [p for p in registry_pairs if p not in present]
        if include_violations and rng.random() < 0.15:
            candidates = [p for p in off_registry if p not in present]
            if candidates:
                row = rng.choice(candidates)
                script.append(UpdateStep("add", "Record", row))
                present.append(row)
                continue
        if can_drop and (not absent or rng.random() < 0.5):
            row = rng.choice(present)
            script.append(UpdateStep("drop", "Record", row))
            present.remove(row)
        elif absent:
            row = rng.choice(absent)
            script.append(UpdateStep("add", "Record", row))
            present.append(row)
        elif can_drop:
            row = rng.choice(present)
            script.append(UpdateStep("drop", "Record", row))
            present.remove(row)
    return UpdateStreamWorkload(base=base, script=tuple(script))
