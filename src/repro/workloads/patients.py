"""The paper's running MDM scenario: UK patients (Example 1.1, Figure 1).

Two versions of the scenario are provided:

* the **display** version uses the full 8-attribute ``MVisit`` schema of
  Figure 1 and is meant for presentation (examples print it, tests check its
  shape);
* the **analysis** version trims the schema to the four attributes that the
  paper's examples actually reason about (``NHS``, ``name``, ``city``,
  ``yob``).  The trimming keeps the active domain small enough for the
  exponential deciders while preserving every phenomenon of Examples
  2.1–2.4: which queries are answerable, which completeness model accepts the
  c-instance, and which databases are minimal.

The scenario bundles the master data (the closed-world registry of Edinburgh
patients born in 2000), the containment constraints of Example 2.1 (master
bound plus the FD ``NHS → name`` encoded as a CC), the queries Q1–Q4 and both
a ground database and the Figure 1 c-instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.containment import (
    ContainmentConstraint,
    cc,
    denial_cc,
    projection,
)
from repro.ctables.cinstance import CInstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import ConjunctiveQuery, boolean_cq, cq
from repro.queries.terms import Variable, var
from repro.relational.instance import GroundInstance, instance
from repro.relational.master import MasterData
from repro.relational.schema import DatabaseSchema, database_schema, schema

#: NHS numbers used throughout the scenario.
JOHN_NHS = "915-15-335"
BOB_NHS = "915-15-336"
MARY_NHS = "915-15-357"
JACK_NHS = "915-15-358"
LOUIS_NHS = "915-15-359"
ABSENT_NHS = "915-15-321"

_n, _na, _c, _y = var("n"), var("na"), var("c"), var("y")
_na2 = var("na2")


def display_schema() -> DatabaseSchema:
    """The full 8-attribute ``MVisit`` schema of Example 1.1 / Figure 1."""
    return database_schema(
        schema("MVisit", "NHS", "name", "city", "yob", "GD", "Date", "Diag", "DrID")
    )


def display_figure1_cinstance() -> CInstance:
    """The Figure 1 c-table, verbatim (for presentation purposes)."""
    x, z, w, u = var("x"), var("z"), var("w"), var("u")
    db = display_schema()
    table = CTable(
        db["MVisit"],
        [
            CTableRow((JOHN_NHS, "John", "EDI", 2000, "M", "15/03/2015", "Flu", "01")),
            CTableRow(
                ("915-15-356", x, "EDI", z, "F", "15/03/2015", "Diabetes", "01"),
                condition(neq(z, 2001)),
            ),
            CTableRow(
                (MARY_NHS, "Mary", w, 2000, "F", "15/03/2015", "Influenza", u),
                condition(neq(w, "EDI")),
            ),
            CTableRow((JACK_NHS, "Jack", "LON", 2000, "M", "15/03/2015", "Influenza", "02")),
            CTableRow((LOUIS_NHS, "Louis", "LON", 2000, "M", "15/03/2015", "Diabetes", "03")),
        ],
    )
    return CInstance(db, {"MVisit": table})


@dataclass(frozen=True)
class PatientScenario:
    """The analysis version of the patients MDM scenario."""

    schema: DatabaseSchema
    master: MasterData
    constraints: list[ContainmentConstraint]
    q1: ConjunctiveQuery
    q2_present: ConjunctiveQuery
    q2_absent: ConjunctiveQuery
    q3: ConjunctiveQuery
    q4: ConjunctiveQuery
    ground_db: GroundInstance
    figure1: CInstance
    extra_master_rows: int = field(default=0)

    def queries(self) -> dict[str, ConjunctiveQuery]:
        """The named queries of the scenario."""
        return {
            "Q1": self.q1,
            "Q2_present": self.q2_present,
            "Q2_absent": self.q2_absent,
            "Q3": self.q3,
            "Q4": self.q4,
        }


def build_patient_scenario(extra_master_rows: int = 0) -> PatientScenario:
    """Build the analysis scenario.

    ``extra_master_rows`` adds further Edinburgh-2000 patients to the master
    data (used by the benchmarks to scale the master data size, and hence the
    active domain, while keeping the structure of the scenario fixed).
    """
    db = database_schema(schema("MVisit", "NHS", "name", "city", "yob"))
    master_schema = database_schema(schema("Patientm", "NHS", "name", "yob"))

    master_rows = [(JOHN_NHS, "John", 2000), (BOB_NHS, "Bob", 2000)]
    for index in range(extra_master_rows):
        master_rows.append((f"915-16-{400 + index}", f"patient{index}", 2000))
    master = MasterData(master_schema, {"Patientm": master_rows})

    bound_by_master = cc(
        cq(
            "q2000",
            [_n, _na],
            atoms=[atom("MVisit", _n, _na, _c, _y)],
            comparisons=[eq(_c, "EDI"), eq(_y, 2000)],
        ),
        projection("Patientm", "NHS", "name"),
        name="edinburgh-2000",
    )
    fd_name = denial_cc(
        boolean_cq(
            "fd_nhs_name",
            atoms=[
                atom("MVisit", _n, _na, var("c1"), var("y1")),
                atom("MVisit", _n, _na2, var("c2"), var("y2")),
            ],
            comparisons=[neq(_na, _na2)],
        ),
        name="fd:NHS→name",
    )
    constraints = [bound_by_master, fd_name]

    q1 = cq("Q1", [_na], atoms=[atom("MVisit", JOHN_NHS, _na, "EDI", 2000)])
    q2_present = cq("Q2", [_na], atoms=[atom("MVisit", BOB_NHS, _na, "EDI", 2000)])
    q2_absent = cq("Q2'", [_na], atoms=[atom("MVisit", ABSENT_NHS, _na, "EDI", 2000)])
    q3 = cq("Q3", [_na], atoms=[atom("MVisit", _n, _na, "LON", _y)])
    q4 = cq("Q4", [_na], atoms=[atom("MVisit", _n, _na, "EDI", 2000)])

    ground_db = instance(db, MVisit=[(JOHN_NHS, "John", "EDI", 2000)])

    x, z = Variable("x"), Variable("z")
    figure1_table = CTable(
        db["MVisit"],
        [
            CTableRow((JOHN_NHS, "John", "EDI", 2000)),
            CTableRow((BOB_NHS, x, "EDI", z), condition(neq(z, 2001))),
        ],
    )
    figure1 = CInstance(db, {"MVisit": figure1_table})

    return PatientScenario(
        schema=db,
        master=master,
        constraints=constraints,
        q1=q1,
        q2_present=q2_present,
        q2_absent=q2_absent,
        q3=q3,
        q4=q4,
        ground_db=ground_db,
        figure1=figure1,
        extra_master_rows=extra_master_rows,
    )
