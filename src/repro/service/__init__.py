"""``repro.service`` — the async decision service over named sessions.

An asyncio HTTP/JSON server (stdlib only) exposing the full decision
surface of :class:`repro.api.Database` — consistency, world enumeration,
model counting, RCDP/MINP/RCQP, certain answers, incremental updates —
with cross-request memoisation, single-flight deduplication of concurrent
identical requests, and streaming NDJSON world enumeration with
client-disconnect cancellation.

Run it::

    python -m repro.service --config service.json

or embed it::

    from repro.service import ServiceClient, ServiceConfig, ServiceThread

    config = ServiceConfig(port=0, executor="thread")
    with ServiceThread(config) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        print(client.decide("demo", "consistency"))

See ``docs/service.md`` for the endpoint reference and semantics.
"""

from repro.service.config import PluginSelection, ServiceConfig, SessionConfig
from repro.service.fingerprint import canonical_fingerprint, canonical_json
from repro.service.client import ServiceClient, WorldStream
from repro.service.metrics import ServiceMetrics
from repro.service.plugins import (
    SessionSpec,
    get_service_plugin,
    register_service_plugin,
    service_plugin_names,
)
from repro.service.pool import DatabasePool, SessionState
from repro.service.server import DecisionService, ServiceThread

__all__ = [
    "DatabasePool",
    "DecisionService",
    "PluginSelection",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceThread",
    "SessionConfig",
    "SessionSpec",
    "SessionState",
    "WorldStream",
    "canonical_fingerprint",
    "canonical_json",
    "get_service_plugin",
    "register_service_plugin",
    "service_plugin_names",
]
