"""The asyncio decision service: routing, streaming, graceful shutdown.

:class:`DecisionService` glues the pieces together: the minimal HTTP layer
(:mod:`repro.service.http`), the session/executor pool
(:mod:`repro.service.pool`) and the plugin registry
(:mod:`repro.service.plugins`).  The endpoint surface:

========  ==================================  =====================================
method    path                                meaning
========  ==================================  =====================================
GET       ``/healthz``                        liveness (no auth)
GET       ``/metrics``                        :class:`ServiceMetrics` counters
GET       ``/engines``                        registered engines + capabilities
GET       ``/sessions``                       session names
POST      ``/sessions``                       create from a workload plugin
GET       ``/sessions/{s}``                   session info
DELETE    ``/sessions/{s}``                   drop the session
POST      ``/sessions/{s}/decide``            one decision request
POST      ``/sessions/{s}/update``            row-level add/drop update
POST      ``/sessions/{s}/batch``             transactional update batch
GET       ``/sessions/{s}/results``           recent envelopes (result backend)
GET       ``/sessions/{s}/worlds``            stream ``Mod_Adom`` as NDJSON
========  ==================================  =====================================

**Streaming** runs the enumeration on a pump thread feeding a bounded
``asyncio.Queue`` (depth = ``stream_buffer``), so a slow client exerts real
backpressure on the engine instead of buffering the world set.  Client
disconnects are detected by an EOF watcher on the request socket and routed
into the engine through its ``stop_check`` hook (for engines declaring
``supports_cancellation``), so an abandoned stream stops *searching*, not
just writing.

**Shutdown** is drain-then-exit: new requests get 503 while in-flight ones
run to completion (bounded by ``drain_timeout``), then executors stop.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import asdict
from typing import Any, Mapping

from repro.ctables.possible_worlds import models
from repro.decision import json_safe
from repro.exceptions import ReproError, SearchCancelledError, ServiceError
from repro.relational.instance import GroundInstance
from repro.search.registry import EngineConfig, engine_names, get_engine
from repro.service.config import ServiceConfig
from repro.service.http import (
    ChunkedWriter,
    HTTPError,
    HTTPRequest,
    read_request,
    send_json,
)
from repro.service.metrics import ServiceMetrics
from repro.service.plugins import get_service_plugin
from repro.service.pool import DatabasePool, SessionState

__all__ = ["DecisionService", "ServiceThread"]


def world_payload(world: GroundInstance) -> dict[str, Any]:
    """One world as JSON: relation name → deterministically ordered rows."""
    return {
        name: [list(json_safe(row)) for row in sorted(rel.rows, key=repr)]
        for name, rel in world.relations().items()
    }


class DecisionService:
    """The service proper: owns the pool, the plugins and the listener."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics()
        self.pool = DatabasePool(
            executor=self.config.executor,
            executor_workers=self.config.executor_workers,
            request_timeout=self.config.request_timeout,
            metrics=self.metrics,
        )
        self._auth = get_service_plugin("auth", self.config.auth.name)(
            **dict(self.config.auth.options)
        )
        self._rate_limit = get_service_plugin(
            "rate_limit", self.config.rate_limit.name
        )(**dict(self.config.rate_limit.options))
        self._results = get_service_plugin(
            "result_backend", self.config.result_backend.name
        )(**dict(self.config.result_backend.options))
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._inflight = 0
        self._drained: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the configured sessions and start listening."""
        for name, session in self.config.sessions.items():
            self.pool.create_session(
                name, session.workload, session.params, session.engine
            )
        self._drained = asyncio.Event()
        self._drained.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        assert self._server is not None, "start() must run first"
        sockets = self._server.sockets
        assert sockets
        port = sockets[0].getsockname()[1]
        return int(port)

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run first"
        await self._server.serve_forever()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight requests, stop executors."""
        self._closing = True
        if self._server is not None:
            self._server.close()
        if drain and self._inflight and self._drained is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.config.drain_timeout
                )
        if self._server is not None:
            # On Python >= 3.12.1 wait_closed() also waits for in-flight
            # connections; the drain above already bounded that, so bound
            # this wait too rather than hanging on a stuck client.
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
        self.pool.shutdown()

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def inflight(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HTTPError as err:
                await send_json(
                    writer, err.status, {"ok": False, "error": str(err)}
                )
                return
            if request is None:
                return
            self.metrics.requests += 1
            self._inflight += 1
            assert self._drained is not None
            self._drained.clear()
            try:
                await self._dispatch(request, reader, writer)
            except HTTPError as err:
                await send_json(
                    writer, err.status, {"ok": False, "error": str(err)}
                )
            except ServiceError as err:
                if err.status >= 500:
                    self.metrics.errors += 1
                await send_json(
                    writer, err.status, {"ok": False, "error": str(err)}
                )
            except ReproError as err:
                await send_json(writer, 400, {"ok": False, "error": str(err)})
            except (ConnectionError, BrokenPipeError):
                pass  # client went away mid-response; nothing to tell it
            except Exception as err:  # noqa: BLE001 - the server must survive
                self.metrics.errors += 1
                with contextlib.suppress(ConnectionError, OSError):
                    await send_json(
                        writer,
                        500,
                        {"ok": False, "error": f"internal error: {err}"},
                    )
            finally:
                self._inflight -= 1
                if self._inflight == 0:
                    self._drained.set()
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = request.path_parts()
        if parts == ["healthz"]:
            await send_json(
                writer,
                200,
                {"ok": True, "status": "draining" if self._closing else "ok"},
            )
            return
        if not self._auth.authorize(request.headers):
            self.metrics.rejected += 1
            raise HTTPError(401, "unauthorized")
        if self._closing:
            raise HTTPError(503, "service is draining")

        if parts == ["metrics"] and request.method == "GET":
            payload = self.metrics.to_dict()
            payload["inflight"] = self._inflight
            await send_json(writer, 200, {"ok": True, "metrics": payload})
            return
        if parts == ["engines"] and request.method == "GET":
            engines = [
                {"name": name, "capabilities": asdict(get_engine(name).capabilities)}
                for name in engine_names()
            ]
            await send_json(writer, 200, {"ok": True, "engines": engines})
            return
        if parts == ["sessions"]:
            await self._dispatch_sessions_root(request, writer)
            return
        if len(parts) >= 2 and parts[0] == "sessions":
            await self._dispatch_session(parts[1:], request, reader, writer)
            return
        raise HTTPError(404, f"no route for {request.method} {request.path}")

    async def _dispatch_sessions_root(
        self, request: HTTPRequest, writer: asyncio.StreamWriter
    ) -> None:
        if request.method == "GET":
            await send_json(
                writer, 200, {"ok": True, "sessions": self.pool.session_names()}
            )
            return
        if request.method in ("POST", "PUT"):
            body = request.json()
            if not isinstance(body, Mapping):
                raise ServiceError("session creation body must be a JSON object")
            name = body.get("name")
            workload = body.get("workload")
            if not isinstance(name, str) or not isinstance(workload, str):
                raise ServiceError(
                    "session creation requires \"name\" and \"workload\" strings"
                )
            params = body.get("params", {})
            if not isinstance(params, Mapping):
                raise ServiceError("session \"params\" must be an object")
            engine = body.get("engine")
            if engine is not None and not isinstance(engine, str):
                raise ServiceError("session \"engine\" must be a name or null")
            state = self.pool.create_session(name, workload, params, engine)
            await send_json(writer, 201, {"ok": True, "session": state.info()})
            return
        raise HTTPError(405, f"{request.method} not allowed on /sessions")

    async def _dispatch_session(
        self,
        parts: list[str],
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        name = parts[0]
        if len(parts) == 1:
            if request.method == "GET":
                state = self.pool.session(name)
                await send_json(writer, 200, {"ok": True, "session": state.info()})
                return
            if request.method == "DELETE":
                self.pool.drop_session(name)
                await send_json(writer, 200, {"ok": True, "dropped": name})
                return
            raise HTTPError(405, f"{request.method} not allowed on a session")
        if len(parts) != 2:
            raise HTTPError(404, f"no route for {request.method} {request.path}")
        action = parts[1]
        if action == "decide" and request.method == "POST":
            if not self._rate_limit.allow(name):
                self.metrics.rejected += 1
                raise HTTPError(429, f"rate limit exceeded for session {name!r}")
            envelope = await self.pool.decide(name, request.json())
            self._results.record(name, envelope)
            await send_json(writer, 200, envelope)
            return
        if action == "update" and request.method == "POST":
            await send_json(writer, 200, await self.pool.update(name, request.json()))
            return
        if action == "batch" and request.method == "POST":
            await send_json(writer, 200, await self.pool.batch(name, request.json()))
            return
        if action == "results" and request.method == "GET":
            self.pool.session(name)  # 404 on unknown sessions
            await send_json(
                writer, 200, {"ok": True, "results": self._results.recent(name)}
            )
            return
        if action == "worlds" and request.method == "GET":
            if not self._rate_limit.allow(name):
                self.metrics.rejected += 1
                raise HTTPError(429, f"rate limit exceeded for session {name!r}")
            await self._stream_worlds(name, request, reader, writer)
            return
        raise HTTPError(404, f"no route for {request.method} {request.path}")

    # ------------------------------------------------------------------
    # world streaming
    # ------------------------------------------------------------------
    def _stream_engine(
        self, state: SessionState, request: HTTPRequest, cancel: threading.Event
    ) -> EngineConfig:
        """The engine selection for a stream, with cancellation wired in."""
        raw = request.query.get("engine") or state.engine
        try:
            config = EngineConfig.coerce(raw)
            spec = config.spec()
        except ReproError as err:
            raise ServiceError(f"bad engine selection: {err}") from err
        if spec.capabilities.supports_cancellation:
            config = EngineConfig(
                config.name,
                config.workers,
                {**config.options, "stop_check": cancel.is_set},
            )
        return config

    async def _stream_worlds(
        self,
        name: str,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        state = self.pool.session(name)
        limit_raw = request.query.get("limit")
        limit: int | None = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError as err:
                raise ServiceError("limit must be an integer") from err
            if limit < 0:
                raise ServiceError("limit must be >= 0")
        deduplicate = request.query.get("deduplicate", "true").lower() != "false"
        cancel = threading.Event()
        engine = self._stream_engine(state, request, cancel)
        queue: asyncio.Queue[tuple[str, Any]] = asyncio.Queue(
            maxsize=self.config.stream_buffer
        )
        loop = asyncio.get_running_loop()
        db = state.database

        def pump() -> None:
            """Producer thread: engine enumeration → bounded queue."""

            def put(item: tuple[str, Any]) -> None:
                asyncio.run_coroutine_threadsafe(queue.put(item), loop).result()

            streamed = 0
            try:
                for world in models(
                    db.cinstance,
                    db.master,
                    db.constraints,
                    db.adom(),
                    deduplicate=deduplicate,
                    engine=engine,
                    checker=db.checker,
                ):
                    if cancel.is_set():
                        raise SearchCancelledError("stream cancelled")
                    put(("world", world_payload(world)))
                    streamed += 1
                    if limit is not None and streamed >= limit:
                        break
                put(("done", streamed))
            except SearchCancelledError:
                put(("cancelled", streamed))
            except BaseException as err:  # noqa: BLE001 - crosses the thread
                put(("error", f"{type(err).__name__}: {err}"))

        # EOF watcher: the request is fully read, so any read() completing
        # means the client hung up — route that into the engine's stop_check.
        watcher = asyncio.ensure_future(reader.read())
        watcher.add_done_callback(lambda _task: cancel.set())

        chunked = ChunkedWriter(writer)
        self.metrics.streams_started += 1
        thread = threading.Thread(
            target=pump, name=f"repro-stream-{name}", daemon=True
        )
        completed = False
        async with state.lock.read_locked():
            await chunked.start()
            thread.start()
            try:
                while True:
                    kind, payload = await queue.get()
                    if kind == "world":
                        if cancel.is_set():
                            continue  # draining towards the terminal marker
                        try:
                            await chunked.write_line({"kind": "world", "world": payload})
                            self.metrics.worlds_streamed += 1
                        except (ConnectionError, OSError):
                            cancel.set()
                        continue
                    if kind == "done":
                        if not cancel.is_set():
                            with contextlib.suppress(ConnectionError, OSError):
                                await chunked.write_line(
                                    {"kind": "summary", "worlds": payload}
                                )
                                # The summary is the semantic end of stream: a
                                # client hanging up between it and the chunked
                                # terminator still counts as completed.
                                completed = True
                                await chunked.finish()
                        break
                    if kind == "cancelled":
                        break
                    assert kind == "error"
                    with contextlib.suppress(ConnectionError, OSError):
                        await chunked.write_line({"kind": "error", "error": payload})
                        await chunked.finish()
                    self.metrics.errors += 1
                    completed = True  # terminated cleanly, if unhappily
                    break
            finally:
                cancel.set()
                watcher.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, ConnectionError, OSError
                ):
                    await watcher
                # Unblock a pump stuck on a full queue, then let it finish.
                while thread.is_alive():
                    while not queue.empty():
                        queue.get_nowait()
                    await asyncio.sleep(0.01)
                thread.join(timeout=5.0)
        if completed:
            self.metrics.streams_completed += 1
        else:
            self.metrics.streams_cancelled += 1


class ServiceThread:
    """A :class:`DecisionService` on a private loop in a daemon thread.

    The embedding surface for tests, benchmarks and doc snippets::

        with ServiceThread(ServiceConfig(port=0, executor="thread")) as svc:
            client = ServiceClient(svc.base_url)
            ...

    ``port=0`` binds an ephemeral port; :attr:`base_url` reports the bound
    address once the server is up.  Exiting the context performs the same
    drain-then-exit shutdown as the CLI entrypoint.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config if config is not None else ServiceConfig(port=0)
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.service: DecisionService | None = None
        self._base_url: str | None = None

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ServiceError("ServiceThread is not reentrant")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise ServiceError("service thread did not start within 60s")
        if self._failure is not None:
            raise ServiceError(f"service failed to start: {self._failure}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as err:  # noqa: BLE001 - reported to the caller
            self._failure = err
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = DecisionService(self._config)
        self.service = service
        await service.start()
        self._base_url = service.base_url
        self._ready.set()
        await self._stop.wait()
        await service.shutdown(drain=True)

    @property
    def base_url(self) -> str:
        assert self._base_url is not None, "start() must run first"
        return self._base_url

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
