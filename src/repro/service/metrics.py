"""Service-wide counters, exposed at ``GET /metrics``.

The counters are the observable half of the service's gates: the
single-flight test asserts ``engine_runs`` stayed at 1 across N identical
concurrent requests, the invalidation test watches ``cache_hits``, and the
disconnect test waits for ``streams_cancelled``.  All mutation happens on
the event-loop thread (or under its executor callbacks marshalled back to
it), so plain ints suffice.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["ServiceMetrics"]


@dataclass
class ServiceMetrics:
    """Monotonic counters describing one service process's lifetime."""

    requests: int = 0
    decisions: int = 0
    cache_hits: int = 0
    engine_runs: int = 0
    singleflight_followers: int = 0
    updates: int = 0
    cache_evictions: int = 0
    streams_started: int = 0
    streams_completed: int = 0
    streams_cancelled: int = 0
    worlds_streamed: int = 0
    timeouts: int = 0
    rejected: int = 0
    errors: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)
