"""Wire-level decision requests: parsing, dispatch and cache identity.

One module owns the mapping between the JSON request surface and the
:class:`~repro.api.Database` facade, because three places must agree on it
exactly:

* **dispatch** — which facade method a request invokes (:func:`invoke`);
* **cache identity** — the ``(problem, args_key)`` pair the facade's own
  methods memoise under, so a service-side
  :meth:`~repro.api.Database.cache_probe` hits entries populated by direct
  facade calls and vice versa;
* **invalidation scope** — the dependency relation set
  (:func:`dependencies`) governing eviction on update, mirroring the deps
  each facade method passes internally (RCQP: empty set, survives every
  update; witness-free consistency: the constraint-mentioned relations;
  certain answers: constraint ∪ query relations; everything else: all).

A drift between this table and ``api.py`` would show up as a cache that
never hits (annoying) or hits stale entries (wrong); the end-to-end tests
assert wire-level ``stats.cache_hit`` after direct facade warm-up to pin
the identity down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api import Database
from repro.completeness.models import CompletenessModel
from repro.decision import Decision, json_safe
from repro.exceptions import ServiceError
from repro.incremental import RowSpec, UpdateResult
from repro.queries.evaluation import Query, query_relation_names
from repro.search.registry import EngineConfig
from repro.service.plugins import SessionSpec

__all__ = [
    "DecisionRequest",
    "dependencies",
    "invoke",
    "parse_decision",
    "parse_engine",
    "parse_rows",
    "result_payload",
    "update_payload",
]

#: Wire-level aliases accepted in the ``"problem"`` field, mapped to the
#: canonical facade cache problem names.
PROBLEM_ALIASES: Mapping[str, str] = {
    "consistency": "consistency",
    "is_consistent": "consistency",
    "count": "model-count",
    "model_count": "model-count",
    "model-count": "model-count",
    "complete": "rcdp",
    "rcdp": "rcdp",
    "minp": "minp",
    "rcqp": "rcqp",
    "certain": "certain-answers",
    "certain_answers": "certain-answers",
    "certain-answers": "certain-answers",
    "certain_answers_over_extensions": "certain-answers-extensions",
    "certain-answers-extensions": "certain-answers-extensions",
}


@dataclass(frozen=True)
class DecisionRequest:
    """A parsed decision request, ready to dispatch and to key a cache.

    ``problem`` is the canonical facade problem string; ``args_key`` is
    byte-for-byte the tuple the corresponding facade method uses as its
    memoisation identity; ``kwargs`` carries the resolved call arguments
    (query *objects*, not names — resolution happened at parse time against
    the session's workload queries).  Picklable, so the process-pool
    executor can ship it to a replica worker.
    """

    problem: str
    args_key: Any
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    query: Query | None = None


def _require_mapping(body: Any) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ServiceError("request body must be a JSON object")
    return body


def _parse_model(body: Mapping[str, Any]) -> CompletenessModel:
    raw = body.get("model", CompletenessModel.STRONG.value)
    try:
        return CompletenessModel(raw)
    except ValueError as err:
        known = ", ".join(m.value for m in CompletenessModel)
        raise ServiceError(f"unknown model {raw!r} (known: {known})") from err


def _parse_query(spec: SessionSpec, body: Mapping[str, Any]) -> Query:
    name = body.get("query")
    if not isinstance(name, str):
        raise ServiceError("this problem requires a \"query\" name (string)")
    query = spec.queries.get(name)
    if query is None:
        known = ", ".join(sorted(spec.queries)) or "none"
        raise ServiceError(f"unknown query {name!r} (session queries: {known})")
    return query


def _parse_int(body: Mapping[str, Any], key: str, default: int) -> int:
    value = body.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServiceError(f"{key!r} must be an integer")
    return value


def _parse_optional_int(body: Mapping[str, Any], key: str) -> int | None:
    value = body.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServiceError(f"{key!r} must be an integer or null")
    return value


def _parse_bool(body: Mapping[str, Any], key: str, default: bool) -> bool:
    value = body.get(key, default)
    if not isinstance(value, bool):
        raise ServiceError(f"{key!r} must be a boolean")
    return value


def parse_engine(body: Mapping[str, Any]) -> EngineConfig | None:
    """The engine selection of a request body (``engine`` / ``workers``).

    ``None`` when the request leaves the choice to the session's default.
    """
    name = body.get("engine")
    workers = _parse_optional_int(body, "workers")
    if name is None and workers is None:
        return None
    if name is not None and not isinstance(name, str):
        raise ServiceError("\"engine\" must be an engine name (string)")
    try:
        config = EngineConfig.coerce(name)
        config = EngineConfig(config.name, workers, config.options)
        config.spec()  # validate the name against the registry now
    except Exception as err:
        raise ServiceError(f"bad engine selection: {err}") from err
    return config


def parse_decision(spec: SessionSpec, body: Any) -> DecisionRequest:
    """Parse a wire decision request against a session's workload spec.

    Every branch constructs ``args_key`` exactly as the facade method it
    dispatches to (see the module docstring); defaults likewise mirror the
    facade signatures.
    """
    body = _require_mapping(body)
    raw = body.get("problem")
    if not isinstance(raw, str):
        raise ServiceError("request requires a \"problem\" name (string)")
    problem = PROBLEM_ALIASES.get(raw)
    if problem is None:
        known = ", ".join(sorted(PROBLEM_ALIASES))
        raise ServiceError(f"unknown problem {raw!r} (known: {known})")

    if problem == "consistency":
        witness = _parse_bool(body, "witness", True)
        return DecisionRequest(
            problem, ("witness", witness), {"witness": witness}
        )
    if problem == "model-count":
        return DecisionRequest(problem, ())
    if problem == "rcdp":
        query = _parse_query(spec, body)
        model = _parse_model(body)
        allow_bounded = _parse_bool(body, "allow_bounded", False)
        max_new_tuples = _parse_int(body, "max_new_tuples", 1)
        limit = _parse_optional_int(body, "limit")
        require_consistent = _parse_bool(body, "require_consistent", True)
        return DecisionRequest(
            problem,
            (query, model, allow_bounded, max_new_tuples, limit, require_consistent),
            {
                "model": model,
                "allow_bounded": allow_bounded,
                "max_new_tuples": max_new_tuples,
                "limit": limit,
                "require_consistent": require_consistent,
            },
            query=query,
        )
    if problem == "minp":
        query = _parse_query(spec, body)
        model = _parse_model(body)
        limit = _parse_optional_int(body, "limit")
        return DecisionRequest(
            problem,
            (query, model, limit),
            {"model": model, "limit": limit},
            query=query,
        )
    if problem == "rcqp":
        query = _parse_query(spec, body)
        model = _parse_model(body)
        max_size = _parse_int(body, "max_size", 2)
        return DecisionRequest(
            problem,
            (query, model, max_size),
            {"model": model, "max_size": max_size},
            query=query,
        )
    if problem == "certain-answers":
        query = _parse_query(spec, body)
        return DecisionRequest(problem, (query,), query=query)
    assert problem == "certain-answers-extensions"
    query = _parse_query(spec, body)
    limit = _parse_optional_int(body, "limit")
    return DecisionRequest(
        problem, (query, limit), {"limit": limit}, query=query
    )


def invoke(
    db: Database, request: DecisionRequest, engine: EngineConfig | str | None
) -> Any:
    """Dispatch a parsed request to the facade (runs engine work; blocking).

    Returns whatever the facade method returns (:class:`Decision` or a
    frozenset of answer rows).  The facade's own memoisation applies, so a
    replica worker that computed once serves its process-local repeats from
    its own cache too.
    """
    if request.problem == "consistency":
        return db.is_consistent(engine=engine, **request.kwargs)
    if request.problem == "model-count":
        return db.count(engine=engine)
    assert request.query is not None
    if request.problem == "rcdp":
        return db.complete(request.query, engine=engine, **request.kwargs)
    if request.problem == "minp":
        return db.minp(request.query, engine=engine, **request.kwargs)
    if request.problem == "rcqp":
        return db.rcqp(request.query, engine=engine, **request.kwargs)
    if request.problem == "certain-answers":
        return db.certain_answers(request.query, engine=engine)
    assert request.problem == "certain-answers-extensions"
    return db.certain_answers_over_extensions(
        request.query, engine=engine, **request.kwargs
    )


def dependencies(db: Database, request: DecisionRequest) -> frozenset[str] | None:
    """The invalidation dependency set for storing a computed result.

    Mirrors the deps each facade method passes to its own ``cache_store``:
    ``None`` means "depends on every relation".
    """
    if request.problem == "consistency":
        if request.kwargs.get("witness", True):
            return None
        return db.constraint_relations()
    if request.problem == "rcqp":
        return frozenset()
    if request.problem == "certain-answers":
        assert request.query is not None
        return db.constraint_relations() | query_relation_names(request.query)
    return None


# ---------------------------------------------------------------------------
# wire serialisation
# ---------------------------------------------------------------------------
def result_payload(result: Any, *, include_witness: bool = False) -> dict[str, Any]:
    """The JSON result of one dispatched request.

    Decisions serialise through :meth:`~repro.decision.Decision.to_dict`
    (every response carries the full ``stats`` record); certain-answer row
    sets become a deterministically sorted list of rows.
    """
    if isinstance(result, Decision):
        return {"kind": "decision", **result.to_dict(include_witness=include_witness)}
    if isinstance(result, frozenset):
        return {"kind": "answers", "answers": json_safe(result)}
    return {"kind": "value", "value": json_safe(result)}


def update_payload(result: UpdateResult) -> dict[str, Any]:
    """The JSON shape of one :class:`~repro.incremental.UpdateResult`."""
    return {
        "added": len(result.added),
        "dropped": len(result.dropped),
        "touched": sorted(result.touched),
        "adom_gained": json_safe(result.adom_gained),
        "adom_lost": json_safe(result.adom_lost),
        "invalidated": result.invalidated,
        "consistent": result.consistent,
    }


def parse_rows(raw: Any, what: str) -> dict[str, list[RowSpec]]:
    """Parse an ``{relation: [[v, ...], ...]}`` wire mapping of row specs.

    Only ground rows of JSON scalars are expressible over the wire (local
    conditions and fresh variables are not JSON); this matches the
    update-surface sweet spot — variable-row edits force engine-session
    rebuilds anyway.
    """
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ServiceError(f"{what} must be an object mapping relations to rows")
    parsed: dict[str, list[RowSpec]] = {}
    for relation, rows in raw.items():
        if not isinstance(relation, str):
            raise ServiceError(f"{what}: relation names must be strings")
        if not isinstance(rows, list):
            raise ServiceError(f"{what}[{relation!r}] must be a list of rows")
        specs: list[RowSpec] = []
        for row in rows:
            if not isinstance(row, list):
                raise ServiceError(
                    f"{what}[{relation!r}]: each row must be a list of values"
                )
            for value in row:
                if value is not None and not isinstance(value, (str, int, float, bool)):
                    raise ServiceError(
                        f"{what}[{relation!r}]: row values must be JSON scalars"
                    )
            specs.append(tuple(row))
        parsed[relation] = specs
    return parsed
