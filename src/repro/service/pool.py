"""The :class:`DatabasePool`: per-session facades, executors, memoisation.

The pool owns one :class:`~repro.api.Database` per named session plus the
executor that keeps engine work off the event loop, and implements the
service's cross-request semantics:

* **memoisation** — every decision request probes the session facade's
  :class:`~repro.incremental.DecisionCache` through the public
  :meth:`~repro.api.Database.cache_probe` before any engine runs, under the
  exact ``(problem, args_key, engine)`` identity the facade's own methods
  use (:mod:`repro.service.problems`), and stores computed results back with
  the facade's dependency-scoped invalidation rules — so service traffic and
  embedded facade calls share one cache, and
  :meth:`~repro.api.Database.update` evicts exactly the dependent entries;
* **single-flight** — concurrent identical requests (same session, same
  canonical body fingerprint, same engine) collapse onto one computation
  whose :class:`~repro.decision.Decision` fans out to every waiter;
* **update serialisation** — ``update``/``batch`` take the session's write
  lock, so they never run under an in-flight read, and bump the session
  version that invalidates worker-process replicas.

Executor kinds: ``"process"`` (default) ships the parsed request to a
fork-pool worker which rebuilds (and caches, keyed by session name +
version) a replica ``Database`` and computes there — the main-process
facade stays authoritative for cache and updates, only CPU work migrates;
``"thread"`` runs the main facade on a thread pool (GIL-shared, loop stays
responsive); ``"inline"`` computes on the loop (tests, tiny workloads).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Mapping

from repro.api import Database
from repro.exceptions import (
    InconsistentUpdateError,
    ReproError,
    ServiceError,
    UpdateError,
)
from repro.incremental import MISS, RowSpec, UpdateResult
from repro.search.registry import EngineConfig
from repro.service.fingerprint import canonical_fingerprint
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.plugins import SessionSpec, get_service_plugin
from repro.service.problems import (
    DecisionRequest,
    dependencies,
    invoke,
    parse_decision,
    parse_engine,
    parse_rows,
    result_payload,
    update_payload,
)
from repro.service.singleflight import SingleFlight

__all__ = ["DatabasePool", "SessionState"]


@dataclass(frozen=True)
class _ReplicaPayload:
    """What a process-pool worker needs to rebuild a session replica."""

    name: str
    version: int
    spec: SessionSpec
    engine: str | None


# Per-worker replica cache: one facade per session, rebuilt when the parent's
# session version moves (every update bumps it).  Keeping the replica alive
# across requests lets the worker reuse its checker, Adom and its *own*
# decision cache for process-local repeats.
# reprolint: disable=R005 -- deliberate per-process memo cache: each forked
# worker keeps its own replicas; the parent never reads or depends on them.
_REPLICAS: dict[str, tuple[int, Database]] = {}


def _replica(payload: _ReplicaPayload) -> Database:
    held = _REPLICAS.get(payload.name)
    if held is not None and held[0] == payload.version:
        return held[1]
    db = Database(
        payload.spec.cinstance,
        payload.spec.master,
        payload.spec.constraints,
        engine=payload.engine,
    )
    _REPLICAS[payload.name] = (payload.version, db)
    return db


def _process_decide(
    payload: _ReplicaPayload,
    request: DecisionRequest,
    engine: EngineConfig | None,
) -> Any:
    """Worker-side entry point: rebuild/reuse the replica and compute."""
    return invoke(_replica(payload), request, engine)


@dataclass
class SessionState:
    """One named session: spec + facade + lock + replica versioning."""

    name: str
    spec: SessionSpec
    database: Database
    engine: str | None = None
    lock: ReadWriteLock = field(default_factory=ReadWriteLock)
    version: int = 0

    def info(self) -> dict[str, Any]:
        """The JSON shape of ``GET /sessions/{name}``."""
        cinstance = self.database.cinstance
        return {
            "name": self.name,
            "description": self.spec.description,
            "engine": self.engine,
            "version": self.version,
            "relations": {
                name: len(table.rows) for name, table in cinstance.tables().items()
            },
            "queries": sorted(self.spec.queries),
            "constraints": len(self.database.constraints),
        }


def _apply_batch(
    db: Database, steps: list[tuple[dict[str, list[RowSpec]], dict[str, list[RowSpec]]]]
) -> list[UpdateResult]:
    results: list[UpdateResult] = []
    with db.batch() as batch:
        for add, drop in steps:
            results.append(batch.update(add_rows=add, drop_rows=drop))
    return results


class DatabasePool:
    """Owns the sessions, the executor and the cross-request semantics."""

    def __init__(
        self,
        *,
        executor: str = "process",
        executor_workers: int | None = None,
        request_timeout: float | None = 30.0,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if executor not in ("process", "thread", "inline"):
            raise ServiceError(f"unknown executor kind {executor!r}")
        self._executor_kind = executor
        self._executor_workers = executor_workers
        self._request_timeout = request_timeout
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._sessions: dict[str, SessionState] = {}
        self._singleflight = SingleFlight()
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        workload: str,
        params: Mapping[str, Any] | None = None,
        engine: str | None = None,
    ) -> SessionState:
        """Create a session from a registered workload plugin."""
        if not name or "/" in name:
            raise ServiceError(f"invalid session name {name!r}")
        if name in self._sessions:
            raise ServiceError(
                f"session {name!r} already exists", status=409
            )
        factory = get_service_plugin("workload", workload)
        spec = factory(**dict(params or {}))
        if not isinstance(spec, SessionSpec):
            raise ServiceError(
                f"workload plugin {workload!r} did not produce a SessionSpec"
            )
        return self.add_session(name, spec, engine=engine)

    def add_session(
        self, name: str, spec: SessionSpec, *, engine: str | None = None
    ) -> SessionState:
        """Register a session from an explicit spec (embedding surface)."""
        if name in self._sessions:
            raise ServiceError(f"session {name!r} already exists", status=409)
        if engine is not None:
            try:
                EngineConfig.coerce(engine).spec()  # validate the name now
            except ReproError as err:
                raise ServiceError(f"bad session engine: {err}") from err
        database = Database(
            spec.cinstance, spec.master, spec.constraints, engine=engine
        )
        state = SessionState(name=name, spec=spec, database=database, engine=engine)
        self._sessions[name] = state
        return state

    def drop_session(self, name: str) -> None:
        if name not in self._sessions:
            raise ServiceError(f"unknown session {name!r}", status=404)
        del self._sessions[name]

    def session(self, name: str) -> SessionState:
        state = self._sessions.get(name)
        if state is None:
            raise ServiceError(f"unknown session {name!r}", status=404)
        return state

    def session_names(self) -> list[str]:
        return sorted(self._sessions)

    # ------------------------------------------------------------------
    # the decision path
    # ------------------------------------------------------------------
    async def decide(self, name: str, body: Any) -> dict[str, Any]:
        """One decision request: probe → single-flight → compute → store."""
        started = time.perf_counter()
        state = self.session(name)
        if not isinstance(body, Mapping):
            raise ServiceError("decision request body must be a JSON object")
        request = parse_decision(state.spec, body)
        engine = parse_engine(body)
        include_witness = bool(body.get("include_witness", False))
        engine_key = (
            (engine.name, engine.workers) if engine is not None else state.engine
        )
        flight_key = (
            name,
            request.problem,
            canonical_fingerprint(
                {
                    key: value
                    for key, value in body.items()
                    if key != "include_witness"
                }
            ),
            engine_key,
        )
        cache_hit = False
        deduplicated = False
        async with state.lock.read_locked():
            db = state.database
            value = db.cache_probe(request.problem, request.args_key, engine=engine)
            if value is not MISS:
                cache_hit = True
                self.metrics.cache_hits += 1
            else:
                leader, future = self._singleflight.acquire(flight_key)
                if leader:
                    try:
                        value = await self._compute(state, request, engine)
                        db.cache_store(
                            request.problem,
                            request.args_key,
                            value,
                            deps=dependencies(db, request),
                            engine=engine,
                        )
                        self.metrics.engine_runs += 1
                        future.set_result(value)
                    except BaseException as err:
                        if not future.done():
                            future.set_exception(err)
                            # A flight with no followers would warn about a
                            # never-retrieved exception on GC; mark it seen.
                            future.exception()
                        raise
                    finally:
                        self._singleflight.release(flight_key)
                else:
                    deduplicated = True
                    self.metrics.singleflight_followers += 1
                    value = await future
        self.metrics.decisions += 1
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return {
            "ok": True,
            "session": name,
            "problem": request.problem,
            "cache_hit": cache_hit,
            "deduplicated": deduplicated,
            "elapsed_ms": elapsed_ms,
            "result": result_payload(value, include_witness=include_witness),
        }

    async def _compute(
        self,
        state: SessionState,
        request: DecisionRequest,
        engine: EngineConfig | None,
    ) -> Any:
        """Run one engine computation on the configured executor."""
        loop = asyncio.get_running_loop()
        if self._executor_kind == "inline":
            await asyncio.sleep(0)  # keep one suspension point even inline
            return invoke(state.database, request, engine)
        if self._executor_kind == "thread":
            call = partial(invoke, state.database, request, engine)
        else:
            payload = _ReplicaPayload(
                name=state.name,
                version=state.version,
                spec=state.spec,
                engine=state.engine,
            )
            call = partial(_process_decide, payload, request, engine)
        task = loop.run_in_executor(self._get_executor(), call)
        if self._request_timeout is None:
            return await task
        try:
            return await asyncio.wait_for(task, timeout=self._request_timeout)
        except asyncio.TimeoutError as err:
            # The executor work itself cannot be interrupted portably; it
            # finishes in the background and is discarded.
            self.metrics.timeouts += 1
            raise ServiceError(
                f"request exceeded the {self._request_timeout}s timeout",
                status=504,
            ) from err

    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self._executor_kind == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self._executor_workers,
                    thread_name_prefix="repro-service",
                )
            else:
                kwargs: dict[str, Any] = {"max_workers": self._executor_workers}
                if "fork" in multiprocessing.get_all_start_methods():
                    kwargs["mp_context"] = multiprocessing.get_context("fork")
                self._executor = ProcessPoolExecutor(**kwargs)
        return self._executor

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    async def update(self, name: str, body: Any) -> dict[str, Any]:
        """Apply one ``update`` under the session's write lock."""
        state = self.session(name)
        if not isinstance(body, Mapping):
            raise ServiceError("update request body must be a JSON object")
        add = parse_rows(body.get("add_rows"), "add_rows")
        drop = parse_rows(body.get("drop_rows"), "drop_rows")
        async with state.lock.write_locked():
            try:
                result = await asyncio.to_thread(state.database.update, add, drop)
            except UpdateError as err:
                raise ServiceError(str(err)) from err
            state.version += 1
        self.metrics.updates += 1
        self.metrics.cache_evictions += result.invalidated
        return {"ok": True, "session": name, "update": update_payload(result)}

    async def batch(self, name: str, body: Any) -> dict[str, Any]:
        """Apply a transactional batch; 409 + rollback on net inconsistency."""
        state = self.session(name)
        if not isinstance(body, Mapping):
            raise ServiceError("batch request body must be a JSON object")
        raw_steps = body.get("steps")
        if not isinstance(raw_steps, list):
            raise ServiceError("batch body requires a \"steps\" list")
        steps = [
            (
                parse_rows(step.get("add_rows"), "add_rows")
                if isinstance(step, Mapping)
                else _bad_step(),
                parse_rows(step.get("drop_rows"), "drop_rows")
                if isinstance(step, Mapping)
                else _bad_step(),
            )
            for step in raw_steps
        ]
        async with state.lock.write_locked():
            try:
                results = await asyncio.to_thread(
                    _apply_batch, state.database, steps
                )
            except InconsistentUpdateError as err:
                raise ServiceError(str(err), status=409) from err
            except UpdateError as err:
                raise ServiceError(str(err)) from err
            state.version += 1
        self.metrics.updates += len(results)
        self.metrics.cache_evictions += sum(r.invalidated for r in results)
        return {
            "ok": True,
            "session": name,
            "steps": [update_payload(result) for result in results],
        }

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Shut down the executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


def _bad_step() -> dict[str, list[RowSpec]]:
    raise ServiceError("each batch step must be an object with add_rows/drop_rows")
