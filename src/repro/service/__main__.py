"""``python -m repro.service`` — run the decision service.

Loads an optional JSON config file, applies command-line overrides, serves
until SIGTERM/SIGINT, then drains in-flight requests and exits::

    python -m repro.service --config service.json
    python -m repro.service --host 0.0.0.0 --port 9000 --executor thread
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from dataclasses import replace

from repro.exceptions import ServiceError
from repro.service.config import ServiceConfig
from repro.service.server import DecisionService


def build_config(argv: list[str] | None = None) -> ServiceConfig:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the relative-information-completeness decision "
        "surface over HTTP/JSON.",
    )
    parser.add_argument("--config", help="path to a JSON config file")
    parser.add_argument("--host", help="bind address (default from config)")
    parser.add_argument("--port", type=int, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "inline"),
        help="how engine work leaves the event loop",
    )
    parser.add_argument(
        "--workers", type=int, help="executor worker count (default: automatic)"
    )
    args = parser.parse_args(argv)
    config = (
        ServiceConfig.from_file(args.config)
        if args.config is not None
        else ServiceConfig()
    )
    overrides: dict[str, object] = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.workers is not None:
        overrides["executor_workers"] = args.workers
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return config


async def run(config: ServiceConfig) -> None:
    service = DecisionService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    print(f"repro.service listening on {service.base_url}", flush=True)
    serving = asyncio.ensure_future(service.serve_forever())
    try:
        await stop.wait()
    finally:
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving
        print("draining...", flush=True)
        await service.shutdown(drain=True)
        print("stopped cleanly", flush=True)


def main(argv: list[str] | None = None) -> int:
    try:
        config = build_config(argv)
        asyncio.run(run(config))
    except ServiceError as err:
        print(f"repro.service: {err}", file=sys.stderr, flush=True)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
