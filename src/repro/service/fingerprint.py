"""Canonical request fingerprints for cross-request memoisation keys.

The service keys its single-flight table (and its per-request telemetry) by
``(session, problem, fingerprint(args), engine)``.  Two clients asking the
same question must collapse onto one key even when their JSON bodies differ
superficially — dict key order, a round-trip through a proxy that
re-serialises the payload, insignificant whitespace.  The fingerprint is
therefore computed over a *canonical form*: keys sorted, separators fixed,
containers normalised, with dict keys coerced exactly the way ``json.dumps``
coerces non-string keys (so ``fingerprint(x) ==
fingerprint(json.loads(json.dumps(x)))`` holds for every JSON-serialisable
``x``).  The property is locked down by a hypothesis suite
(``tests/service/test_fingerprint.py``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.exceptions import ServiceError

__all__ = ["canonical_fingerprint", "canonical_json"]


def _key(key: Any) -> str:
    """Coerce a dict key the way ``json.dumps`` does.

    This is what makes fingerprints stable under a JSON round-trip: a
    ``True`` key becomes the string ``"true"`` after ``dumps``/``loads``,
    so it must fingerprint as ``"true"`` before the round-trip too.
    """
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return json.dumps(key)
    raise ServiceError(f"unfingerprintable mapping key: {key!r}")


def _normalise(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ServiceError(f"non-finite number in request payload: {value!r}")
        return value
    if isinstance(value, Mapping):
        return {_key(key): _normalise(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    raise ServiceError(f"unfingerprintable request payload: {value!r}")


def canonical_json(value: Any) -> str:
    """The canonical JSON text of a JSON-serialisable value.

    Deterministic: key order, container type (list vs tuple) and formatting
    cannot influence the output.  Raises
    :class:`~repro.exceptions.ServiceError` for payloads outside the JSON
    data model (the service only ever fingerprints parsed request bodies, so
    hitting this means a server-side bug, not a client error).
    """
    return json.dumps(
        _normalise(value), sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def canonical_fingerprint(value: Any) -> str:
    """A SHA-256 hex digest of :func:`canonical_json`.

    Stable under JSON round-trips and mapping key-order permutations;
    distinct canonical values get distinct digests (up to hash collision).
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
