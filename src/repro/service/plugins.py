"""The service-plugin registry: workloads, auth hooks, rate limits, backends.

Mirrors the world-search engine registry
(:func:`repro.search.registry.register_engine`): plugins are factories
registered under a ``(kind, name)`` pair and instantiated from config-file
options, so deployments extend the service without patching it — the same
config-driven registration idiom as the engine registry (and as Klipper's
``load_config_prefix`` pattern it was modelled on).

Four plugin kinds:

``workload``
    A factory producing a :class:`SessionSpec` — the c-instance, master
    data, constraints and named queries a service session is created from.
    Clients cannot ship c-instances over JSON; they reference a registered
    workload by name (plus JSON parameters) when creating a session, and
    reference its queries by name in decision requests.
``auth``
    An :class:`AuthHook` deciding, per request, whether the caller is
    authorised (from the request headers).
``rate_limit``
    A :class:`RateLimiter` admitting or rejecting requests per session.
``result_backend``
    A :class:`ResultBackend` recording decision envelopes per session (an
    audit/inspection surface served at ``GET /sessions/{name}/results``).

Built-ins: workloads ``"registry"`` (the synthetic Record/Registry family)
and ``"patients"`` (the paper's Figure 1 scenario); auth ``"none"`` and
``"token"``; rate limits ``"none"`` and ``"window"``; result backends
``"memory"`` and ``"null"``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

from repro.constraints.containment import ContainmentConstraint
from repro.ctables.cinstance import CInstance
from repro.exceptions import ServiceError
from repro.queries.evaluation import Query
from repro.relational.master import MasterData

__all__ = [
    "AuthHook",
    "PLUGIN_KINDS",
    "RateLimiter",
    "ResultBackend",
    "SessionSpec",
    "get_service_plugin",
    "register_service_plugin",
    "service_plugin_names",
]

PLUGIN_KINDS = ("workload", "auth", "rate_limit", "result_backend")

ServicePluginFactory = Callable[..., Any]

_PLUGINS: dict[str, dict[str, ServicePluginFactory]] = {
    kind: {} for kind in PLUGIN_KINDS
}


def register_service_plugin(
    kind: str,
    name: str,
    factory: ServicePluginFactory,
    *,
    replace: bool = False,
) -> None:
    """Register a plugin factory under ``(kind, name)``.

    ``factory`` is called with the JSON options of the selecting config as
    keyword arguments.  Re-registering an existing name raises unless
    ``replace=True``, exactly like :func:`repro.search.registry.register_engine`.
    """
    if kind not in PLUGIN_KINDS:
        raise ServiceError(
            f"unknown plugin kind {kind!r}; expected one of {PLUGIN_KINDS}"
        )
    table = _PLUGINS[kind]
    if name in table and not replace:
        raise ServiceError(
            f"{kind} plugin {name!r} is already registered "
            "(pass replace=True to override)"
        )
    table[name] = factory


def get_service_plugin(kind: str, name: str) -> ServicePluginFactory:
    """The registered factory for ``(kind, name)``; 400-level error if absent."""
    if kind not in PLUGIN_KINDS:
        raise ServiceError(
            f"unknown plugin kind {kind!r}; expected one of {PLUGIN_KINDS}"
        )
    factory = _PLUGINS[kind].get(name)
    if factory is None:
        known = ", ".join(sorted(_PLUGINS[kind])) or "none registered"
        raise ServiceError(f"unknown {kind} plugin {name!r} (known: {known})")
    return factory


def service_plugin_names(kind: str) -> tuple[str, ...]:
    """The registered plugin names of one kind, sorted."""
    if kind not in PLUGIN_KINDS:
        raise ServiceError(
            f"unknown plugin kind {kind!r}; expected one of {PLUGIN_KINDS}"
        )
    return tuple(sorted(_PLUGINS[kind]))


# ---------------------------------------------------------------------------
# workload plugins → session specifications
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SessionSpec:
    """Everything a service session is built from.

    ``queries`` maps wire-level query names (what decision requests carry in
    their ``"query"`` field) to evaluated-as-is query objects.
    """

    cinstance: CInstance
    master: MasterData
    constraints: tuple[ContainmentConstraint, ...]
    queries: Mapping[str, Query] = field(default_factory=dict)
    description: str = ""


def _registry_workload(**params: Any) -> SessionSpec:
    from repro.workloads.generator import registry_workload

    try:
        workload = registry_workload(**params)
    except TypeError as err:
        raise ServiceError(f"bad registry workload params: {err}") from err
    return SessionSpec(
        cinstance=workload.cinstance,
        master=workload.master,
        constraints=tuple(workload.constraints),
        queries={
            "point": workload.point_query,
            "full": workload.full_query,
            "union": workload.union_query,
        },
        description=(
            f"registry workload (master_size={workload.master_size}, "
            f"variables={workload.variable_count})"
        ),
    )


def _wide_workload(**params: Any) -> SessionSpec:
    from repro.workloads.generator import wide_pool_workload

    params.setdefault("rows", 3)
    params.setdefault("values_per_key", 4)
    try:
        workload = wide_pool_workload(**params)
    except TypeError as err:
        raise ServiceError(f"bad wide workload params: {err}") from err
    return SessionSpec(
        cinstance=workload.cinstance,
        master=workload.master,
        constraints=tuple(workload.constraints),
        queries={},
        description=(
            f"wide-pool workload (rows={workload.rows}, "
            f"values_per_key={workload.values_per_key}) — many worlds, "
            "for streaming/counting"
        ),
    )


def _patients_workload(**params: Any) -> SessionSpec:
    from repro.workloads.patients import build_patient_scenario

    try:
        scenario = build_patient_scenario(**params)
    except TypeError as err:
        raise ServiceError(f"bad patients workload params: {err}") from err
    return SessionSpec(
        cinstance=scenario.figure1,
        master=scenario.master,
        constraints=tuple(scenario.constraints),
        queries={
            "q1": scenario.q1,
            "q2_present": scenario.q2_present,
            "q2_absent": scenario.q2_absent,
            "q3": scenario.q3,
            "q4": scenario.q4,
        },
        description="paper Figure 1 patient scenario",
    )


# ---------------------------------------------------------------------------
# auth plugins
# ---------------------------------------------------------------------------
class AuthHook(Protocol):
    """Authorisation decision from request headers."""

    def authorize(self, headers: Mapping[str, str]) -> bool:
        """Whether a request with these (lower-cased) headers may proceed."""
        ...


class AllowAllAuth:
    """The default hook: every request is authorised."""

    def authorize(self, headers: Mapping[str, str]) -> bool:
        del headers
        return True


class TokenAuth:
    """Static bearer-token auth: ``Authorization: Bearer <token>``.

    Also accepts the token in an ``x-repro-token`` header for clients that
    cannot set ``Authorization``.
    """

    def __init__(self, token: str) -> None:
        if not token:
            raise ServiceError("token auth requires a non-empty token")
        self._token = token

    def authorize(self, headers: Mapping[str, str]) -> bool:
        if headers.get("x-repro-token") == self._token:
            return True
        return headers.get("authorization") == f"Bearer {self._token}"


# ---------------------------------------------------------------------------
# rate-limit plugins
# ---------------------------------------------------------------------------
class RateLimiter(Protocol):
    """Per-session request admission."""

    def allow(self, session: str) -> bool:
        """Whether one more request against ``session`` is admitted now."""
        ...


class UnlimitedRateLimiter:
    """The default limiter: everything is admitted."""

    def allow(self, session: str) -> bool:
        del session
        return True


class WindowRateLimiter:
    """Sliding-window limiter: ``max_requests`` per ``window_seconds``/session.

    ``clock`` is injectable for deterministic tests (defaults to
    ``time.monotonic``).
    """

    def __init__(
        self,
        max_requests: int = 100,
        window_seconds: float = 1.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time

        if max_requests < 1:
            raise ServiceError("window rate limit requires max_requests >= 1")
        if window_seconds <= 0:
            raise ServiceError("window rate limit requires window_seconds > 0")
        self._max = max_requests
        self._window = window_seconds
        self._clock = clock if clock is not None else time.monotonic
        self._events: dict[str, deque[float]] = {}

    def allow(self, session: str) -> bool:
        now = self._clock()
        events = self._events.setdefault(session, deque())
        horizon = now - self._window
        while events and events[0] <= horizon:
            events.popleft()
        if len(events) >= self._max:
            return False
        events.append(now)
        return True


# ---------------------------------------------------------------------------
# result-backend plugins
# ---------------------------------------------------------------------------
class ResultBackend(Protocol):
    """Per-session recording of decision envelopes."""

    def record(self, session: str, payload: Mapping[str, Any]) -> None:
        """Store one decision envelope for ``session``."""
        ...

    def recent(self, session: str) -> list[dict[str, Any]]:
        """The stored envelopes for ``session``, oldest first."""
        ...


class MemoryResultBackend:
    """A bounded in-memory ring buffer of recent envelopes per session."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServiceError("memory result backend requires capacity >= 1")
        self._capacity = capacity
        self._results: dict[str, deque[dict[str, Any]]] = {}

    def record(self, session: str, payload: Mapping[str, Any]) -> None:
        ring = self._results.setdefault(session, deque(maxlen=self._capacity))
        ring.append(dict(payload))

    def recent(self, session: str) -> list[dict[str, Any]]:
        return list(self._results.get(session, ()))


class NullResultBackend:
    """Discards everything (for deployments that do not want the surface)."""

    def record(self, session: str, payload: Mapping[str, Any]) -> None:
        del session, payload

    def recent(self, session: str) -> list[dict[str, Any]]:
        del session
        return []


register_service_plugin("workload", "registry", _registry_workload)
register_service_plugin("workload", "wide", _wide_workload)
register_service_plugin("workload", "patients", _patients_workload)
register_service_plugin("auth", "none", AllowAllAuth)
register_service_plugin("auth", "token", TokenAuth)
register_service_plugin("rate_limit", "none", UnlimitedRateLimiter)
register_service_plugin("rate_limit", "window", WindowRateLimiter)
register_service_plugin("result_backend", "memory", MemoryResultBackend)
register_service_plugin("result_backend", "null", NullResultBackend)
