"""A minimal HTTP/1.1 layer over asyncio streams (no framework dependency).

Only what the decision service needs: request-line + header parsing,
``Content-Length`` bodies, JSON responses, and chunked ``NDJSON`` streaming
for world enumeration.  Connections are one-request-per-connection
(``Connection: close``), which keeps the server loop trivially correct —
the service's expensive work is engine search, not connection setup.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.exceptions import ServiceError

__all__ = ["ChunkedWriter", "HTTPError", "HTTPRequest", "read_request", "send_json"]

#: Upper bounds keeping a misbehaving client from ballooning server memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A request-level failure carrying the HTTP status to respond with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class HTTPRequest:
    """One parsed request."""

    method: str
    path: str
    query: Mapping[str, str] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The request body parsed as JSON (``null``/empty body → ``None``)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as err:
            raise HTTPError(400, f"request body is not valid JSON: {err}") from err

    def path_parts(self) -> list[str]:
        """The non-empty, percent-decoded path segments."""
        return [unquote(part) for part in self.path.split("/") if part]


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Read one request from the stream; ``None`` on clean EOF before data."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise HTTPError(400, "truncated request") from err
    except asyncio.LimitOverrunError as err:
        raise HTTPError(431, "request headers too large") from err
    if len(header_blob) > MAX_HEADER_BYTES:
        raise HTTPError(431, "request headers too large")
    try:
        head = header_blob.decode("latin-1")
    except UnicodeDecodeError as err:  # pragma: no cover - latin-1 total
        raise HTTPError(400, "undecodable request head") from err
    lines = head.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HTTPError(400, f"malformed header line: {line!r}")
        name, _colon, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_raw = headers.get("content-length")
    if length_raw is not None:
        try:
            length = int(length_raw)
        except ValueError as err:
            raise HTTPError(400, "malformed Content-Length") from err
        if length < 0 or length > MAX_BODY_BYTES:
            raise HTTPError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as err:
            raise HTTPError(400, "truncated request body") from err
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies are not supported")
    return HTTPRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def _format_head(status: int, extra: Mapping[str, str]) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    """Send one complete JSON response and flush."""
    try:
        body = json.dumps(payload).encode("utf-8")
    except (TypeError, ValueError) as err:
        raise ServiceError(f"unserialisable response payload: {err}") from err
    writer.write(
        _format_head(
            status,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            },
        )
    )
    writer.write(body)
    await writer.drain()


class ChunkedWriter:
    """Chunked ``NDJSON`` streaming: one JSON object per line, one chunk each.

    ``start()`` sends the response head; each :meth:`write_line` sends one
    newline-terminated JSON document as an HTTP chunk and drains (so
    backpressure from a slow client propagates to the producer);
    :meth:`finish` sends the terminating zero chunk.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        self._writer.write(
            _format_head(
                status,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                },
            )
        )
        self._started = True
        await self._writer.drain()

    async def write_line(self, payload: Any) -> None:
        assert self._started, "start() must run before write_line()"
        data = (json.dumps(payload) + "\n").encode("utf-8")
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self._writer.write(data)
        self._writer.write(b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        assert self._started, "start() must run before finish()"
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
