"""A small synchronous client for the decision service.

Built on :mod:`http.client` only — tests, benchmarks and doc snippets talk
to the service without growing a dependency.  One connection per request
matches the server's ``Connection: close`` discipline; streams hold their
connection open for the duration (:class:`WorldStream`), and closing one
mid-stream is *the* way to exercise server-side disconnect cancellation.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPResponse
from typing import Any, Iterator, Mapping
from urllib.parse import urlencode, urlsplit

from repro.exceptions import ServiceError

__all__ = ["ServiceClient", "WorldStream"]


class WorldStream:
    """An open ``/worlds`` NDJSON stream; iterate to receive worlds.

    ``http.client`` undoes the chunked transfer coding, so each
    ``readline()`` is one JSON document.  Iteration ends after the
    ``summary`` (or ``error``) line; :meth:`close` tears the socket down
    immediately, which the server notices and converts into engine
    cancellation.
    """

    def __init__(self, connection: HTTPConnection, response: HTTPResponse) -> None:
        self._connection = connection
        self._response = response
        self.summary: dict[str, Any] | None = None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        try:
            while True:
                line = self._response.readline()
                if not line:
                    return
                document = json.loads(line)
                if document.get("kind") == "world":
                    yield document["world"]
                    continue
                if document.get("kind") == "error":
                    raise ServiceError(
                        f"stream failed server-side: {document.get('error')}",
                        status=500,
                    )
                self.summary = document
                return
        finally:
            self.close()

    def close(self) -> None:
        """Drop the connection (mid-stream: triggers server cancellation)."""
        try:
            self._response.close()
        finally:
            self._connection.close()

    def __enter__(self) -> "WorldStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ServiceClient:
    """Synchronous JSON client: one request per call, errors as exceptions.

    Non-2xx responses raise :class:`~repro.exceptions.ServiceError` carrying
    the server's status and message; 2xx responses return the decoded JSON
    envelope.
    """

    def __init__(
        self, base_url: str, *, token: str | None = None, timeout: float = 120.0
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ServiceError(f"unsupported service URL {base_url!r}")
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._token = token
        self._timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self._host, self._port, timeout=self._timeout)

    def _headers(self) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self._token is not None:
            headers["Authorization"] = f"Bearer {self._token}"
        return headers

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One JSON round-trip; raises ``ServiceError`` on non-2xx."""
        if query:
            path = f"{path}?{urlencode(dict(query))}"
        headers = self._headers()
        payload: bytes | None = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError as err:
            raise ServiceError(
                f"service returned undecodable JSON (status {response.status})",
                status=502,
            ) from err
        if not 200 <= response.status < 300:
            message = (
                document.get("error", raw.decode("utf-8", "replace"))
                if isinstance(document, dict)
                else raw.decode("utf-8", "replace")
            )
            raise ServiceError(message, status=response.status)
        return document if isinstance(document, dict) else {"value": document}

    # ------------------------------------------------------------------
    # endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")["metrics"]

    def engines(self) -> list[dict[str, Any]]:
        return self.request("GET", "/engines")["engines"]

    def sessions(self) -> list[str]:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(
        self,
        name: str,
        workload: str,
        params: Mapping[str, Any] | None = None,
        engine: str | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"name": name, "workload": workload}
        if params:
            body["params"] = dict(params)
        if engine is not None:
            body["engine"] = engine
        return self.request("POST", "/sessions", body)["session"]

    def session(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/sessions/{name}")["session"]

    def drop_session(self, name: str) -> None:
        self.request("DELETE", f"/sessions/{name}")

    def decide(self, session: str, problem: str, **kwargs: Any) -> dict[str, Any]:
        """One decision request; returns the full wire envelope."""
        return self.request(
            "POST", f"/sessions/{session}/decide", {"problem": problem, **kwargs}
        )

    def update(
        self,
        session: str,
        add_rows: Mapping[str, Any] | None = None,
        drop_rows: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {}
        if add_rows:
            body["add_rows"] = dict(add_rows)
        if drop_rows:
            body["drop_rows"] = dict(drop_rows)
        return self.request("POST", f"/sessions/{session}/update", body)

    def batch(self, session: str, steps: list[Mapping[str, Any]]) -> dict[str, Any]:
        return self.request(
            "POST", f"/sessions/{session}/batch", {"steps": list(steps)}
        )

    def results(self, session: str) -> list[dict[str, Any]]:
        return self.request("GET", f"/sessions/{session}/results")["results"]

    def stream_worlds(
        self,
        session: str,
        *,
        limit: int | None = None,
        engine: str | None = None,
        deduplicate: bool = True,
    ) -> WorldStream:
        """Open a ``/worlds`` stream (caller iterates / closes)."""
        query: dict[str, Any] = {}
        if limit is not None:
            query["limit"] = limit
        if engine is not None:
            query["engine"] = engine
        if not deduplicate:
            query["deduplicate"] = "false"
        path = f"/sessions/{session}/worlds"
        if query:
            path = f"{path}?{urlencode(query)}"
        connection = self._connect()
        try:
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
        except Exception:
            connection.close()
            raise
        if response.status != 200:
            raw = response.read()
            connection.close()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(message, status=response.status)
        return WorldStream(connection, response)
