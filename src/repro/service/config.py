"""Service configuration: defaults, dict validation, JSON config files.

``python -m repro.service --config service.json`` loads a config like::

    {
      "host": "127.0.0.1",
      "port": 8347,
      "executor": "process",
      "executor_workers": 4,
      "request_timeout": 30.0,
      "stream_buffer": 8,
      "auth": {"name": "token", "options": {"token": "s3cret"}},
      "rate_limit": {"name": "window",
                     "options": {"max_requests": 200, "window_seconds": 1.0}},
      "result_backend": {"name": "memory", "options": {"capacity": 128}},
      "sessions": {
        "demo": {"workload": "registry",
                 "params": {"master_size": 4, "variable_count": 2},
                 "engine": "propagating"}
      }
    }

Every key has a default; unknown keys raise (a typo must not silently
deploy a default).  Plugin selections name factories in the service-plugin
registry (:mod:`repro.service.plugins`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ServiceError

__all__ = ["PluginSelection", "ServiceConfig", "SessionConfig"]


@dataclass(frozen=True)
class PluginSelection:
    """One configured plugin: registry name + factory options."""

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_raw(cls, raw: Any, what: str) -> "PluginSelection":
        if isinstance(raw, str):
            return cls(raw)
        if isinstance(raw, Mapping):
            unknown = set(raw) - {"name", "options"}
            if unknown:
                raise ServiceError(f"{what}: unknown keys {sorted(unknown)}")
            name = raw.get("name")
            if not isinstance(name, str):
                raise ServiceError(f"{what}: plugin \"name\" must be a string")
            options = raw.get("options", {})
            if not isinstance(options, Mapping):
                raise ServiceError(f"{what}: plugin \"options\" must be an object")
            return cls(name, dict(options))
        raise ServiceError(f"{what} must be a plugin name or {{name, options}}")


@dataclass(frozen=True)
class SessionConfig:
    """One preconfigured session: workload plugin + params + default engine."""

    workload: str
    params: Mapping[str, Any] = field(default_factory=dict)
    engine: str | None = None

    @classmethod
    def from_raw(cls, raw: Any, what: str) -> "SessionConfig":
        if not isinstance(raw, Mapping):
            raise ServiceError(f"{what} must be an object")
        unknown = set(raw) - {"workload", "params", "engine"}
        if unknown:
            raise ServiceError(f"{what}: unknown keys {sorted(unknown)}")
        workload = raw.get("workload")
        if not isinstance(workload, str):
            raise ServiceError(f"{what}: \"workload\" must be a plugin name")
        params = raw.get("params", {})
        if not isinstance(params, Mapping):
            raise ServiceError(f"{what}: \"params\" must be an object")
        engine = raw.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise ServiceError(f"{what}: \"engine\" must be an engine name or null")
        return cls(workload, dict(params), engine)


_CONFIG_KEYS = {
    "host",
    "port",
    "executor",
    "executor_workers",
    "request_timeout",
    "stream_buffer",
    "drain_timeout",
    "auth",
    "rate_limit",
    "result_backend",
    "sessions",
}

_EXECUTORS = ("process", "thread", "inline")


@dataclass(frozen=True)
class ServiceConfig:
    """The complete service configuration (all fields defaulted).

    ``executor`` selects how engine work leaves the event loop:
    ``"process"`` (the default; a fork-based ``ProcessPoolExecutor`` of
    ``executor_workers`` replicas), ``"thread"`` (a thread pool — engine
    work shares the GIL but the loop stays responsive at I/O points), or
    ``"inline"`` (run on the loop; only for tests and tiny workloads).
    ``request_timeout`` bounds one decision request in seconds (``null``
    disables); ``stream_buffer`` is the world-stream backpressure queue
    depth; ``drain_timeout`` bounds the graceful-shutdown wait for in-flight
    requests.
    """

    host: str = "127.0.0.1"
    port: int = 8347
    executor: str = "process"
    executor_workers: int | None = None
    request_timeout: float | None = 30.0
    stream_buffer: int = 8
    drain_timeout: float = 5.0
    auth: PluginSelection = field(default_factory=lambda: PluginSelection("none"))
    rate_limit: PluginSelection = field(
        default_factory=lambda: PluginSelection("none")
    )
    result_backend: PluginSelection = field(
        default_factory=lambda: PluginSelection("memory")
    )
    sessions: Mapping[str, SessionConfig] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise ServiceError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.stream_buffer < 1:
            raise ServiceError("stream_buffer must be >= 1")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ServiceConfig":
        """Validate and build a config from parsed JSON."""
        if not isinstance(raw, Mapping):
            raise ServiceError("service config must be a JSON object")
        unknown = set(raw) - _CONFIG_KEYS
        if unknown:
            raise ServiceError(f"unknown service config keys {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for key in ("host", "executor"):
            if key in raw:
                if not isinstance(raw[key], str):
                    raise ServiceError(f"config {key!r} must be a string")
                kwargs[key] = raw[key]
        for key in ("port", "stream_buffer"):
            if key in raw:
                value = raw[key]
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ServiceError(f"config {key!r} must be an integer")
                kwargs[key] = value
        if "executor_workers" in raw:
            value = raw["executor_workers"]
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ServiceError("config 'executor_workers' must be int or null")
            kwargs["executor_workers"] = value
        for key in ("request_timeout", "drain_timeout"):
            if key in raw:
                value = raw[key]
                if key == "request_timeout" and value is None:
                    kwargs[key] = None
                    continue
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ServiceError(f"config {key!r} must be a number")
                kwargs[key] = float(value)
        for key in ("auth", "rate_limit", "result_backend"):
            if key in raw:
                kwargs[key] = PluginSelection.from_raw(raw[key], f"config {key!r}")
        if "sessions" in raw:
            sessions_raw = raw["sessions"]
            if not isinstance(sessions_raw, Mapping):
                raise ServiceError("config 'sessions' must be an object")
            kwargs["sessions"] = {
                name: SessionConfig.from_raw(entry, f"session {name!r}")
                for name, entry in sessions_raw.items()
            }
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServiceConfig":
        """Load and validate a JSON config file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as err:
            raise ServiceError(f"cannot read config file {path}: {err}") from err
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as err:
            raise ServiceError(f"config file {path} is not valid JSON: {err}") from err
        return cls.from_dict(raw)
