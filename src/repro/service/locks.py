"""An asyncio readers-writer lock for per-session update serialisation.

Each service session holds one :class:`ReadWriteLock`: decision requests and
world streams take the *read* side (they may overlap freely — the
:class:`~repro.api.Database` facade's read surface is safe under concurrent
readers because all engine work happens on immutable snapshots), while
``update``/``batch`` take the *write* side, so an update never mutates the
facade while an in-flight read is consulting it.

The lock is writer-preferring: once a writer is waiting, new readers queue
behind it.  Updates are short (row-level diffs plus dependency-scoped cache
eviction) and reads can be long (an engine search), so without preference a
steady read stream could starve updates forever.  Deadlock-freedom: readers
never wait while holding the lock on anything a writer owns, writers hold
nothing while waiting, and the single-flight layer's followers only await a
future completed by a leader that holds a read lock of its own — no cycle.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Writer-preferring async readers-writer lock (single event loop)."""

    def __init__(self) -> None:
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._cond = asyncio.Condition()

    @property
    def readers(self) -> int:
        """How many readers currently hold the lock (introspection/tests)."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """Whether a writer currently holds the lock (introspection/tests)."""
        return self._writer_active

    @asynccontextmanager
    async def read_locked(self) -> AsyncIterator[None]:
        """Hold the shared (read) side for the duration of the block."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: not self._writer_active and self._writers_waiting == 0
            )
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def write_locked(self) -> AsyncIterator[None]:
        """Hold the exclusive (write) side for the duration of the block."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                await self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0
                )
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer_active = False
                self._cond.notify_all()
