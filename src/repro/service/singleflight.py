"""Single-flight deduplication of identical in-flight computations.

When N clients concurrently ask the same question about the same session,
exactly one of them (the *leader*) runs the engine search; the other N-1
(*followers*) await the leader's future and receive the same
:class:`~repro.decision.Decision`.  Decisions are frozen dataclasses, so
sharing one object across responses is safe.

The table only holds futures for computations that are *currently* running:
the leader removes its key (in a ``finally``) once the future is resolved,
so later arrivals start fresh — and find the result in the decision cache
instead, which is the correct steady state (cache hits are cheaper than
future plumbing and survive across time, not just across concurrency).
"""

from __future__ import annotations

import asyncio
from typing import Any, Hashable

__all__ = ["SingleFlight"]


class SingleFlight:
    """An in-flight computation table keyed by hashable request identities."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future[Any]] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def acquire(self, key: Hashable) -> tuple[bool, "asyncio.Future[Any]"]:
        """Join the flight for ``key``, creating it if absent.

        Returns ``(is_leader, future)``.  The leader must eventually resolve
        the future (``set_result``/``set_exception``) and call
        :meth:`release`; followers just await it.  Must be called from the
        event loop thread — the dict is loop-confined, no lock needed.
        """
        future = self._inflight.get(key)
        if future is not None:
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return True, future

    def release(self, key: Hashable) -> None:
        """Remove a completed flight (leader-side, idempotent)."""
        self._inflight.pop(key, None)
