"""Relation and database schemas.

A *database schema* ``R = (R1, ..., Rn)`` is a collection of relation schemas
(Section 2.1 of the paper).  Each relation schema is a named sequence of
attributes, and each attribute has a (finite or infinite) domain.

The classes here are immutable value objects: schemas can be shared freely
between instances, c-tables, queries and constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ArityError, SchemaError, UnknownRelationError
from repro.relational.domains import ANY, Constant, Domain


@dataclass(frozen=True)
class Attribute:
    """A named attribute with a domain.

    Attributes compare by name *and* domain; two relation schemas that use the
    same attribute name with different domains are therefore distinct.
    """

    name: str
    domain: Domain = ANY

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name!r}, {self.domain.name!r})"


def _as_attribute(spec: "Attribute | str | tuple[str, Domain]") -> Attribute:
    """Coerce user friendly attribute specifications into :class:`Attribute`."""
    if isinstance(spec, Attribute):
        return spec
    if isinstance(spec, str):
        return Attribute(spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        name, domain = spec
        return Attribute(name, domain)
    raise SchemaError(f"cannot interpret {spec!r} as an attribute")


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema: a name plus an ordered tuple of attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __init__(
        self,
        name: str,
        attributes: Sequence["Attribute | str | tuple[str, Domain]"],
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(_as_attribute(a) for a in attributes)
        if len(attrs) == 0:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        seen: set[str] = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(
                    f"relation {name!r} has duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the attributes, in order."""
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of the attribute with the given name.

        Raises
        ------
        SchemaError
            If no attribute with that name exists.
        """
        for i, attr in enumerate(self.attributes):
            if attr.name == attribute:
                return i
        raise SchemaError(f"relation {self.name!r} has no attribute {attribute!r}")

    def attribute(self, name: str) -> Attribute:
        """The attribute object with the given name."""
        return self.attributes[self.position_of(name)]

    def domain_of(self, attribute: str) -> Domain:
        """The domain of the named attribute."""
        return self.attribute(attribute).domain

    # ------------------------------------------------------------------
    # tuple validation
    # ------------------------------------------------------------------
    def validate_tuple(self, values: Sequence[Constant]) -> tuple[Constant, ...]:
        """Check arity and finite-domain membership of a candidate tuple.

        Returns the tuple as an immutable ``tuple``.
        """
        if len(values) != self.arity:
            raise ArityError(
                f"relation {self.name!r} expects arity {self.arity}, "
                f"got {len(values)} values"
            )
        for attr, value in zip(self.attributes, values):
            if attr.domain.is_finite and value not in attr.domain:
                raise SchemaError(
                    f"value {value!r} not in finite domain of "
                    f"{self.name}.{attr.name}"
                )
        return tuple(values)

    def rename(self, new_name: str) -> "RelationSchema":
        """A copy of this schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(self.attribute_names)
        return f"RelationSchema({self.name}({attrs}))"


class DatabaseSchema:
    """A database schema: an ordered mapping from relation names to schemas."""

    def __init__(self, relations: Iterable[RelationSchema]) -> None:
        ordered: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in ordered:
                raise SchemaError(f"duplicate relation {rel.name!r} in schema")
            ordered[rel.name] = rel
        if not ordered:
            raise SchemaError("a database schema must contain at least one relation")
        self._relations = ordered

    # ------------------------------------------------------------------
    # mapping-style access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"relation {name!r} is not part of the schema "
                f"({sorted(self._relations)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all relations, in declaration order."""
        return tuple(self._relations)

    def relations(self) -> Mapping[str, RelationSchema]:
        """Read-only view of the name → schema mapping."""
        return dict(self._relations)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def extend(self, *new_relations: RelationSchema) -> "DatabaseSchema":
        """A new schema with additional relations appended."""
        return DatabaseSchema(list(self._relations.values()) + list(new_relations))

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """A new schema containing only the named relations."""
        keep = list(names)
        return DatabaseSchema([self[name] for name in keep])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseSchema({', '.join(self.relation_names)})"


def schema(name: str, *attributes: "Attribute | str | tuple[str, Domain]") -> RelationSchema:
    """Shorthand constructor for a :class:`RelationSchema`.

    Examples
    --------
    >>> schema("R", "A", "B").arity
    2
    """
    return RelationSchema(name, attributes)


def database_schema(*relations: RelationSchema) -> DatabaseSchema:
    """Shorthand constructor for a :class:`DatabaseSchema`."""
    return DatabaseSchema(relations)
