"""Hash indexes over ground facts, keyed by bound-position signatures.

The delta constraint checker (:mod:`repro.search.propagation`) turns every
pushed tuple into a handful of conjunctive-query joins: the remaining atoms of
each constraint CQ must be matched against the facts grounded so far.  Before
this module those joins were linear scans over per-relation tuple sets; the
classes here replace them with hash lookups.

A :class:`FactIndex` materialises one *signature* of a relation: a pair
``(key_positions, out_positions)`` of column indexes.  For every stored row it
groups the projection onto ``out_positions`` under the projection onto
``key_positions``.  Looking up the current binding of an atom's bound columns
then yields exactly the candidate continuations, already projected onto the
columns the rest of the join can still use — columns carrying variables that
occur nowhere else in the query (and not in the head or comparisons) are
projected away entirely, which collapses duplicate continuations into one
bucket entry.  Because two distinct rows may project onto the same out-tuple,
buckets are *multisets* (out-tuple → multiplicity): removing one of the two
rows must not delete the shared continuation.

:class:`IndexedFactStore` is the mutable fact store used by
:class:`~repro.search.propagation.CheckerSession`.  It subclasses
``dict[str, set[Row]]`` so every existing consumer of the plain
``facts`` mapping keeps working unchanged, and adds:

* :meth:`IndexedFactStore.add_row` / :meth:`IndexedFactStore.discard_row` —
  the only mutators; they keep every built index in sync with the base sets,
  so index entries added on push are unwound exactly on pop.
* :meth:`IndexedFactStore.index` — lazily builds (then incrementally
  maintains) the :class:`FactIndex` for a signature.  Nothing is indexed
  until a join first asks for a signature, so non-indexed sessions pay only
  an empty-tuple lookup per mutation.
* attribute-value interning: equal constants pushed through the store are
  canonicalised to one representative object, so the hash of a hot value is
  computed against the same object identity in every bucket.

:class:`GroundInstance <repro.relational.instance.GroundInstance>` exposes the
same machinery for immutable instances via
:func:`instance_index`, caching built indexes per (instance, signature).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.relational.domains import Constant
from repro.relational.instance import GroundInstance, Row

#: A bound-position signature: column indexes the join has bindings for
#: (lookup key) and column indexes the join still needs (projected output).
Signature = tuple[tuple[int, ...], tuple[int, ...]]

_EMPTY_BUCKET: Mapping[Row, int] = {}


class FactIndex:
    """One hash index over one relation for one bound-position signature.

    ``buckets`` maps each key projection to the multiset of out projections
    of the rows sharing that key; ``entries`` counts distinct out-tuples
    across all buckets (used for selectivity estimates by the join planner).
    """

    __slots__ = ("key_positions", "out_positions", "buckets", "entries")

    def __init__(
        self,
        key_positions: tuple[int, ...],
        out_positions: tuple[int, ...],
        rows: Iterable[Row] = (),
    ) -> None:
        self.key_positions = key_positions
        self.out_positions = out_positions
        self.buckets: dict[Row, dict[Row, int]] = {}
        self.entries = 0
        for row in rows:
            self.add(row)

    def add(self, row: Row) -> None:
        """Register one stored row with the index."""
        key = tuple(row[p] for p in self.key_positions)
        out = tuple(row[p] for p in self.out_positions)
        bucket = self.buckets.setdefault(key, {})
        count = bucket.get(out, 0)
        if count == 0:
            self.entries += 1
        bucket[out] = count + 1

    def discard(self, row: Row) -> None:
        """Unregister one previously :meth:`add`-ed row."""
        key = tuple(row[p] for p in self.key_positions)
        out = tuple(row[p] for p in self.out_positions)
        bucket = self.buckets[key]
        count = bucket[out] - 1
        if count:
            bucket[out] = count
        else:
            del bucket[out]
            self.entries -= 1
            if not bucket:
                del self.buckets[key]

    def group(self, key: Row) -> Mapping[Row, int]:
        """The out-tuple multiset stored under ``key`` (empty if absent)."""
        return self.buckets.get(key, _EMPTY_BUCKET)

    def estimate(self) -> float:
        """Estimated bucket size: mean distinct out-tuples per key."""
        return self.entries / max(1, len(self.buckets))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactIndex(key={self.key_positions}, out={self.out_positions}, "
            f"{len(self.buckets)} buckets, {self.entries} entries)"
        )


class IndexedFactStore(dict[str, set[Row]]):
    """Mutable per-relation fact sets with lazily built hash indexes.

    The mapping interface is the plain ``{relation: set-of-rows}`` store the
    rest of the search stack already consumes; mutation must go through
    :meth:`add_row` / :meth:`discard_row` so the built indexes stay
    consistent with the base sets.
    """

    __slots__ = ("_indexes", "_relation_indexes", "_interned", "_intern_values")

    def __init__(
        self, relation_names: Iterable[str] = (), *, intern_values: bool = True
    ) -> None:
        super().__init__({name: set() for name in relation_names})
        # signature-keyed view plus a per-relation list for O(#indexes)
        # maintenance on the mutation path.
        self._indexes: dict[tuple[str, Signature], FactIndex] = {}
        self._relation_indexes: dict[str, list[FactIndex]] = {}
        self._interned: dict[Constant, Constant] = {}
        self._intern_values = intern_values

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern_row(self, row: Row) -> Row:
        """Canonicalise the attribute values of ``row`` to one object each."""
        if not self._intern_values:
            return row
        interned = self._interned
        return tuple(interned.setdefault(value, value) for value in row)

    # ------------------------------------------------------------------
    # mutation (the only writers; keep base sets and indexes in sync)
    # ------------------------------------------------------------------
    def add_row(self, relation: str, row: Row) -> tuple[Row, bool]:
        """Add ``row`` to ``relation``; return ``(stored row, was added)``.

        The returned row is the interned representative actually stored —
        callers should record *that* object (e.g. on an undo trail) so a
        later :meth:`discard_row` hits the same dictionary entries.
        """
        store = self.setdefault(relation, set())
        row = self.intern_row(row)
        if row in store:
            return row, False
        store.add(row)
        for index in self._relation_indexes.get(relation, ()):
            index.add(row)
        return row, True

    def discard_row(self, relation: str, row: Row) -> bool:
        """Remove a previously added row, unwinding its index entries.

        Returns whether the row was present (and therefore removed), so
        callers batching removals — the incremental-update path of
        :meth:`repro.api.Database.update` — can report exactly which drops
        took effect without a separate membership probe.
        """
        store = self.get(relation)
        if store is None or row not in store:
            return False
        store.discard(row)
        for index in self._relation_indexes.get(relation, ()):
            index.discard(row)
        return True

    # ------------------------------------------------------------------
    # index access
    # ------------------------------------------------------------------
    def index(self, relation: str, signature: Signature) -> FactIndex:
        """The :class:`FactIndex` for ``(relation, signature)``.

        Built lazily from the rows currently stored, then maintained
        incrementally by :meth:`add_row` / :meth:`discard_row`.
        """
        key = (relation, signature)
        index = self._indexes.get(key)
        if index is None:
            index = FactIndex(*signature, rows=self.get(relation, ()))
            self._indexes[key] = index
            self._relation_indexes.setdefault(relation, []).append(index)
        return index

    @property
    def built_indexes(self) -> int:
        """How many signatures have been materialised (observability)."""
        return len(self._indexes)


def instance_index(
    instance: GroundInstance, relation: str, signature: Signature
) -> FactIndex:
    """A lazily built, cached :class:`FactIndex` over a ground instance.

    Ground instances are immutable, so the index is built once per
    ``(instance, relation, signature)`` and cached on the instance itself;
    repeated lookups are dictionary hits.
    """
    cache = instance.fact_indexes()
    key = (relation, signature)
    index = cache.get(key)
    if index is None:
        index = FactIndex(*signature, rows=instance.relation(relation).rows)
        cache[key] = index
    return index
