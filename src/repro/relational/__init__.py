"""Relational substrate: domains, schemas, ground instances and master data.

This package implements the classical relational data model the paper builds
on (Section 2.1): attributes with finite or infinite domains, relation and
database schemas, ground instances (databases without missing values), master
data, and a small set-based relational algebra used by a few of the paper's
constructions.
"""

from repro.relational.domains import (
    ANY,
    BOOLEAN_DOMAIN,
    Constant,
    Domain,
    finite_domain,
    infinite_domain,
)
from repro.relational.indexing import (
    FactIndex,
    IndexedFactStore,
    Signature,
    instance_index,
)
from repro.relational.instance import (
    GroundInstance,
    Relation,
    Row,
    empty_instance,
    instance,
)
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    database_schema,
    schema,
)

__all__ = [
    "ANY",
    "BOOLEAN_DOMAIN",
    "Attribute",
    "Constant",
    "DatabaseSchema",
    "Domain",
    "FactIndex",
    "GroundInstance",
    "IndexedFactStore",
    "MasterData",
    "Relation",
    "RelationSchema",
    "Row",
    "Signature",
    "database_schema",
    "empty_instance",
    "empty_master",
    "finite_domain",
    "infinite_domain",
    "instance",
    "instance_index",
    "schema",
]
