"""Set-based relational algebra over :class:`~repro.relational.instance.Relation`.

The query evaluators (``repro.queries.evaluation``) are written directly over
homomorphism enumeration, but several parts of the paper — the SPC normal form
argument in the appendix proof of Theorem 5.4, the encoding ``f_D`` of
Lemma 3.2, the well-formedness queries of Lemma 4.6 — are phrased in terms of
classical algebra operators.  This module provides those operators so that the
corresponding constructions can be written exactly as in the paper.

All operators are pure functions returning new :class:`Relation` objects.
Selection predicates are either callables on rows or simple equality
conditions expressed as ``(attribute, value)`` / ``(attribute, attribute)``
pairs, which covers every use in the paper.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.exceptions import SchemaError
from repro.relational.domains import Constant
from repro.relational.instance import Relation, Row
from repro.relational.schema import Attribute, RelationSchema


RowPredicate = Callable[[Row], bool]


def select(relation: Relation, predicate: RowPredicate) -> Relation:
    """``σ_predicate(relation)`` with an arbitrary row predicate."""
    return Relation(relation.schema, (row for row in relation.rows if predicate(row)))


def select_eq(relation: Relation, attribute: str, value: Constant) -> Relation:
    """``σ_{A = c}(relation)``."""
    pos = relation.schema.position_of(attribute)
    return select(relation, lambda row: row[pos] == value)


def select_neq(relation: Relation, attribute: str, value: Constant) -> Relation:
    """``σ_{A ≠ c}(relation)``."""
    pos = relation.schema.position_of(attribute)
    return select(relation, lambda row: row[pos] != value)


def select_attr_eq(relation: Relation, left: str, right: str) -> Relation:
    """``σ_{A = B}(relation)`` comparing two attributes of the same relation."""
    lpos = relation.schema.position_of(left)
    rpos = relation.schema.position_of(right)
    return select(relation, lambda row: row[lpos] == row[rpos])


def select_attr_neq(relation: Relation, left: str, right: str) -> Relation:
    """``σ_{A ≠ B}(relation)`` comparing two attributes of the same relation."""
    lpos = relation.schema.position_of(left)
    rpos = relation.schema.position_of(right)
    return select(relation, lambda row: row[lpos] != row[rpos])


def project(
    relation: Relation, attributes: Sequence[str], name: str | None = None
) -> Relation:
    """``π_{attributes}(relation)`` (set semantics, duplicates removed)."""
    positions = [relation.schema.position_of(a) for a in attributes]
    new_attrs = [relation.schema.attributes[p] for p in positions]
    new_schema = RelationSchema(name or relation.name, new_attrs)
    rows = {tuple(row[p] for p in positions) for row in relation.rows}
    return Relation(new_schema, rows)


def rename(relation: Relation, new_name: str, new_attributes: Sequence[str] | None = None) -> Relation:
    """``ρ`` — rename the relation and optionally its attributes."""
    if new_attributes is None:
        new_schema = relation.schema.rename(new_name)
    else:
        if len(new_attributes) != relation.arity:
            raise SchemaError("rename must preserve arity")
        new_schema = RelationSchema(
            new_name,
            [
                Attribute(new_attr, old.domain)
                for new_attr, old in zip(new_attributes, relation.schema.attributes)
            ],
        )
    return Relation(new_schema, relation.rows)


def product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """Cartesian product ``left × right``.

    Attribute names are qualified with the source relation name when the two
    operands share attribute names.
    """
    left_names = set(left.schema.attribute_names)
    attrs: list[Attribute] = []
    for attr in left.schema.attributes:
        attrs.append(attr)
    for attr in right.schema.attributes:
        if attr.name in left_names:
            attrs.append(Attribute(f"{right.name}.{attr.name}", attr.domain))
        else:
            attrs.append(attr)
    new_schema = RelationSchema(name, attrs)
    rows = [lhs + rhs for lhs in left.rows for rhs in right.rows]
    return Relation(new_schema, rows)


def union(left: Relation, right: Relation) -> Relation:
    """Set union (operands must share a schema up to relation name)."""
    _require_compatible(left, right)
    return Relation(left.schema, left.rows | right.rows)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference (operands must share a schema up to relation name)."""
    _require_compatible(left, right)
    return Relation(left.schema, left.rows - right.rows)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection (operands must share a schema up to relation name)."""
    _require_compatible(left, right)
    return Relation(left.schema, left.rows & right.rows)


def natural_join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """Natural join on shared attribute names."""
    shared = [a for a in left.schema.attribute_names if a in right.schema.attribute_names]
    left_pos = {a: left.schema.position_of(a) for a in shared}
    right_pos = {a: right.schema.position_of(a) for a in shared}
    right_keep = [
        i
        for i, attr in enumerate(right.schema.attributes)
        if attr.name not in shared
    ]
    attrs = list(left.schema.attributes) + [right.schema.attributes[i] for i in right_keep]
    new_schema = RelationSchema(name, attrs)
    rows = []
    for lhs in left.rows:
        for rhs in right.rows:
            if all(lhs[left_pos[a]] == rhs[right_pos[a]] for a in shared):
                rows.append(lhs + tuple(rhs[i] for i in right_keep))
    return Relation(new_schema, rows)


def _require_compatible(left: Relation, right: Relation) -> None:
    if left.arity != right.arity:
        raise SchemaError("set operation on relations of different arity")
    for a, b in zip(left.schema.attributes, right.schema.attributes):
        if a.domain != b.domain:
            raise SchemaError(
                f"set operation on incompatible attribute domains {a.name}/{b.name}"
            )


def from_rows(
    name: str, attributes: Sequence[str], rows: Iterable[Sequence[Constant]]
) -> Relation:
    """Build a relation from raw attribute names and rows (infinite domains)."""
    return Relation(RelationSchema(name, attributes), rows)
