"""Ground relations and ground database instances.

A *ground instance* ``I = (I1, ..., In)`` of a database schema assigns to each
relation schema a finite set of tuples whose components are constants
(Section 2.1).  Ground instances are the possible worlds represented by
c-instances and the objects over which queries are evaluated.

Both :class:`Relation` and :class:`GroundInstance` are immutable: all update
operations return new objects.  This makes them safe to use as members of
sets (e.g. when enumerating ``Mod(T, D_m, V)``) and as dictionary keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.domains import Constant
from repro.relational.schema import DatabaseSchema, RelationSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.relational.indexing import FactIndex, Signature

#: A database tuple is an ordinary Python tuple of constants.
Row = tuple[Constant, ...]


class Relation:
    """A finite set of tuples conforming to a relation schema."""

    __slots__ = ("_schema", "_rows")

    def __init__(
        self, schema: RelationSchema, rows: Iterable[Sequence[Constant]] = ()
    ) -> None:
        validated = frozenset(schema.validate_tuple(row) for row in rows)
        self._schema = schema
        self._rows = validated

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation schema this relation conforms to."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def rows(self) -> frozenset[Row]:
        """The tuples of the relation as a frozenset."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self._schema.arity

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=repr))

    def __contains__(self, row: Sequence[Constant]) -> bool:
        return tuple(row) in self._rows

    def is_empty(self) -> bool:
        """Whether the relation has no tuples."""
        return not self._rows

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def add(self, *rows: Sequence[Constant]) -> "Relation":
        """A new relation with the given tuples added."""
        return Relation(self._schema, list(self._rows) + [tuple(r) for r in rows])

    def remove(self, *rows: Sequence[Constant]) -> "Relation":
        """A new relation with the given tuples removed (missing rows ignored)."""
        drop = {tuple(r) for r in rows}
        return Relation(self._schema, (r for r in self._rows if r not in drop))

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same schema."""
        self._require_same_schema(other)
        return Relation(self._schema, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same schema."""
        self._require_same_schema(other)
        return Relation(self._schema, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two relations over the same schema."""
        self._require_same_schema(other)
        return Relation(self._schema, self._rows & other._rows)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def issubset(self, other: "Relation") -> bool:
        """Whether every tuple of this relation also occurs in ``other``."""
        self._require_same_schema(other)
        return self._rows <= other._rows

    def is_proper_subset(self, other: "Relation") -> bool:
        """Whether this relation is a strict subset of ``other``."""
        self._require_same_schema(other)
        return self._rows < other._rows

    def constants(self) -> frozenset[Constant]:
        """All constants occurring in the relation."""
        return frozenset(value for row in self._rows for value in row)

    def _require_same_schema(self, other: "Relation") -> None:
        if self._schema != other._schema:
            raise SchemaError(
                f"relations {self.name!r} and {other.name!r} have different schemas"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}, {len(self._rows)} rows)"


class GroundInstance:
    """A ground instance of a database schema (one relation per schema)."""

    __slots__ = ("_schema", "_relations", "_fact_indexes")

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Iterable[Sequence[Constant]]] | None = None,
    ) -> None:
        relations = relations or {}
        for name in relations:
            if name not in schema:
                raise UnknownRelationError(
                    f"instance mentions relation {name!r} not in the schema"
                )
        built: dict[str, Relation] = {}
        for rel_schema in schema:
            rows = relations.get(rel_schema.name, ())
            if isinstance(rows, Relation):
                if rows.schema != rel_schema:
                    raise SchemaError(
                        f"relation object for {rel_schema.name!r} has a different schema"
                    )
                built[rel_schema.name] = rows
            else:
                built[rel_schema.name] = Relation(rel_schema, rows)
        self._schema = schema
        self._relations = built
        # Lazily populated by repro.relational.indexing.instance_index();
        # pure cache, deliberately excluded from __eq__/__hash__.
        self._fact_indexes: dict[tuple[str, "Signature"], "FactIndex"] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def fact_indexes(self) -> dict[tuple[str, "Signature"], "FactIndex"]:
        """Per-instance cache of lazily built hash indexes.

        Use :func:`repro.relational.indexing.instance_index` to populate it;
        the instance itself stays immutable — the cache only memoises
        derived lookup structures.
        """
        return self._fact_indexes

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema of the instance."""
        return self._schema

    def relation(self, name: str) -> Relation:
        """The relation stored under ``name``."""
        if name not in self._relations:
            raise UnknownRelationError(f"no relation {name!r} in this instance")
        return self._relations[name]

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def relations(self) -> Mapping[str, Relation]:
        """Read-only view of the name → relation mapping."""
        return dict(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def size(self) -> int:
        """Total number of tuples across all relations (``|I|`` in the paper)."""
        return sum(len(rel) for rel in self._relations.values())

    def is_empty(self) -> bool:
        """Whether every relation is empty."""
        return self.size == 0

    def constants(self) -> frozenset[Constant]:
        """All constants occurring anywhere in the instance."""
        result: set[Constant] = set()
        for rel in self._relations.values():
            result |= rel.constants()
        return frozenset(result)

    def tuples(self) -> Iterator[tuple[str, Row]]:
        """Iterate over ``(relation name, tuple)`` pairs of the instance."""
        for name in self._schema.relation_names:
            for row in self._relations[name]:
                yield name, row

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_tuple(self, relation: str, row: Sequence[Constant]) -> "GroundInstance":
        """A new instance with one tuple added to the named relation."""
        return self.with_tuples({relation: [row]})

    def with_tuples(
        self, additions: Mapping[str, Iterable[Sequence[Constant]]]
    ) -> "GroundInstance":
        """A new instance with tuples added to several relations."""
        updated: dict[str, Iterable[Sequence[Constant]]] = {}
        for name, rel in self._relations.items():
            extra = list(additions.get(name, ()))
            updated[name] = list(rel.rows) + [tuple(r) for r in extra]
        for name in additions:
            if name not in self._relations:
                raise UnknownRelationError(
                    f"cannot add tuples to unknown relation {name!r}"
                )
        return GroundInstance(self._schema, updated)

    def without_tuple(self, relation: str, row: Sequence[Constant]) -> "GroundInstance":
        """A new instance with one tuple removed from the named relation."""
        updated = {name: list(rel.rows) for name, rel in self._relations.items()}
        target = tuple(row)
        updated[relation] = [r for r in updated[relation] if r != target]
        return GroundInstance(self._schema, updated)

    def union(self, other: "GroundInstance") -> "GroundInstance":
        """Relation-wise union of two instances over the same schema."""
        self._require_same_schema(other)
        merged = {
            name: list(rel.rows) + list(other._relations[name].rows)
            for name, rel in self._relations.items()
        }
        return GroundInstance(self._schema, merged)

    def tuple_delta(
        self, other: "GroundInstance"
    ) -> tuple[frozenset[tuple[str, Row]], frozenset[tuple[str, Row]]]:
        """``(added, removed)`` relative to ``other``, as (relation, row) pairs.

        The set-level diff the incremental-update machinery works in: the
        first component holds the pairs present here but not in ``other``,
        the second the pairs present in ``other`` but not here.  Used to
        translate an instance-level update into guard flips for the live SAT
        session and push/retract calls on the baseline checker session.
        """
        self._require_same_schema(other)
        added: set[tuple[str, Row]] = set()
        removed: set[tuple[str, Row]] = set()
        for name, rel in self._relations.items():
            theirs = other._relations[name].rows
            added.update((name, row) for row in rel.rows - theirs)
            removed.update((name, row) for row in theirs - rel.rows)
        return frozenset(added), frozenset(removed)

    # ------------------------------------------------------------------
    # comparisons (the ``(`` relation of the paper)
    # ------------------------------------------------------------------
    def issubset(self, other: "GroundInstance") -> bool:
        """Whether each relation of this instance is contained in ``other``'s."""
        self._require_same_schema(other)
        return all(
            rel.issubset(other._relations[name])
            for name, rel in self._relations.items()
        )

    def extends(self, other: "GroundInstance") -> bool:
        """Whether this instance *strictly* extends ``other`` (``other ( self``).

        This is the extension order of Section 2.1: component-wise containment
        with at least one strict containment.
        """
        return other.issubset(self) and other != self

    def proper_subinstances(self) -> Iterator["GroundInstance"]:
        """All instances obtained by removing exactly one tuple."""
        for name, row in self.tuples():
            yield self.without_tuple(name, row)

    def _require_same_schema(self, other: "GroundInstance") -> None:
        if self._schema != other._schema:
            raise SchemaError("ground instances are over different schemas")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroundInstance):
            return NotImplemented
        return self._schema == other._schema and self._relations == other._relations

    def __hash__(self) -> int:
        per_relation = sorted(
            ((name, rel.rows) for name, rel in self._relations.items()),
            key=lambda item: item[0],
        )
        return hash((self._schema, tuple(per_relation)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in self._relations.items()
        )
        return f"GroundInstance({parts})"


def empty_instance(schema: DatabaseSchema) -> GroundInstance:
    """The instance with all relations empty (``I_∅`` in the paper's proofs)."""
    return GroundInstance(schema, {})


def instance(
    schema: DatabaseSchema, **relations: Iterable[Sequence[Constant]]
) -> GroundInstance:
    """Keyword-argument convenience constructor for ground instances.

    Examples
    --------
    >>> from repro.relational.schema import schema as rel_schema, database_schema
    >>> db = database_schema(rel_schema("R", "A", "B"))
    >>> instance(db, R=[(1, 2)]).size
    1
    """
    return GroundInstance(schema, relations)
