"""Attribute domains.

The paper distinguishes attributes with *finite* domains (whose values all
enter the active domain ``Adom`` used by the decision procedures, Section 3)
from attributes with *infinite* domains (whose values are only ever touched
through the constants that actually occur in the input plus finitely many
fresh constants).  :class:`Domain` captures both cases.

A domain is identified by its name.  Two convenience constructors cover the
common cases:

* :func:`infinite_domain` — a countably infinite domain of which we only ever
  enumerate the finitely many constants mentioned by an input; and
* :func:`finite_domain` — an explicitly enumerated finite domain (e.g. the
  Boolean domain ``{0, 1}`` used by the gadget relations of Figure 2).

Constants themselves are ordinary hashable Python values (strings, integers,
...); the library never requires a dedicated constant wrapper type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from repro.exceptions import DomainError

#: Type alias for constants stored in relations.  Any hashable value works;
#: strings and integers are what the examples and tests use.
Constant = Hashable


@dataclass(frozen=True)
class Domain:
    """The domain of an attribute.

    Parameters
    ----------
    name:
        Human readable name of the domain (``"string"``, ``"bool"``, ...).
    values:
        ``None`` for an infinite domain; otherwise the frozenset of admissible
        constants.

    Notes
    -----
    Infinite domains are *symbolic*: membership checks accept every constant,
    and the decision procedures materialise only the constants required by the
    ``Adom`` construction of the paper (Proposition 3.3).
    """

    name: str
    values: frozenset[Constant] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.values is not None and len(self.values) == 0:
            raise DomainError(f"finite domain {self.name!r} must not be empty")

    @property
    def is_finite(self) -> bool:
        """Whether the domain is an explicitly enumerated finite set."""
        return self.values is not None

    @property
    def is_infinite(self) -> bool:
        """Whether the domain is (countably) infinite."""
        return self.values is None

    def __contains__(self, value: Constant) -> bool:
        if self.values is None:
            return True
        return value in self.values

    def __iter__(self) -> Iterator[Constant]:
        """Iterate over the values of a finite domain.

        Raises
        ------
        DomainError
            If the domain is infinite.
        """
        if self.values is None:
            raise DomainError(
                f"cannot enumerate infinite domain {self.name!r}; "
                "use the Adom construction instead"
            )
        return iter(sorted(self.values, key=repr))

    def __len__(self) -> int:
        if self.values is None:
            raise DomainError(f"infinite domain {self.name!r} has no size")
        return len(self.values)

    def check(self, value: Constant) -> None:
        """Raise :class:`DomainError` unless ``value`` belongs to the domain."""
        if value not in self:
            raise DomainError(
                f"value {value!r} is not in finite domain {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.values is None:
            return f"Domain({self.name!r}, infinite)"
        return f"Domain({self.name!r}, {sorted(self.values, key=repr)!r})"


def infinite_domain(name: str = "value") -> Domain:
    """Create a symbolic, countably infinite domain."""
    return Domain(name=name, values=None)


def finite_domain(name: str, values: Iterable[Constant]) -> Domain:
    """Create a finite domain with the given values."""
    return Domain(name=name, values=frozenset(values))


#: The Boolean domain ``{0, 1}`` used throughout the paper's reductions.
BOOLEAN_DOMAIN = finite_domain("bool", (0, 1))

#: A generic infinite domain shared by attributes that do not care.
ANY = infinite_domain("any")
