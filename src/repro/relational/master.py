"""Master data.

Master data ``D_m`` (Section 2.1) is a ground instance of a master schema
``R_m``.  It is assumed consistent and closed-world: it provides an *upper
bound* on the information a partially closed database may contain about the
aspects of the enterprise it covers.

:class:`MasterData` is a thin wrapper around :class:`GroundInstance` that
exists mainly to make signatures of the decision procedures self-documenting
(``(T, Q, Dm, V)`` throughout the paper) and to host a couple of master-data
specific helpers (e.g. the canonical "empty master relation" used to encode
denial constraints and functional dependencies as containment constraints,
Example 2.1).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.relational.domains import Constant, Domain
from repro.relational.instance import GroundInstance, Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


class MasterData:
    """Master data: a consistent, closed-world ground instance."""

    __slots__ = ("_instance",)

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Iterable[Sequence[Constant]]] | None = None,
    ) -> None:
        self._instance = GroundInstance(schema, relations)

    @classmethod
    def from_instance(cls, instance: GroundInstance) -> "MasterData":
        """Wrap an existing ground instance as master data."""
        md = cls.__new__(cls)
        md._instance = instance
        return md

    # ------------------------------------------------------------------
    # delegation to the underlying ground instance
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        """The master schema ``R_m``."""
        return self._instance.schema

    @property
    def instance(self) -> GroundInstance:
        """The underlying ground instance."""
        return self._instance

    def relation(self, name: str) -> Relation:
        """The master relation stored under ``name``."""
        return self._instance.relation(name)

    def __getitem__(self, name: str) -> Relation:
        return self._instance[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instance.schema

    @property
    def size(self) -> int:
        """Total number of master tuples."""
        return self._instance.size

    def constants(self) -> frozenset[Constant]:
        """All constants occurring in the master data."""
        return self._instance.constants()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MasterData):
            return NotImplemented
        return self._instance == other._instance

    def __hash__(self) -> int:
        return hash(("MasterData", self._instance))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MasterData({self._instance!r})"


def empty_master(schema: DatabaseSchema) -> MasterData:
    """Master data with every master relation empty.

    Several lower-bound constructions in the paper (Proposition 3.1,
    Theorem 4.5) use empty master data; the encodings of FDs and denial
    constraints as CCs (Example 2.1) use an empty master relation ``D_∅`` as
    the right-hand side of the constraint.
    """
    return MasterData(schema, {})


def master_relation_schema(
    name: str, *attributes: "Attribute | str | tuple[str, Domain]"
) -> RelationSchema:
    """Convenience alias for building master relation schemas."""
    return RelationSchema(name, attributes)
