"""Canonical request fingerprints: JSON round-trip and key-order stability.

The single-flight key dedups *identical wire requests*, so the fingerprint
must be a pure function of the JSON value — invariant under key order,
whitespace, and a serialise/parse round-trip (hypothesis-driven), and it
must reject anything JSON cannot carry faithfully (NaN, infinities,
non-JSON objects) rather than hash their reprs.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ServiceError
from repro.service.fingerprint import canonical_fingerprint, canonical_json

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=150, deadline=None)
@given(json_values)
def test_fingerprint_stable_under_json_round_trip(value):
    round_tripped = json.loads(json.dumps(value))
    assert canonical_fingerprint(value) == canonical_fingerprint(round_tripped)


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(st.text(max_size=8), json_values, min_size=2, max_size=6),
    st.randoms(use_true_random=False),
)
def test_fingerprint_stable_under_key_order(mapping, rng):
    items = list(mapping.items())
    rng.shuffle(items)
    assert canonical_fingerprint(dict(items)) == canonical_fingerprint(mapping)


def test_canonical_json_is_deterministic_text():
    value = {"b": [1, 2], "a": {"y": None, "x": True}}
    assert canonical_json(value) == canonical_json({"a": {"x": True, "y": None}, "b": [1, 2]})
    assert canonical_json(value) == '{"a":{"x":true,"y":null},"b":[1,2]}'


def test_non_string_keys_match_json_coercion():
    """``json.dumps`` coerces scalar keys to strings; the fingerprint agrees."""
    value = {1: "a", True and 2: "b", None: "c"}
    round_tripped = json.loads(json.dumps(value))
    assert canonical_fingerprint(value) == canonical_fingerprint(round_tripped)


def test_distinct_values_fingerprint_differently():
    assert canonical_fingerprint({"a": 1}) != canonical_fingerprint({"a": 2})
    assert canonical_fingerprint([1, 2]) != canonical_fingerprint([2, 1])


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), {"x": object()}, {1, 2}])
def test_unrepresentable_values_are_rejected(bad):
    with pytest.raises(ServiceError):
        canonical_fingerprint(bad)
