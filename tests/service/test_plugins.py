"""The service-plugin registry and the built-in plugin implementations."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.service.plugins import (
    MemoryResultBackend,
    NullResultBackend,
    SessionSpec,
    TokenAuth,
    WindowRateLimiter,
    get_service_plugin,
    register_service_plugin,
    service_plugin_names,
)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
def test_builtins_are_registered():
    assert set(service_plugin_names("workload")) >= {"registry", "patients"}
    assert set(service_plugin_names("auth")) >= {"none", "token"}
    assert set(service_plugin_names("rate_limit")) >= {"none", "window"}
    assert set(service_plugin_names("result_backend")) >= {"memory", "null"}


def test_duplicate_registration_requires_replace():
    register_service_plugin("auth", "test-dup", TokenAuth)
    try:
        with pytest.raises(ServiceError, match="already registered"):
            register_service_plugin("auth", "test-dup", TokenAuth)
        register_service_plugin("auth", "test-dup", TokenAuth, replace=True)
    finally:
        # The registry has no unregister; replacing with a built-in keeps the
        # namespace clean enough for one test process.
        register_service_plugin("auth", "test-dup", TokenAuth, replace=True)


def test_unknown_kind_and_name_raise():
    with pytest.raises(ServiceError, match="unknown plugin kind"):
        register_service_plugin("nonsense", "x", TokenAuth)
    with pytest.raises(ServiceError):
        get_service_plugin("auth", "no-such-auth")
    with pytest.raises(ServiceError):
        get_service_plugin("nonsense", "x")


# ---------------------------------------------------------------------------
# workload factories
# ---------------------------------------------------------------------------
def test_registry_workload_builds_session_spec():
    factory = get_service_plugin("workload", "registry")
    spec = factory(master_size=3, variable_count=1)
    assert isinstance(spec, SessionSpec)
    assert set(spec.queries) == {"point", "full", "union"}
    assert spec.constraints


def test_patients_workload_builds_session_spec():
    factory = get_service_plugin("workload", "patients")
    spec = factory()
    assert isinstance(spec, SessionSpec)
    assert {"q1", "q2_present", "q2_absent", "q3", "q4"} <= set(spec.queries)


def test_bad_workload_params_are_service_errors():
    factory = get_service_plugin("workload", "registry")
    with pytest.raises(ServiceError, match="params"):
        factory(no_such_parameter=7)


# ---------------------------------------------------------------------------
# auth
# ---------------------------------------------------------------------------
def test_token_auth_accepts_bearer_and_header():
    auth = TokenAuth("s3cret")
    assert auth.authorize({"authorization": "Bearer s3cret"})
    assert auth.authorize({"x-repro-token": "s3cret"})
    assert not auth.authorize({"authorization": "Bearer wrong"})
    assert not auth.authorize({})


def test_token_auth_requires_token():
    with pytest.raises(ServiceError):
        TokenAuth("")


# ---------------------------------------------------------------------------
# rate limiting
# ---------------------------------------------------------------------------
def test_window_rate_limiter_with_fake_clock():
    now = [0.0]
    limiter = WindowRateLimiter(max_requests=2, window_seconds=1.0, clock=lambda: now[0])
    assert limiter.allow("s")
    assert limiter.allow("s")
    assert not limiter.allow("s")
    assert limiter.allow("other")  # sessions are independent
    now[0] = 1.5  # the window slides past the first two events
    assert limiter.allow("s")


def test_window_rate_limiter_validates_params():
    with pytest.raises(ServiceError):
        WindowRateLimiter(max_requests=0)
    with pytest.raises(ServiceError):
        WindowRateLimiter(window_seconds=0)


# ---------------------------------------------------------------------------
# result backends
# ---------------------------------------------------------------------------
def test_memory_backend_is_a_bounded_ring():
    backend = MemoryResultBackend(capacity=2)
    for i in range(4):
        backend.record("s", {"i": i})
    assert [r["i"] for r in backend.recent("s")] == [2, 3]
    assert backend.recent("unknown") == []


def test_null_backend_discards():
    backend = NullResultBackend()
    backend.record("s", {"i": 1})
    assert backend.recent("s") == []
