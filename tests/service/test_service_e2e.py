"""End-to-end service tests over real sockets (:class:`ServiceThread`).

These assert the PR's acceptance gates at the wire level:

* N identical concurrent requests → exactly one engine search
  (``metrics.engine_runs``), the rest deduplicated or cache hits;
* an update invalidates exactly the dependency-scoped cache entries
  (consistency recomputes, RCQP survives) — observed via wire-level
  ``cache_hit`` / ``Decision.stats``;
* streaming yields the first world while enumeration is still running,
  and a client disconnect cancels the server-side engine search;
* auth / rate-limit / timeout plugins respond 401 / 429 / 504;
* graceful shutdown drains in-flight requests before exiting.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.search.registry import (
    EngineCapabilities,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.service import (
    PluginSelection,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)


def make_service(**overrides) -> ServiceThread:
    overrides.setdefault("port", 0)
    overrides.setdefault("executor", "inline")
    overrides.setdefault("request_timeout", None)
    return ServiceThread(ServiceConfig(**overrides))


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# surface basics
# ---------------------------------------------------------------------------
def test_health_engines_and_session_crud():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        assert client.healthz() == {"ok": True, "status": "ok"}
        engines = {e["name"]: e["capabilities"] for e in client.engines()}
        assert {"propagating", "sat", "parallel", "naive"} <= set(engines)
        assert engines["parallel"]["supports_cancellation"] is True

        assert client.sessions() == []
        info = client.create_session("demo", "patients")
        assert info["name"] == "demo"
        assert info["relations"] == {"MVisit": 2}
        assert client.sessions() == ["demo"]
        assert client.session("demo")["version"] == 0
        with pytest.raises(ServiceError) as err:
            client.create_session("demo", "patients")
        assert err.value.status == 409
        client.drop_session("demo")
        assert client.sessions() == []
        with pytest.raises(ServiceError) as err:
            client.session("demo")
        assert err.value.status == 404


def test_preconfigured_sessions_and_every_problem():
    config_sessions = {
        "demo": __import__(
            "repro.service.config", fromlist=["SessionConfig"]
        ).SessionConfig("patients")
    }
    with make_service(sessions=config_sessions) as svc:
        client = ServiceClient(svc.base_url)
        assert client.sessions() == ["demo"]
        consistency = client.decide("demo", "consistency")
        assert consistency["result"]["holds"] is True
        assert consistency["result"]["stats"]["searches"] >= 1
        count = client.decide("demo", "count")
        assert count["result"]["value"] >= 1
        for problem, extra in (
            ("complete", {"query": "q1", "model": "strong"}),
            ("minp", {"query": "q1"}),
            ("rcqp", {"query": "q1", "max_size": 2}),
        ):
            envelope = client.decide("demo", problem, **extra)
            assert envelope["ok"] is True
            assert "stats" in envelope["result"]
        for problem, extra in (
            ("certain", {"query": "q1"}),
            ("certain_answers_over_extensions", {"query": "q1", "limit": 2000}),
        ):
            envelope = client.decide("demo", problem, **extra)
            assert envelope["result"]["kind"] == "answers"
            assert ["John"] in envelope["result"]["answers"]


def test_unknown_routes_and_methods():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/nonsense")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.request("DELETE", "/sessions")
        assert err.value.status == 405
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/sessions", {"name": "x"})
        assert err.value.status == 400


# ---------------------------------------------------------------------------
# gate: single-flight collapse
# ---------------------------------------------------------------------------
def test_identical_concurrent_requests_run_one_engine_search():
    with make_service(executor="thread") as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        n = 8
        envelopes = [None] * n
        barrier = threading.Barrier(n)

        def fire(i):
            barrier.wait()
            envelopes[i] = ServiceClient(svc.base_url).decide(
                "demo", "complete", query="q1", model="strong"
            )

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        metrics = client.metrics()
        assert metrics["engine_runs"] == 1  # the gate
        assert len({e["result"]["holds"] for e in envelopes}) == 1
        # Everyone besides the leader either joined the flight or hit the
        # cache the leader populated.
        followers = sum(1 for e in envelopes if e["deduplicated"])
        cached = sum(1 for e in envelopes if e["cache_hit"])
        assert followers + cached == n - 1
        assert metrics["singleflight_followers"] == followers
        # The leader's Decision object fans out: followers carry real stats.
        for e in envelopes:
            if e["deduplicated"]:
                assert e["result"]["stats"]["searches"] >= 1


def test_repeat_requests_hit_the_cache():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        cold = client.decide("demo", "consistency")
        assert cold["cache_hit"] is False
        assert cold["result"]["stats"]["cache_hit"] is False
        warm = client.decide("demo", "consistency")
        assert warm["cache_hit"] is True
        assert warm["result"]["stats"]["cache_hit"] is True
        assert client.metrics()["cache_hits"] == 1


# ---------------------------------------------------------------------------
# gate: dependency-scoped invalidation, observed over the wire
# ---------------------------------------------------------------------------
def test_update_invalidates_scoped_entries_rcqp_survives():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        client.decide("demo", "consistency")
        client.decide("demo", "rcqp", query="q1", max_size=2)
        update = client.update(
            "demo", add_rows={"MVisit": [["915-15-400", "Ann", "EDI", 2001]]}
        )
        assert update["update"]["touched"] == ["MVisit"]
        assert update["update"]["invalidated"] >= 1
        assert client.session("demo")["version"] == 1
        after_consistency = client.decide("demo", "consistency")
        assert after_consistency["cache_hit"] is False  # invalidated
        after_rcqp = client.decide("demo", "rcqp", query="q1", max_size=2)
        assert after_rcqp["cache_hit"] is True  # survived (empty dep set)


def test_batch_conflict_is_409_over_the_wire():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        client.create_session(
            "reg", "registry", params={"master_size": 3, "db_rows": 2}
        )
        with pytest.raises(ServiceError) as err:
            client.batch(
                "reg", [{"add_rows": {"Record": [["k0", "v-off-registry"]]}}]
            )
        assert err.value.status == 409
        assert client.session("reg")["version"] == 0


# ---------------------------------------------------------------------------
# gate: streaming
# ---------------------------------------------------------------------------
def test_stream_yields_first_world_before_enumeration_completes():
    with make_service(stream_buffer=1) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session(
            "big", "wide", params={"rows": 3, "values_per_key": 4}
        )
        total = client.decide("big", "count")["result"]["value"]
        assert total > 4
        stream = client.stream_worlds("big")
        iterator = iter(stream)
        first = next(iterator)
        assert first  # a non-empty world arrived...
        metrics = client.metrics()
        # ...while the enumeration is still in flight server-side: with a
        # buffer of 1, at most a few worlds have been produced so far.
        assert metrics["streams_completed"] == 0
        assert metrics["worlds_streamed"] < total
        remaining = list(iterator)
        assert 1 + len(remaining) == total
        assert stream.summary == {"kind": "summary", "worlds": total}
        assert wait_for(lambda: client.metrics()["streams_completed"] == 1)


def test_stream_limit_and_engine_selection():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        worlds = list(client.stream_worlds("demo", limit=2, engine="sat"))
        assert len(worlds) == 2
        with pytest.raises(ServiceError) as err:
            list(client.stream_worlds("demo", engine="warp-drive"))
        assert err.value.status == 400


def test_client_disconnect_cancels_the_stream():
    with make_service(stream_buffer=1) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session(
            "big", "wide", params={"rows": 4, "values_per_key": 4}
        )
        total = client.decide("big", "count")["result"]["value"]
        stream = client.stream_worlds("big")
        first = next(iter(stream))
        assert first
        stream.close()  # hang up mid-stream
        assert wait_for(lambda: client.metrics()["streams_cancelled"] == 1)
        metrics = client.metrics()
        assert metrics["streams_completed"] == 0
        assert metrics["worlds_streamed"] < total


# ---------------------------------------------------------------------------
# plugins over the wire: auth, rate limit, results backend
# ---------------------------------------------------------------------------
def test_token_auth_gates_everything_but_health():
    auth = PluginSelection("token", {"token": "s3cret"})
    with make_service(auth=auth) as svc:
        anonymous = ServiceClient(svc.base_url)
        assert anonymous.healthz()["ok"] is True  # liveness needs no token
        with pytest.raises(ServiceError) as err:
            anonymous.sessions()
        assert err.value.status == 401
        authed = ServiceClient(svc.base_url, token="s3cret")
        assert authed.sessions() == []
        assert authed.metrics()["rejected"] == 1


def test_rate_limit_returns_429():
    limit = PluginSelection("window", {"max_requests": 2, "window_seconds": 60.0})
    with make_service(rate_limit=limit) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        client.decide("demo", "consistency")
        client.decide("demo", "consistency")
        with pytest.raises(ServiceError) as err:
            client.decide("demo", "consistency")
        assert err.value.status == 429


def test_results_backend_records_envelopes():
    with make_service() as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        assert client.results("demo") == []
        client.decide("demo", "consistency")
        client.decide("demo", "consistency")
        recorded = client.results("demo")
        assert [r["cache_hit"] for r in recorded] == [False, True]
        assert all(r["problem"] == "consistency" for r in recorded)


# ---------------------------------------------------------------------------
# timeouts (a deliberately slow engine) and graceful shutdown
# ---------------------------------------------------------------------------
class _SleepyEngine:
    """Delegates to the propagating engine after a nap (timeout tests)."""

    def __init__(self, *args, delay=0.0, **kwargs):
        self._delay = delay
        self._inner = get_engine("propagating").factory(*args, **kwargs)

    def _nap(self):
        time.sleep(self._delay)

    def worlds(self, **kwargs):
        self._nap()
        return self._inner.worlds(**kwargs)

    def has_world(self, **kwargs):
        self._nap()
        return self._inner.has_world(**kwargs)

    def count_worlds(self, **kwargs):
        self._nap()
        return self._inner.count_worlds(**kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture()
def sleepy_engine():
    register_engine(
        "sleepy",
        lambda *args, **kwargs: _SleepyEngine(*args, delay=1.0, **kwargs),
        EngineCapabilities(),
    )
    try:
        yield "sleepy"
    finally:
        unregister_engine("sleepy")


def test_request_timeout_is_504(sleepy_engine):
    with make_service(executor="thread", request_timeout=0.2) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        with pytest.raises(ServiceError) as err:
            client.decide("demo", "consistency", engine=sleepy_engine)
        assert err.value.status == 504
        assert client.metrics()["timeouts"] == 1


def test_graceful_shutdown_drains_inflight_requests(sleepy_engine):
    svc = make_service(executor="thread", drain_timeout=10.0).start()
    client = ServiceClient(svc.base_url)
    client.create_session("demo", "patients")
    outcome = {}

    def slow_request():
        try:
            outcome["envelope"] = ServiceClient(svc.base_url).decide(
                "demo", "consistency", engine=sleepy_engine
            )
        except ServiceError as err:
            outcome["error"] = err

    requests_before = svc.service.metrics.requests
    thread = threading.Thread(target=slow_request)
    thread.start()
    # Wait until the *decide* request itself is in flight: the request
    # counter rules out sampling the tail of an earlier handler (inflight
    # drops to 0 a beat after the client already has its response bytes).
    assert wait_for(
        lambda: svc.service.metrics.requests > requests_before
        and svc.service.inflight >= 1,
        timeout=5.0,
    )
    svc.stop()  # drain-then-exit: the in-flight decision must complete
    thread.join(timeout=15.0)
    assert not thread.is_alive()
    assert "envelope" in outcome, outcome.get("error")
    assert outcome["envelope"]["result"]["holds"] is True
    # And the listener really is down now.
    with pytest.raises(OSError):
        ServiceClient(svc.base_url).healthz()


# ---------------------------------------------------------------------------
# the process executor (one smoke: pickling + replica caching)
# ---------------------------------------------------------------------------
def test_process_executor_smoke():
    with make_service(executor="process", executor_workers=2) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("demo", "patients")
        cold = client.decide("demo", "consistency")
        assert cold["result"]["holds"] is True
        assert cold["cache_hit"] is False
        warm = client.decide("demo", "consistency")
        assert warm["cache_hit"] is True  # main-process cache is authoritative
        # Updates invalidate across the process boundary (version bump).
        client.update(
            "demo", add_rows={"MVisit": [["915-15-402", "Cal", "EDI", 2003]]}
        )
        after = client.decide("demo", "consistency")
        assert after["cache_hit"] is False
        assert after["result"]["holds"] is True
