"""The writer-preferring RW lock and the single-flight table."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.locks import ReadWriteLock
from repro.service.singleflight import SingleFlight


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# ReadWriteLock
# ---------------------------------------------------------------------------
def test_readers_are_concurrent():
    async def main():
        lock = ReadWriteLock()
        peak = 0
        active = 0

        async def read():
            nonlocal peak, active
            async with lock.read_locked():
                active += 1
                peak = max(peak, active)
                await asyncio.sleep(0.01)
                active -= 1

        await asyncio.gather(*(read() for _ in range(5)))
        assert peak == 5
        assert lock.readers == 0

    run(main())


def test_writer_excludes_readers_and_writers():
    async def main():
        lock = ReadWriteLock()
        log: list[str] = []

        async def write(tag):
            async with lock.write_locked():
                log.append(f"{tag}+")
                await asyncio.sleep(0.01)
                log.append(f"{tag}-")

        async def read(tag):
            async with lock.read_locked():
                log.append(f"{tag}+")
                await asyncio.sleep(0.005)
                log.append(f"{tag}-")

        await asyncio.gather(write("w1"), write("w2"), read("r"))
        # Every acquisition closes before the next opens except reader pairs;
        # here: each writer's +/- must be adjacent in the log.
        for tag in ("w1", "w2"):
            opened = log.index(f"{tag}+")
            assert log[opened + 1] == f"{tag}-"

    run(main())


def test_writer_preference_blocks_new_readers():
    """A waiting writer starves no longer: new readers queue behind it."""

    async def main():
        lock = ReadWriteLock()
        order: list[str] = []
        release_first_reader = asyncio.Event()

        async def first_reader():
            async with lock.read_locked():
                order.append("r1")
                await release_first_reader.wait()

        async def writer():
            async with lock.write_locked():
                order.append("w")

        async def late_reader():
            async with lock.read_locked():
                order.append("r2")

        reader_task = asyncio.create_task(first_reader())
        await asyncio.sleep(0.01)
        writer_task = asyncio.create_task(writer())
        await asyncio.sleep(0.01)
        late_task = asyncio.create_task(late_reader())
        await asyncio.sleep(0.01)
        assert order == ["r1"]  # writer waiting, late reader parked behind it
        release_first_reader.set()
        await asyncio.gather(reader_task, writer_task, late_task)
        assert order == ["r1", "w", "r2"]

    run(main())


def test_lock_released_on_exception():
    async def main():
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            async with lock.write_locked():
                raise RuntimeError("boom")
        assert not lock.writer_active
        async with lock.read_locked():
            pass

    run(main())


# ---------------------------------------------------------------------------
# SingleFlight
# ---------------------------------------------------------------------------
def test_single_flight_collapses_concurrent_calls():
    async def main():
        flight = SingleFlight()
        computations = 0

        async def call():
            nonlocal computations
            leader, future = flight.acquire("key")
            if leader:
                try:
                    await asyncio.sleep(0.01)
                    computations += 1
                    future.set_result(42)
                finally:
                    flight.release("key")
                return 42, True
            return await future, False

        results = await asyncio.gather(*(call() for _ in range(8)))
        assert computations == 1
        assert all(value == 42 for value, _leader in results)
        assert sum(1 for _v, leader in results if leader) == 1
        assert len(flight) == 0

    run(main())


def test_single_flight_propagates_leader_failure():
    async def main():
        flight = SingleFlight()
        follower_joined = asyncio.Event()

        async def leader_call():
            leader, future = flight.acquire("k")
            assert leader
            try:
                await follower_joined.wait()
                future.set_exception(ValueError("engine exploded"))
                future.exception()  # mark retrieved
            finally:
                flight.release("k")

        async def follower_call():
            await asyncio.sleep(0)  # let the leader acquire first
            leader, future = flight.acquire("k")
            assert not leader
            follower_joined.set()
            with pytest.raises(ValueError, match="engine exploded"):
                await future

        await asyncio.gather(leader_call(), follower_call())

    run(main())


def test_distinct_keys_do_not_collapse():
    async def main():
        flight = SingleFlight()
        leader_a, _fa = flight.acquire(("s", "a"))
        leader_b, _fb = flight.acquire(("s", "b"))
        assert leader_a and leader_b
        assert len(flight) == 2
        flight.release(("s", "a"))
        flight.release(("s", "b"))
        flight.release(("s", "b"))  # idempotent
        assert len(flight) == 0

    run(main())
