"""Service configuration parsing: defaults, validation, config files."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ServiceError
from repro.service.config import PluginSelection, ServiceConfig, SessionConfig


def test_defaults():
    config = ServiceConfig()
    assert config.host == "127.0.0.1"
    assert config.executor == "process"
    assert config.request_timeout == 30.0
    assert config.stream_buffer == 8
    assert config.auth.name == "none"
    assert config.result_backend.name == "memory"
    assert config.sessions == {}


def test_from_dict_full():
    config = ServiceConfig.from_dict(
        {
            "host": "0.0.0.0",
            "port": 9000,
            "executor": "thread",
            "executor_workers": 4,
            "request_timeout": None,
            "stream_buffer": 2,
            "drain_timeout": 1.5,
            "auth": {"name": "token", "options": {"token": "s3cret"}},
            "rate_limit": "none",
            "result_backend": {"name": "memory", "options": {"capacity": 16}},
            "sessions": {
                "demo": {
                    "workload": "patients",
                    "engine": "sat",
                },
                "synthetic": {
                    "workload": "registry",
                    "params": {"master_size": 3},
                },
            },
        }
    )
    assert config.port == 9000
    assert config.request_timeout is None
    assert config.auth == PluginSelection("token", {"token": "s3cret"})
    assert config.rate_limit == PluginSelection("none")
    assert config.sessions["demo"] == SessionConfig("patients", {}, "sat")
    assert config.sessions["synthetic"].params == {"master_size": 3}


def test_unknown_keys_rejected():
    with pytest.raises(ServiceError, match="unknown service config keys"):
        ServiceConfig.from_dict({"prot": 1234})
    with pytest.raises(ServiceError, match="unknown keys"):
        ServiceConfig.from_dict(
            {"sessions": {"s": {"workload": "patients", "engin": "sat"}}}
        )
    with pytest.raises(ServiceError, match="unknown keys"):
        ServiceConfig.from_dict({"auth": {"name": "none", "option": {}}})


def test_bad_values_rejected():
    with pytest.raises(ServiceError, match="executor"):
        ServiceConfig.from_dict({"executor": "fibers"})
    with pytest.raises(ServiceError, match="stream_buffer"):
        ServiceConfig.from_dict({"stream_buffer": 0})
    with pytest.raises(ServiceError, match="must be an integer"):
        ServiceConfig.from_dict({"port": "8080"})
    with pytest.raises(ServiceError, match="must be an integer"):
        ServiceConfig.from_dict({"port": True})
    with pytest.raises(ServiceError, match="must be a number"):
        ServiceConfig.from_dict({"drain_timeout": "fast"})


def test_from_file_round_trip(tmp_path):
    path = tmp_path / "service.json"
    path.write_text(
        json.dumps({"port": 0, "executor": "inline", "request_timeout": 5})
    )
    config = ServiceConfig.from_file(path)
    assert config.port == 0
    assert config.executor == "inline"
    assert config.request_timeout == 5.0


def test_from_file_errors(tmp_path):
    with pytest.raises(ServiceError, match="cannot read"):
        ServiceConfig.from_file(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ServiceError, match="not valid JSON"):
        ServiceConfig.from_file(bad)
