"""The minimal HTTP layer: request parsing, JSON bodies, error statuses."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    HTTPError,
    HTTPRequest,
    MAX_BODY_BYTES,
    read_request,
)


def parse(raw: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


def test_parse_simple_get():
    request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
    assert request is not None
    assert request.method == "GET"
    assert request.path == "/healthz"
    assert request.headers["host"] == "x"
    assert request.body == b""
    assert request.json() is None


def test_parse_query_string_and_path_parts():
    request = parse(b"GET /sessions/my%20db/worlds?limit=3&engine=sat HTTP/1.1\r\n\r\n")
    assert request is not None
    assert request.query == {"limit": "3", "engine": "sat"}
    assert request.path_parts() == ["sessions", "my db", "worlds"]


def test_parse_post_with_json_body():
    body = json.dumps({"problem": "consistency"}).encode()
    raw = (
        b"POST /sessions/s/decide HTTP/1.1\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    request = parse(raw)
    assert request is not None
    assert request.json() == {"problem": "consistency"}


def test_headers_are_lowercased():
    request = parse(b"GET / HTTP/1.1\r\nX-Repro-Token: abc\r\n\r\n")
    assert request is not None
    assert request.headers["x-repro-token"] == "abc"


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_truncated_request_raises_400():
    with pytest.raises(HTTPError) as err:
        parse(b"GET / HTTP/1.1\r\nHost")
    assert err.value.status == 400


def test_malformed_request_line_raises_400():
    with pytest.raises(HTTPError) as err:
        parse(b"NONSENSE\r\n\r\n")
    assert err.value.status == 400


def test_non_http_version_rejected():
    with pytest.raises(HTTPError) as err:
        parse(b"GET / GOPHER/7\r\n\r\n")
    assert err.value.status == 400


def test_bad_content_length_raises():
    with pytest.raises(HTTPError) as err:
        parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert err.value.status == 400
    with pytest.raises(HTTPError) as err:
        parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
    assert err.value.status == 413
    with pytest.raises(HTTPError) as err:
        parse(
            f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
    assert err.value.status == 413


def test_chunked_request_bodies_rejected():
    with pytest.raises(HTTPError) as err:
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert err.value.status == 400


def test_truncated_body_raises_400():
    with pytest.raises(HTTPError) as err:
        parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
    assert err.value.status == 400


def test_bad_json_body_raises_400():
    request = HTTPRequest(method="POST", path="/", body=b"{not json")
    with pytest.raises(HTTPError) as err:
        request.json()
    assert err.value.status == 400
