"""The :class:`DatabasePool`: facade parity, shared cache identity, updates.

These tests run the pool directly (inline executor, no HTTP) and pin the
property the service's caching is built on: the wire path and direct
:class:`~repro.api.Database` calls memoise under the *same* identity, so
warming one warms the other.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Database
from repro.decision import json_safe
from repro.exceptions import ServiceError
from repro.service.plugins import get_service_plugin
from repro.service.pool import DatabasePool


def run(coro):
    return asyncio.run(coro)


def patients_spec():
    return get_service_plugin("workload", "patients")()


def registry_spec(**params):
    params.setdefault("master_size", 3)
    params.setdefault("db_rows", 2)
    params.setdefault("variable_count", 1)
    return get_service_plugin("workload", "registry")(**params)


def make_pool() -> DatabasePool:
    return DatabasePool(executor="inline", request_timeout=None)


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------
def test_session_crud():
    pool = make_pool()
    state = pool.create_session("a", "patients")
    assert pool.session_names() == ["a"]
    assert state.info()["queries"] == sorted(state.spec.queries)
    with pytest.raises(ServiceError) as err:
        pool.create_session("a", "patients")
    assert err.value.status == 409
    pool.drop_session("a")
    assert pool.session_names() == []
    with pytest.raises(ServiceError) as err:
        pool.session("a")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        pool.drop_session("a")
    assert err.value.status == 404


def test_invalid_session_names_and_engines():
    pool = make_pool()
    with pytest.raises(ServiceError):
        pool.create_session("a/b", "patients")
    with pytest.raises(ServiceError):
        pool.create_session("", "patients")
    with pytest.raises(ServiceError):
        pool.add_session("ok", patients_spec(), engine="no-such-engine")


# ---------------------------------------------------------------------------
# decisions: facade parity and shared cache identity
# ---------------------------------------------------------------------------
def test_decide_matches_direct_facade():
    spec = patients_spec()
    pool = make_pool()
    pool.add_session("s", spec)
    direct = Database(spec.cinstance, spec.master, spec.constraints)

    async def main():
        env = await pool.decide("s", {"problem": "consistency"})
        assert env["ok"] is True
        assert env["result"]["kind"] == "decision"
        assert env["result"]["holds"] == bool(direct.is_consistent())
        certain = await pool.decide("s", {"problem": "certain", "query": "q1"})
        assert certain["result"]["kind"] == "answers"
        assert certain["result"]["answers"] == json_safe(
            direct.certain_answers(spec.queries["q1"])
        )
        rcdp = await pool.decide(
            "s", {"problem": "complete", "query": "q1", "model": "strong"}
        )
        direct_rcdp = direct.complete(spec.queries["q1"])
        assert rcdp["result"]["holds"] == bool(direct_rcdp)
        assert rcdp["result"]["stats"]["searches"] >= 1

    run(main())


def test_wire_and_facade_share_one_cache():
    pool = make_pool()
    state = pool.create_session("s", "patients")

    async def main():
        first = await pool.decide("s", {"problem": "consistency"})
        assert first["cache_hit"] is False
        # The wire decision warmed the session facade's own cache...
        direct = state.database.is_consistent()
        assert direct.stats.cache_hit is True
        # ...and a facade call warms the wire path.
        state.database.rcqp(state.spec.queries["q1"], max_size=2)
        wire = await pool.decide(
            "s", {"problem": "rcqp", "query": "q1", "max_size": 2}
        )
        assert wire["cache_hit"] is True
        assert wire["result"]["stats"]["cache_hit"] is True

    run(main())


def test_engine_override_per_request():
    pool = make_pool()
    pool.create_session("s", "patients")

    async def main():
        env = await pool.decide("s", {"problem": "consistency", "engine": "sat"})
        assert env["result"]["engine_used"] == "sat"
        # A different engine is a different cache identity: no false sharing.
        other = await pool.decide(
            "s", {"problem": "consistency", "engine": "propagating"}
        )
        assert other["cache_hit"] is False

    run(main())


def test_include_witness():
    pool = make_pool()
    pool.create_session("s", "patients")

    async def main():
        bare = await pool.decide("s", {"problem": "consistency"})
        assert "witness" not in bare["result"]
        env = await pool.decide(
            "s", {"problem": "consistency", "include_witness": True}
        )
        assert env["cache_hit"] is True  # include_witness is not cache identity
        assert "witness" in env["result"]

    run(main())


def test_single_flight_collapses_identical_concurrent_decides():
    pool = make_pool()
    pool.create_session("s", "patients")
    body = {"problem": "complete", "query": "q1", "model": "strong"}

    async def main():
        envelopes = await asyncio.gather(
            *(pool.decide("s", dict(body)) for _ in range(6))
        )
        assert pool.metrics.engine_runs == 1
        assert sum(1 for e in envelopes if e["deduplicated"]) == 5
        assert len({e["result"]["holds"] for e in envelopes}) == 1

    run(main())


def test_decide_errors():
    pool = make_pool()
    pool.create_session("s", "patients")

    async def main():
        with pytest.raises(ServiceError) as err:
            await pool.decide("missing", {"problem": "consistency"})
        assert err.value.status == 404
        with pytest.raises(ServiceError):
            await pool.decide("s", {"problem": "tractability"})
        with pytest.raises(ServiceError):
            await pool.decide("s", {"problem": "complete", "query": "nope"})
        with pytest.raises(ServiceError):
            await pool.decide("s", ["not", "an", "object"])
        with pytest.raises(ServiceError):
            await pool.decide("s", {"problem": "consistency", "engine": "warp"})

    run(main())


# ---------------------------------------------------------------------------
# updates
# ---------------------------------------------------------------------------
def test_update_invalidates_dependency_scoped_entries():
    pool = make_pool()
    pool.create_session("s", "patients")

    async def main():
        await pool.decide("s", {"problem": "consistency"})
        await pool.decide("s", {"problem": "rcqp", "query": "q1", "max_size": 2})
        result = await pool.update(
            "s", {"add_rows": {"MVisit": [["915-15-400", "Ann", "EDI", 2001]]}}
        )
        assert result["update"]["touched"] == ["MVisit"]
        assert result["update"]["invalidated"] >= 1
        # Consistency depended on MVisit: recomputed.
        consistency = await pool.decide("s", {"problem": "consistency"})
        assert consistency["cache_hit"] is False
        # RCQP quantifies over all master-conforming instances: survives.
        rcqp = await pool.decide(
            "s", {"problem": "rcqp", "query": "q1", "max_size": 2}
        )
        assert rcqp["cache_hit"] is True

    run(main())


def test_update_bumps_version_and_validates(pool=None):
    pool = make_pool()
    state = pool.create_session("s", "patients")

    async def main():
        assert state.version == 0
        await pool.update(
            "s", {"add_rows": {"MVisit": [["915-15-401", "Bea", "EDI", 2002]]}}
        )
        assert state.version == 1
        with pytest.raises(ServiceError):
            await pool.update("s", {"add_rows": {"NoSuchRelation": [["x"]]}})
        with pytest.raises(ServiceError):
            await pool.update("s", {"add_rows": {"MVisit": [["wrong-arity"]]}})
        with pytest.raises(ServiceError):
            await pool.update("s", {"add_rows": {"MVisit": [[{"not": "scalar"}]]}})
        assert state.version == 1  # failed updates do not bump

    run(main())


def test_inconsistent_batch_is_409_and_rolls_back():
    spec = registry_spec()
    pool = make_pool()
    state = pool.add_session("s", spec)
    fingerprints = state.database.cinstance.relation_fingerprints()

    async def main():
        with pytest.raises(ServiceError) as err:
            await pool.batch(
                "s",
                {"steps": [{"add_rows": {"Record": [["k0", "v-off-registry"]]}}]},
            )
        assert err.value.status == 409
        assert state.database.cinstance.relation_fingerprints() == fingerprints
        assert state.version == 0
        # A consistent batch commits and bumps the version once.
        row = next(
            list(r.terms)
            for r in state.database.cinstance.table("Record").rows
            if not r.variables()
        )
        result = await pool.batch(
            "s",
            {
                "steps": [
                    {"drop_rows": {"Record": [row]}},
                    {"add_rows": {"Record": [row]}},
                ]
            },
        )
        assert len(result["steps"]) == 2
        assert state.version == 1

    run(main())


def test_batch_validates_shape():
    pool = make_pool()
    pool.create_session("s", "patients")

    async def main():
        with pytest.raises(ServiceError):
            await pool.batch("s", {"steps": "not-a-list"})
        with pytest.raises(ServiceError):
            await pool.batch("s", {"steps": ["not-an-object"]})

    run(main())
