"""Tests for query evaluation over ground instances (all five languages)."""

import pytest

from repro.exceptions import QueryError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.efo import ExistentialPositiveQuery, cq_as_efo, efo, ucq_as_efo
from repro.queries.evaluation import (
    active_domain,
    boolean_answer,
    evaluate,
    evaluate_fp,
    is_monotone,
    query_arity,
    query_constants,
    query_relation_names,
)
from repro.queries.fo import fo, native_query
from repro.queries.formulas import conj, disj, exists, forall, negate, rel, comp
from repro.queries.fp import fixpoint_query, rule
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.schema import database_schema, schema
from repro.relational.instance import instance

x, y, z, w = var("x"), var("y"), var("z"), var("w")


@pytest.fixture
def graph_schema():
    return database_schema(schema("E", "src", "dst"), schema("V", "node"))


@pytest.fixture
def graph(graph_schema):
    return instance(
        graph_schema,
        E=[(1, 2), (2, 3), (3, 4)],
        V=[(1,), (2,), (3,), (4,), (5,)],
    )


class TestCQEvaluation:
    def test_single_atom(self, graph):
        q = cq("Q", [x, y], atoms=[atom("E", x, y)])
        assert evaluate(q, graph) == {(1, 2), (2, 3), (3, 4)}

    def test_join(self, graph):
        q = cq("Q", [x, z], atoms=[atom("E", x, y), atom("E", y, z)])
        assert evaluate(q, graph) == {(1, 3), (2, 4)}

    def test_constant_in_atom(self, graph):
        q = cq("Q", [y], atoms=[atom("E", 1, y)])
        assert evaluate(q, graph) == {(2,)}

    def test_projection(self, graph):
        q = cq("Q", [x], atoms=[atom("E", x, y)])
        assert evaluate(q, graph) == {(1,), (2,), (3,)}

    def test_inequality(self, graph):
        q = cq("Q", [x, y], atoms=[atom("E", x, y)], comparisons=[neq(x, 1)])
        assert evaluate(q, graph) == {(2, 3), (3, 4)}

    def test_equality_comparison(self, graph):
        q = cq(
            "Q",
            [x, y],
            atoms=[atom("E", x, y)],
            comparisons=[eq(y, 2)],
        )
        assert evaluate(q, graph) == {(1, 2)}

    def test_equality_bound_head_variable(self, graph):
        # A head variable bound only through an equality atom (Example 5.5 shape).
        q = cq(
            "Q",
            [w],
            atoms=[atom("V", x)],
            comparisons=[eq(w, "flag")],
        )
        assert evaluate(q, graph) == {("flag",)}

    def test_boolean_query_true_false(self, graph):
        yes = boolean_cq("Yes", atoms=[atom("E", 1, 2)])
        no = boolean_cq("No", atoms=[atom("E", 4, 1)])
        assert boolean_answer(yes, graph) is True
        assert boolean_answer(no, graph) is False

    def test_boolean_answer_rejects_non_boolean(self, graph):
        q = cq("Q", [x], atoms=[atom("V", x)])
        with pytest.raises(QueryError):
            boolean_answer(q, graph)

    def test_constant_head_term(self, graph):
        q = cq("Q", ["tag", x], atoms=[atom("V", x)])
        assert ("tag", 5) in evaluate(q, graph)

    def test_self_join_same_variable(self, graph):
        q = cq("Q", [x], atoms=[atom("E", x, x)])
        assert evaluate(q, graph) == frozenset()

    def test_empty_relation(self, graph_schema):
        empty = instance(graph_schema)
        q = cq("Q", [x], atoms=[atom("V", x)])
        assert evaluate(q, empty) == frozenset()

    def test_unknown_relation_treated_as_empty(self, graph):
        q = cq("Q", [x], atoms=[atom("Missing", x)])
        assert evaluate(q, graph) == frozenset()


class TestUCQEvaluation:
    def test_union(self, graph):
        q1 = cq("Q1", [x], atoms=[atom("E", x, 2)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, 4)])
        assert evaluate(ucq("U", q1, q2), graph) == {(1,), (3,)}

    def test_overlapping_disjuncts_deduplicated(self, graph):
        q1 = cq("Q1", [x], atoms=[atom("V", x)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, y)])
        assert evaluate(ucq("U", q1, q2), graph) == {(1,), (2,), (3,), (4,), (5,)}


class TestEFOEvaluation:
    def test_conjunction_matches_cq(self, graph):
        q_cq = cq("Q", [x, z], atoms=[atom("E", x, y), atom("E", y, z)])
        q_efo = cq_as_efo(q_cq)
        assert evaluate(q_efo, graph) == evaluate(q_cq, graph)

    def test_disjunction(self, graph):
        q = efo(
            "Q",
            [x],
            disj(rel("E", x, 2), rel("E", x, 4)),
        )
        assert evaluate(q, graph) == {(1,), (3,)}

    def test_existential(self, graph):
        q = efo("Q", [x], exists([y], conj(rel("E", x, y), rel("E", y, 4))))
        assert evaluate(q, graph) == {(2,)}

    def test_negative_formula_rejected(self):
        with pytest.raises(QueryError):
            ExistentialPositiveQuery([x], negate(rel("E", x, x)), name="Q")

    def test_to_ucq_equivalence(self, graph):
        q = efo(
            "Q",
            [x],
            conj(rel("V", x), disj(rel("E", x, 2), rel("E", 3, x))),
        )
        assert evaluate(q, graph) == evaluate(q.to_ucq(), graph)

    def test_ucq_as_efo_equivalence(self, graph):
        u = ucq(
            "U",
            cq("Q1", [x], atoms=[atom("E", x, 2)]),
            cq("Q2", [y], atoms=[atom("E", y, 4)]),
        )
        assert evaluate(ucq_as_efo(u), graph) == evaluate(u, graph)

    def test_comparison_inside_formula(self, graph):
        q = efo("Q", [x], conj(rel("V", x), comp(neq(x, 5))))
        assert evaluate(q, graph) == {(1,), (2,), (3,), (4,)}


class TestFOEvaluation:
    def test_negation(self, graph):
        # Nodes with no outgoing edge.
        q = fo("Q", [x], conj(rel("V", x), negate(exists([y], rel("E", x, y)))))
        assert evaluate(q, graph) == {(4,), (5,)}

    def test_universal_quantification(self, graph):
        # Nodes x such that every edge out of x goes to node 2 (vacuously true
        # for nodes with no outgoing edge).
        q = fo(
            "Q",
            [x],
            conj(rel("V", x), forall([y], disj(negate(rel("E", x, y)), comp(eq(y, 2))))),
        )
        assert evaluate(q, graph) == {(1,), (4,), (5,)}

    def test_boolean_fo(self, graph):
        q = fo("Q", [], forall([x], disj(negate(rel("V", x)), comp(neq(x, 99)))))
        assert boolean_answer(q, graph) is True

    def test_fo_is_not_declared_monotone(self, graph):
        q = fo("Q", [x], rel("V", x))
        assert not is_monotone(q)


class TestFPEvaluation:
    def test_transitive_closure(self, graph):
        tc = fixpoint_query(
            "TC",
            output="T",
            rules=[
                rule(atom("T", x, y), atom("E", x, y)),
                rule(atom("T", x, z), atom("T", x, y), atom("E", y, z)),
            ],
        )
        assert evaluate(tc, graph) == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }

    def test_reachability_with_constant(self, graph):
        reach = fixpoint_query(
            "Reach",
            output="R",
            rules=[
                rule(atom("R", y), atom("E", 1, y)),
                rule(atom("R", z), atom("R", y), atom("E", y, z)),
            ],
        )
        assert evaluate(reach, graph) == {(2,), (3,), (4,)}

    def test_comparison_in_rule_body(self, graph):
        q = fixpoint_query(
            "Q",
            output="P",
            rules=[rule(atom("P", x, y), atom("E", x, y), neq(x, 1))],
        )
        assert evaluate(q, graph) == {(2, 3), (3, 4)}

    def test_fp_is_monotone(self, graph):
        q = fixpoint_query(
            "Q", output="P", rules=[rule(atom("P", x), atom("V", x))]
        )
        assert is_monotone(q)
        larger = graph.with_tuple("V", (6,))
        assert evaluate(q, graph) <= evaluate(q, larger)

    def test_max_rounds_guard(self, graph):
        q = fixpoint_query(
            "Q", output="P", rules=[rule(atom("P", x), atom("V", x))]
        )
        assert evaluate_fp(q, graph, max_rounds=10) == {(i,) for i in range(1, 6)}

    def test_unsafe_rule_rejected(self):
        with pytest.raises(QueryError):
            rule(atom("P", x, y), atom("V", x))

    def test_output_must_be_idb(self):
        with pytest.raises(QueryError):
            fixpoint_query("Q", output="Missing", rules=[rule(atom("P", x), atom("V", x))])

    def test_idb_arity_consistency(self):
        with pytest.raises(QueryError):
            fixpoint_query(
                "Q",
                output="P",
                rules=[
                    rule(atom("P", x), atom("V", x)),
                    rule(atom("P", x, y), atom("E", x, y)),
                ],
            )


class TestNativeQueries:
    def test_native_query_evaluation(self, graph):
        q = native_query(
            "edges", 2, lambda inst: frozenset(inst["E"].rows), monotone=True
        )
        assert evaluate(q, graph) == {(1, 2), (2, 3), (3, 4)}
        assert is_monotone(q)

    def test_native_query_arity_check(self, graph):
        bad = native_query("bad", 3, lambda inst: frozenset({(1, 2)}))
        with pytest.raises(ValueError):
            evaluate(bad, graph)


class TestQueryMetadata:
    def test_query_constants_and_relations(self):
        q = cq("Q", [x], atoms=[atom("R", x, 1)], comparisons=[neq(x, "a")])
        assert query_constants(q) == {1, "a"}
        assert query_relation_names(q) == {"R"}
        assert query_arity(q) == 1

    def test_active_domain(self, graph):
        q = cq("Q", [x], atoms=[atom("V", x)], comparisons=[neq(x, 99)])
        assert 99 in active_domain(graph, q)
        assert 1 in active_domain(graph, q)

    def test_unsupported_query_type_rejected(self, graph):
        with pytest.raises(QueryError):
            evaluate("not a query", graph)
