"""Active-domain FO semantics and the utility iterators backing the deciders."""

import pytest

from repro.exceptions import BoundExceededError
from repro.queries.evaluation import evaluate, evaluate_fo
from repro.queries.fo import fo, native_query
from repro.queries.formulas import comp, conj, disj, exists, forall, negate, rel
from repro.queries.atoms import eq, neq
from repro.queries.terms import var
from repro.relational.instance import empty_instance, instance
from repro.relational.schema import database_schema, schema
from repro.utils.itertools_ext import bounded_product, limited, powerset, product_size

x, y = var("x"), var("y")

EDGE = database_schema(schema("E", "src", "dst"))


@pytest.fixture
def triangle():
    return instance(EDGE, E=[(1, 2), (2, 3), (3, 1)])


class TestFOEvaluation:
    def test_negation_under_active_domain(self, triangle):
        # Nodes with an outgoing edge but no self-loop.
        q = fo("NoLoop", [x], conj(rel("E", x, y), negate(rel("E", x, x))))
        assert evaluate(q, triangle) == {(1,), (2,), (3,)}

    def test_universal_quantification(self, triangle):
        # "x reaches every node directly" — false for every node of the triangle.
        q = fo("Hub", [x], forall([y], rel("E", x, y)))
        assert evaluate_fo(q, triangle) == frozenset()
        # Add the missing edges for node 1 (including a self-loop): 1 becomes a hub.
        extended = triangle.with_tuples({"E": [(1, 1), (1, 3)]})
        assert evaluate_fo(q, extended) == {(1,)}

    def test_disjunction_and_comparisons(self, triangle):
        q = fo(
            "Q",
            [x, y],
            conj(rel("E", x, y), disj(comp(eq(x, 1)), comp(eq(y, 1)))),
        )
        assert evaluate(q, triangle) == {(1, 2), (3, 1)}

    def test_existential_matches_cq_semantics(self, triangle):
        q = fo("Src", [x], exists([y], rel("E", x, y)))
        assert evaluate(q, triangle) == {(1,), (2,), (3,)}

    def test_empty_instance_boolean_queries(self):
        empty = empty_instance(EDGE)
        some_edge = fo("Any", [], exists([x], exists([y], rel("E", x, y))))
        no_edge = fo("None", [], negate(exists([x], exists([y], rel("E", x, y)))))
        assert evaluate(some_edge, empty) == frozenset()
        assert evaluate(no_edge, empty) == {()}

    def test_inequality_atom(self, triangle):
        q = fo("NotTwo", [x], conj(exists([y], rel("E", x, y)), comp(neq(x, 2))))
        assert evaluate(q, triangle) == {(1,), (3,)}

    def test_native_query_wrapping(self, triangle):
        q = native_query("loops", 1, lambda inst: frozenset(
            (a,) for (a, b) in inst["E"].rows if a == b
        ))
        assert evaluate(q, triangle) == frozenset()
        assert q.is_boolean is False


class TestIteratorUtilities:
    def test_powerset_sizes(self):
        items = ["a", "b", "c"]
        assert len(list(powerset(items))) == 8
        assert len(list(powerset(items, include_empty=False))) == 7

    def test_bounded_product_respects_budget(self):
        pools = [[0, 1], [0, 1], [0, 1]]
        assert len(list(bounded_product(pools))) == 8
        with pytest.raises(BoundExceededError):
            list(bounded_product(pools, limit=3))

    def test_limited_iteration(self):
        assert list(limited(range(3), 3)) == [0, 1, 2]
        assert list(limited(range(3), None)) == [0, 1, 2]
        with pytest.raises(BoundExceededError):
            list(limited(range(10), 3))

    def test_product_size(self):
        assert product_size([[1, 2], [1, 2, 3]]) == 6
        assert product_size([]) == 1
