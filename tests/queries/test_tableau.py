"""Tests for tableau machinery: freezing, canonical databases, containment."""

import pytest

from repro.exceptions import QueryError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import cq
from repro.queries.evaluation import evaluate
from repro.queries.tableau import (
    canonical_database,
    contained_in,
    equivalent,
    find_homomorphism,
    freeze,
    freezing_valuation,
    inline_equalities,
)
from repro.queries.terms import var
from repro.relational.schema import database_schema, schema

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def db_schema():
    return database_schema(schema("E", "src", "dst"))


class TestFreezing:
    def test_freeze_produces_ground_tuples(self):
        atoms = (atom("E", x, y), atom("E", y, z))
        frozen = freeze(atoms, {x: 1, y: 2, z: 3})
        assert frozen == {"E": {(1, 2), (2, 3)}}

    def test_freeze_requires_total_valuation(self):
        with pytest.raises(QueryError):
            freeze((atom("E", x, y),), {x: 1})

    def test_freezing_valuation_covers_all_variables(self):
        q = cq("Q", [x], atoms=[atom("E", x, y)])
        valuation = freezing_valuation(q)
        assert set(valuation) == {x, y}
        assert len(set(valuation.values())) == 2

    def test_canonical_database(self, db_schema):
        q = cq("Q", [x], atoms=[atom("E", x, y), atom("E", y, x)])
        canon, valuation = canonical_database(q, db_schema)
        assert canon.size == 2
        # The canonical database always satisfies the query (frozen head in answer).
        frozen_head = tuple(valuation[t] for t in q.head)
        assert frozen_head in evaluate(q, canon)

    def test_canonical_database_with_explicit_valuation(self, db_schema):
        q = cq("Q", [x], atoms=[atom("E", x, y)])
        canon, _ = canonical_database(q, db_schema, valuation={x: "a", y: "b"})
        assert ("a", "b") in canon["E"]


class TestHomomorphismsAndContainment:
    def test_path2_contained_in_path1(self):
        # Q2 asks for a path of length 2, Q1 for an edge; Q2 ⊆ Q1 does not hold,
        # but a path of length 2 implies an edge from x, so check both ways.
        edge = cq("Edge", [x], atoms=[atom("E", x, y)])
        path2 = cq("Path2", [x], atoms=[atom("E", x, y), atom("E", y, z)])
        assert contained_in(path2, edge)
        assert not contained_in(edge, path2)

    def test_identical_queries_equivalent(self):
        q1 = cq("Q1", [x], atoms=[atom("E", x, y)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, z)])
        assert equivalent(q1, q2)

    def test_redundant_atom_equivalence(self):
        q1 = cq("Q1", [x], atoms=[atom("E", x, y)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, y), atom("E", x, z)])
        assert equivalent(q1, q2)

    def test_constant_mismatch_not_contained(self):
        q1 = cq("Q1", [x], atoms=[atom("E", x, 1)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, 2)])
        assert not contained_in(q1, q2)
        assert not contained_in(q2, q1)

    def test_containment_with_constants(self):
        specific = cq("Specific", [x], atoms=[atom("E", x, 1)])
        general = cq("General", [x], atoms=[atom("E", x, y)])
        assert contained_in(specific, general)
        assert not contained_in(general, specific)

    def test_find_homomorphism_returns_mapping(self):
        general = cq("General", [x], atoms=[atom("E", x, y)])
        specific = cq("Specific", [x], atoms=[atom("E", x, 1)])
        mapping = find_homomorphism(general, specific)
        assert mapping is not None
        assert mapping[y] == 1

    def test_head_arity_mismatch_rejected(self):
        q1 = cq("Q1", [x], atoms=[atom("E", x, y)])
        q2 = cq("Q2", [x, y], atoms=[atom("E", x, y)])
        with pytest.raises(QueryError):
            contained_in(q1, q2)

    def test_inequality_queries_rejected(self):
        q1 = cq("Q1", [x], atoms=[atom("E", x, y)], comparisons=[neq(x, y)])
        q2 = cq("Q2", [x], atoms=[atom("E", x, y)])
        with pytest.raises(QueryError):
            contained_in(q1, q2)

    def test_boolean_containment(self):
        q1 = cq("Q1", [], atoms=[atom("E", x, x)])
        q2 = cq("Q2", [], atoms=[atom("E", x, y)])
        assert contained_in(q1, q2)
        assert not contained_in(q2, q1)


class TestInlineEqualities:
    def test_variable_constant_equality(self):
        q = cq("Q", [x], atoms=[atom("E", x, y)], comparisons=[eq(y, 5)])
        simplified = inline_equalities(q)
        assert not simplified.equality_atoms()
        assert simplified.atoms[0].terms == (x, 5)

    def test_variable_variable_equality(self):
        q = cq("Q", [x], atoms=[atom("E", x, y), atom("E", y, z)], comparisons=[eq(x, z)])
        simplified = inline_equalities(q)
        assert not simplified.equality_atoms()
        # x and z collapse to a single variable.
        assert len(simplified.variables()) == 2

    def test_equality_of_head_variable_to_constant(self):
        q = cq("Q", [x], atoms=[atom("E", y, z)], comparisons=[eq(x, "a")])
        simplified = inline_equalities(q)
        assert simplified.head == ("a",)

    def test_semantics_preserved(self):
        from repro.relational.instance import instance

        db = database_schema(schema("E", "src", "dst"))
        data = instance(db, E=[(1, 1), (1, 2), (2, 2)])
        q = cq("Q", [x, y], atoms=[atom("E", x, y)], comparisons=[eq(x, y)])
        assert evaluate(q, data) == evaluate(inline_equalities(q), data)

    def test_contradictory_equalities_yield_unsatisfiable_query(self):
        from repro.relational.instance import instance

        db = database_schema(schema("E", "src", "dst"))
        data = instance(db, E=[(1, 2)])
        q = cq(
            "Q",
            [x],
            atoms=[atom("E", x, y)],
            comparisons=[eq(x, 1), eq(x, 2)],
        )
        assert evaluate(inline_equalities(q), data) == frozenset()
