"""Tests for conjunctive queries and unions of conjunctive queries."""

import pytest

from repro.exceptions import QueryError, UnsafeQueryError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq, ucq, ucq_from

x, y, z, w = var("x"), var("y"), var("z"), var("w")


class TestConjunctiveQueryConstruction:
    def test_basic_query(self):
        q = cq("Q", [x], atoms=[atom("R", x, y)])
        assert q.arity == 1
        assert not q.is_boolean
        assert q.head_variables() == {x}
        assert q.existential_variables() == {y}
        assert q.relation_names() == {"R"}

    def test_boolean_query(self):
        q = boolean_cq("Q", atoms=[atom("R", x)])
        assert q.is_boolean
        assert q.arity == 0

    def test_constants_collected(self):
        q = cq("Q", [x, "out"], atoms=[atom("R", x, 1)], comparisons=[neq(x, 2)])
        assert q.constants() == {"out", 1, 2}

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(UnsafeQueryError):
            cq("Q", [x], atoms=[atom("R", y)])

    def test_unsafe_comparison_variable_rejected(self):
        with pytest.raises(UnsafeQueryError):
            cq("Q", [], atoms=[atom("R", x)], comparisons=[neq(y, 1)])

    def test_equality_binding_makes_head_safe(self):
        # Example 5.5 of the paper: Q(x) = ∃y,z (R1(y) ∧ R2(z) ∧ x = a).
        q = cq(
            "Q",
            [x],
            atoms=[atom("R1", y), atom("R2", z)],
            comparisons=[eq(x, "a")],
        )
        assert x in q.bound_variables()

    def test_equality_chain_binding(self):
        q = cq(
            "Q",
            [x],
            atoms=[atom("R", y)],
            comparisons=[eq(x, z), eq(z, y)],
        )
        assert q.bound_variables() >= {x, y, z}

    def test_inequality_does_not_bind(self):
        with pytest.raises(UnsafeQueryError):
            cq("Q", [x], atoms=[atom("R", y)], comparisons=[neq(x, y)])

    def test_inequality_classification(self):
        q = cq("Q", [x], atoms=[atom("R", x)], comparisons=[neq(x, 1), eq(x, x)])
        assert len(q.inequality_atoms()) == 1
        assert len(q.equality_atoms()) == 1
        assert not q.is_inequality_free()


class TestConjunctiveQueryTransformations:
    def test_substitute(self):
        q = cq("Q", [x], atoms=[atom("R", x, y)])
        grounded = q.substitute({y: 7})
        assert grounded.atoms[0].terms == (x, 7)

    def test_rename_variables(self):
        q = cq("Q", [x], atoms=[atom("R", x, y)])
        renamed = q.rename_variables({x: w})
        assert renamed.head == (w,)
        assert renamed.atoms[0].terms == (w, y)

    def test_rename_apart(self):
        q = cq("Q", [x], atoms=[atom("R", x, y)])
        renamed = q.rename_apart({x})
        assert renamed.head[0] != x
        assert renamed.variables().isdisjoint({x})
        # Renaming away from disjoint variables is a no-op.
        assert q.rename_apart({var("unrelated")}) is q

    def test_with_name(self):
        assert cq("Q", [x], atoms=[atom("R", x)]).with_name("P").name == "P"

    def test_tableau_view(self):
        q = cq("Q", [x], atoms=[atom("R", x, y)], comparisons=[neq(y, 1)])
        tableau, head = q.tableau()
        assert tableau == q.atoms
        assert head == q.head

    def test_repr_contains_name(self):
        assert "Q1" in repr(cq("Q1", [x], atoms=[atom("R", x)]))


class TestUnionOfConjunctiveQueries:
    def test_construction(self):
        q1 = cq("Q1", [x], atoms=[atom("R", x)])
        q2 = cq("Q2", [y], atoms=[atom("S", y)])
        u = ucq("U", q1, q2)
        assert u.arity == 1
        assert len(u) == 2
        assert u.relation_names() == {"R", "S"}

    def test_arity_mismatch_rejected(self):
        q1 = cq("Q1", [x], atoms=[atom("R", x)])
        q2 = cq("Q2", [x, y], atoms=[atom("R", x, y)])
        with pytest.raises(QueryError):
            ucq("U", q1, q2)

    def test_empty_union_rejected(self):
        with pytest.raises(QueryError):
            UnionOfConjunctiveQueries((), name="U")

    def test_as_ucq(self):
        q = cq("Q", [x], atoms=[atom("R", x)])
        u = as_ucq(q)
        assert isinstance(u, UnionOfConjunctiveQueries)
        assert as_ucq(u) is u

    def test_union_of_unions(self):
        q1 = as_ucq(cq("Q1", [x], atoms=[atom("R", x)]))
        q2 = as_ucq(cq("Q2", [y], atoms=[atom("S", y)]))
        assert len(q1.union(q2)) == 2

    def test_variables_and_constants(self):
        q1 = cq("Q1", [x], atoms=[atom("R", x, 1)])
        q2 = cq("Q2", [y], atoms=[atom("S", y, "a")])
        u = ucq_from([q1, q2], name="U")
        assert u.variables() == {x, y}
        assert u.constants() == {1, "a"}

    def test_boolean_ucq(self):
        u = ucq("U", boolean_cq("Q1", atoms=[atom("R", x)]))
        assert u.is_boolean

    def test_inequality_free(self):
        q1 = cq("Q1", [x], atoms=[atom("R", x)])
        q2 = cq("Q2", [x], atoms=[atom("R", x)], comparisons=[neq(x, 1)])
        assert as_ucq(q1).is_inequality_free()
        assert not ucq("U", q1, q2).is_inequality_free()
