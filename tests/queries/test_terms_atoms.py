"""Tests for terms and atomic formulas."""

import pytest

from repro.exceptions import QueryError
from repro.queries.atoms import ComparisonOp, atom, eq, neq
from repro.queries.terms import (
    Variable,
    is_constant,
    is_variable,
    rename_variable,
    substitute,
    substitute_all,
    term_constants,
    term_variables,
    var,
    variables,
)


class TestVariables:
    def test_var_constructor(self):
        assert var("x") == Variable("x")

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            var("")

    def test_variables_from_string(self):
        assert variables("x y, z") == (var("x"), var("y"), var("z"))

    def test_variables_from_iterable(self):
        assert variables(["a", "b"]) == (var("a"), var("b"))

    def test_is_variable_and_is_constant(self):
        assert is_variable(var("x"))
        assert not is_variable("x")
        assert is_constant("x")
        assert not is_constant(var("x"))

    def test_term_sets(self):
        terms = (var("x"), 1, var("y"), "a")
        assert term_variables(terms) == {var("x"), var("y")}
        assert term_constants(terms) == {1, "a"}

    def test_substitute(self):
        assignment = {var("x"): 5}
        assert substitute(var("x"), assignment) == 5
        assert substitute(var("y"), assignment) == var("y")
        assert substitute(7, assignment) == 7
        assert substitute_all((var("x"), 7), assignment) == (5, 7)

    def test_rename(self):
        renaming = {var("x"): var("z")}
        assert rename_variable(var("x"), renaming) == var("z")
        assert rename_variable("c", renaming) == "c"

    def test_ordering(self):
        assert sorted([var("b"), var("a")]) == [var("a"), var("b")]


class TestRelationAtom:
    def test_construction(self):
        a = atom("R", var("x"), 1)
        assert a.relation == "R"
        assert a.arity == 2
        assert a.variables() == {var("x")}
        assert a.constants() == {1}

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryError):
            atom("", var("x"))

    def test_zero_arity_rejected(self):
        with pytest.raises(QueryError):
            atom("R")

    def test_substitute(self):
        a = atom("R", var("x"), var("y"))
        assert a.substitute({var("x"): 3}).terms == (3, var("y"))

    def test_rename(self):
        a = atom("R", var("x"), 1)
        assert a.rename({var("x"): var("z")}).terms == (var("z"), 1)

    def test_equality_hash(self):
        assert atom("R", var("x")) == atom("R", var("x"))
        assert hash(atom("R", var("x"))) == hash(atom("R", var("x")))


class TestComparison:
    def test_eq_and_neq(self):
        assert eq(var("x"), 1).op is ComparisonOp.EQ
        assert neq(var("x"), 1).op is ComparisonOp.NEQ

    def test_variables_constants(self):
        c = eq(var("x"), 1)
        assert c.variables() == {var("x")}
        assert c.constants() == {1}

    def test_ground_evaluation(self):
        assert eq(1, 1).evaluate_ground()
        assert not eq(1, 2).evaluate_ground()
        assert neq(1, 2).evaluate_ground()
        assert not neq(1, 1).evaluate_ground()

    def test_evaluate_under_assignment(self):
        assert eq(var("x"), 1).evaluate({var("x"): 1})
        assert not neq(var("x"), 1).evaluate({var("x"): 1})

    def test_non_ground_evaluation_rejected(self):
        with pytest.raises(QueryError):
            eq(var("x"), 1).evaluate_ground()

    def test_negate(self):
        assert eq(1, 2).negate().op is ComparisonOp.NEQ
        assert neq(1, 2).negate().op is ComparisonOp.EQ

    def test_operator_holds(self):
        assert ComparisonOp.EQ.holds("a", "a")
        assert ComparisonOp.NEQ.holds("a", "b")

    def test_substitute(self):
        c = eq(var("x"), var("y"))
        grounded = c.substitute({var("x"): 1, var("y"): 2})
        assert grounded.is_ground()
        assert not grounded.evaluate_ground()

    def test_rename(self):
        c = neq(var("x"), "c")
        renamed = c.rename({var("x"): var("w")})
        assert renamed.left == var("w")
        assert renamed.right == "c"
