"""Tests for relation and database schemas."""

import pytest

from repro.exceptions import ArityError, SchemaError, UnknownRelationError
from repro.relational.domains import BOOLEAN_DOMAIN, finite_domain
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    database_schema,
    schema,
)


class TestAttribute:
    def test_default_domain_is_infinite(self):
        assert Attribute("A").domain.is_infinite

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_equality(self):
        assert Attribute("A") == Attribute("A")
        assert Attribute("A", BOOLEAN_DOMAIN) != Attribute("A")


class TestRelationSchema:
    def test_shorthand_constructor(self):
        r = schema("R", "A", "B", "C")
        assert r.name == "R"
        assert r.arity == 3
        assert r.attribute_names == ("A", "B", "C")

    def test_mixed_attribute_specs(self):
        r = RelationSchema("R", ["A", ("B", BOOLEAN_DOMAIN), Attribute("C")])
        assert r.domain_of("B").is_finite
        assert r.domain_of("A").is_infinite

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            schema("R", "A", "A")

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            schema("", "A")

    def test_position_of(self):
        r = schema("R", "A", "B")
        assert r.position_of("B") == 1
        with pytest.raises(SchemaError):
            r.position_of("Z")

    def test_validate_tuple_arity(self):
        r = schema("R", "A", "B")
        assert r.validate_tuple((1, 2)) == (1, 2)
        with pytest.raises(ArityError):
            r.validate_tuple((1,))

    def test_validate_tuple_finite_domain(self):
        r = RelationSchema("R", [("A", BOOLEAN_DOMAIN)])
        assert r.validate_tuple((1,)) == (1,)
        with pytest.raises(SchemaError):
            r.validate_tuple((5,))

    def test_rename(self):
        r = schema("R", "A", "B")
        s = r.rename("S")
        assert s.name == "S"
        assert s.attributes == r.attributes

    def test_bad_attribute_spec(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [42])


class TestDatabaseSchema:
    def test_construction_and_lookup(self):
        db = database_schema(schema("R", "A"), schema("S", "B"))
        assert db["R"].arity == 1
        assert "S" in db
        assert "T" not in db
        assert db.relation_names == ("R", "S")

    def test_unknown_relation(self):
        db = database_schema(schema("R", "A"))
        with pytest.raises(UnknownRelationError):
            db["S"]

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            database_schema(schema("R", "A"), schema("R", "B"))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([])

    def test_extend(self):
        db = database_schema(schema("R", "A"))
        extended = db.extend(schema("S", "B"))
        assert "S" in extended
        assert "S" not in db

    def test_restrict(self):
        db = database_schema(schema("R", "A"), schema("S", "B"))
        assert database_schema(schema("R", "A")) == db.restrict(["R"])

    def test_equality_and_hash(self):
        a = database_schema(schema("R", "A"), schema("S", "B"))
        b = database_schema(schema("R", "A"), schema("S", "B"))
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_preserves_order(self):
        db = database_schema(schema("R", "A"), schema("S", "B"))
        assert [r.name for r in db] == ["R", "S"]

    def test_len(self):
        assert len(database_schema(schema("R", "A"), schema("S", "B"))) == 2

    def test_finite_domain_round_trip(self):
        dom = finite_domain("city", ("EDI", "LON"))
        db = database_schema(RelationSchema("R", [("city", dom)]))
        assert db["R"].domain_of("city") == dom
