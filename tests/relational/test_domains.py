"""Tests for attribute domains."""

import pytest

from repro.exceptions import DomainError
from repro.relational.domains import (
    ANY,
    BOOLEAN_DOMAIN,
    Domain,
    finite_domain,
    infinite_domain,
)


class TestInfiniteDomain:
    def test_contains_everything(self):
        dom = infinite_domain("string")
        assert "x" in dom
        assert 42 in dom
        assert ("a", "b") in dom

    def test_is_infinite(self):
        dom = infinite_domain()
        assert dom.is_infinite
        assert not dom.is_finite

    def test_cannot_enumerate(self):
        with pytest.raises(DomainError):
            list(infinite_domain())

    def test_has_no_len(self):
        with pytest.raises(DomainError):
            len(infinite_domain())

    def test_check_accepts_all(self):
        infinite_domain().check("anything")


class TestFiniteDomain:
    def test_membership(self):
        dom = finite_domain("bool", (0, 1))
        assert 0 in dom
        assert 1 in dom
        assert 2 not in dom

    def test_is_finite(self):
        dom = finite_domain("bool", (0, 1))
        assert dom.is_finite
        assert not dom.is_infinite

    def test_enumeration_is_sorted_and_complete(self):
        dom = finite_domain("letters", ("b", "a", "c"))
        assert list(dom) == ["a", "b", "c"]

    def test_len(self):
        assert len(finite_domain("d", range(5))) == 5

    def test_empty_finite_domain_rejected(self):
        with pytest.raises(DomainError):
            finite_domain("empty", ())

    def test_check_rejects_outsiders(self):
        with pytest.raises(DomainError):
            finite_domain("bool", (0, 1)).check(7)

    def test_boolean_domain_constant(self):
        assert set(BOOLEAN_DOMAIN) == {0, 1}

    def test_equality_and_hash(self):
        a = finite_domain("bool", (0, 1))
        b = finite_domain("bool", (1, 0))
        assert a == b
        assert hash(a) == hash(b)

    def test_any_domain_is_infinite(self):
        assert ANY.is_infinite

    def test_domains_with_same_name_different_values_differ(self):
        assert finite_domain("d", (1,)) != finite_domain("d", (1, 2))

    def test_domain_dataclass_roundtrip(self):
        dom = Domain("colours", frozenset({"red", "green"}))
        assert dom.is_finite
        assert "red" in dom
